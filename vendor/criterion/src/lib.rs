//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! ([`Criterion::bench_function`], benchmark groups, [`BenchmarkId`],
//! [`black_box`], the `criterion_group!`/`criterion_main!` macros) with a
//! simple adaptive wall-clock measurement: warm up, pick an iteration
//! count targeting a fixed measurement window, report mean ns/iter. No
//! statistics beyond that, no HTML reports, no regression tracking.

use std::fmt::Display;
pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
    measurement_window: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: time a single iteration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));

        let target = self.measurement_window;
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    fn report(&self) -> String {
        if self.iters == 0 {
            return "no measurement (b.iter never called)".into();
        }
        let per_iter = self.total.as_nanos() as f64 / self.iters as f64;
        format!("{} ns/iter ({} iters)", fmt_thousands(per_iter), self.iters)
    }
}

fn fmt_thousands(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3e}", ns)
    } else {
        let int = ns.round() as u64;
        let s = int.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_window: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        run_one(id, self.measurement_window, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, window: Duration, f: &mut F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
        measurement_window: window,
    };
    f(&mut b);
    println!("bench {:<48} {}", id, b.report());
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count (accepted for API compatibility; the
    /// stand-in scales its measurement window instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_window = t.min(Duration::from_secs(2));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.criterion.measurement_window, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.criterion.measurement_window, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 3));
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            measurement_window: Duration::from_millis(2),
        };
        trivial_bench(&mut c);
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_thousands(1234.0), "1,234");
        assert_eq!(fmt_thousands(12.0), "12");
    }
}
