//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The reproduction environment builds without network access, so the
//! workspace maps its `rand` dependency to this crate. It implements the
//! exact surface the repository uses — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — over a xoshiro256++
//! generator seeded through SplitMix64. Streams are deterministic per
//! seed, which is all the simulations require; they are *not* bit-exact
//! with upstream `rand`'s ChaCha-based `StdRng`.

/// Low-level generator interface: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types uniformly samplable over an interval (mirrors upstream rand's
/// `SampleUniform`, so range-literal type inference behaves identically).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128 + 1) as u64;
                if span == 0 {
                    // Full 64-bit domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges a value can be drawn from ([`Rng::gen_range`]'s argument).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Unbiased uniform draw in `[0, span)` via Lemire-style rejection.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone below `2^64 mod span`.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = mul_wide(v, span);
        if lo >= zone {
            return hi;
        }
    }
}

#[inline]
fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value with the standard distribution for the type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<const N: usize> Standard for [u8; N] {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value with the standard distribution for its type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic per seed; not bit-compatible with upstream `rand`'s
    /// ChaCha12-based `StdRng` (irrelevant here — every expectation in
    /// the repository derives from this crate's own streams).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Never allow the all-zero state.
            if s == [0; 4] {
                let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
                for w in &mut s {
                    *w = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{uniform_u64, RngCore};

    /// Random selections from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// One uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them if the
        /// slice is shorter).
        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }

        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots end up random.
            for i in 0..amount {
                let j = i + uniform_u64(rng, (indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(13);
        let items: Vec<usize> = (0..10).collect();
        let picked: Vec<usize> = items.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "duplicates in {picked:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits} hits");
    }
}
