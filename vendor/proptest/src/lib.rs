//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, strategies over ranges / tuples /
//! [`Just`] / `any::<T>()` / `prop_oneof!` / `prop::collection::vec`,
//! `prop_map`, and the `prop_assert*` family. Cases are sampled from a
//! deterministic per-test RNG; there is **no shrinking** — a failure
//! reports the concrete sampled inputs instead.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Outcome of one test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of a test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value: Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Strategy for [`Arbitrary`] types.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds the union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prop {
    //! The `prop::` namespace of the real crate.
    pub use super::collection;
}

/// Runs one property: samples `cases` inputs and executes the body.
///
/// Rejections (`prop_assume!`) retry with fresh inputs, up to a global
/// cap; failures panic with the sampled inputs attached.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    // Deterministic per-test seed: stable across runs, distinct per name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut executed = 0u32;
    let mut rejected = 0u32;
    while executed < config.cases {
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err((TestCaseError::Reject(_), _)) => {
                rejected += 1;
                assert!(
                    rejected < config.cases * 16 + 1024,
                    "property `{name}`: too many prop_assume! rejections"
                );
            }
            Err((TestCaseError::Fail(msg), inputs)) => {
                panic!("property `{name}` failed at case {executed}: {msg}\n  inputs: {inputs}");
            }
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Rejects the current inputs (the case is re-sampled).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests (see the real proptest's docs; this stand-in
/// samples without shrinking).
#[macro_export]
macro_rules! proptest {
    ( @cfg ($cfg:expr) ) => {};
    ( @cfg ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                let inputs = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                    $(&$arg),+
                );
                // The closure gives `prop_assert!`'s early returns a scope.
                #[allow(clippy::redundant_closure_call)]
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                result.map_err(|e| (e, inputs))
            });
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Leading `#![proptest_config(...)]`.
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // No config: default.
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f), "f = {f}");
        }

        #[test]
        fn maps_and_tuples(v in (0u8..4, 1u8..5).prop_map(|(a, b)| a as u32 + b as u32)) {
            prop_assert!(v <= 7);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn vectors_have_requested_len(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_is_respected(_x in 0u8..3) {
            // Runs without panicking; the case budget is exercised above.
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(3), |_rng| {
            Err((TestCaseError::fail("boom"), "x = 1".into()))
        });
    }
}
