//! Surface-code distance selection and logical error-rate model.
//!
//! Standard Fowler-style scaling: the logical error rate per logical qubit
//! per QECC round is `p_L(d) = A · (p / p_th)^⌈(d+1)/2⌉` with threshold
//! `p_th = 10⁻²` and prefactor `A = 0.1`. The code distance is the
//! smallest odd `d` for which the whole workload's accumulated logical
//! error probability stays below ½.

/// Surface-code threshold error rate (per physical qubit per round).
pub const P_THRESHOLD: f64 = 1e-2;

/// Logical error-rate prefactor.
pub const PREFACTOR: f64 = 0.1;

/// Logical error rate per logical qubit per QECC round at distance `d`
/// and physical error rate `p`.
///
/// # Panics
///
/// Panics if `d` is even or zero, or `p` is not in `(0, 1)`.
pub fn logical_error_per_round(d: usize, p: f64) -> f64 {
    assert!(d >= 1 && d % 2 == 1, "distance must be odd and positive");
    assert!(p > 0.0 && p < 1.0, "physical error rate must be in (0,1)");
    PREFACTOR * (p / P_THRESHOLD).powi(d.div_ceil(2) as i32)
}

/// QuRE-style per-round logical error-rate target: the toolbox the paper
/// uses picks the code distance so that each logical qubit's error per
/// round falls below a fixed target rather than budgeting the whole run.
/// `10⁻¹²` reproduces the paper's footprints (Shor-1024 at p = 10⁻⁴ lands
/// on d = 11 and "millions of qubits", §1/Figure 2).
pub const QURE_TARGET: f64 = 1e-12;

/// Smallest odd distance with `p_L(d) < QURE_TARGET` — the QuRE
/// convention used throughout the bandwidth models.
///
/// # Panics
///
/// Panics if `p ≥ p_th`.
pub fn qure_distance(p: f64) -> usize {
    assert!(
        p < P_THRESHOLD,
        "physical error rate {p} is not below threshold"
    );
    let mut d = 3usize;
    while logical_error_per_round(d, p) >= QURE_TARGET {
        d += 2;
        assert!(d < 1000, "no practical distance at p = {p}");
    }
    d
}

/// Smallest odd distance such that `volume · p_L(d) < 0.5`, where
/// `volume` is the workload's space-time volume in (logical qubit ×
/// round) units.
///
/// # Panics
///
/// Panics if `p ≥ p_th` (below threshold no distance suffices) or the
/// volume is not positive and finite.
pub fn required_distance(volume: f64, p: f64) -> usize {
    assert!(
        p < P_THRESHOLD,
        "physical error rate {p} is not below threshold"
    );
    assert!(
        volume.is_finite() && volume > 0.0,
        "space-time volume must be positive"
    );
    let mut d = 3usize;
    while volume * logical_error_per_round(d, p) >= 0.5 {
        d += 2;
        assert!(d < 1000, "no practical distance for volume {volume}");
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rate_decreases_exponentially_with_distance() {
        let p = 1e-4;
        let p3 = logical_error_per_round(3, p);
        let p5 = logical_error_per_round(5, p);
        let p7 = logical_error_per_round(7, p);
        assert!((p3 / p5 - 100.0).abs() < 1e-6);
        assert!((p5 / p7 - 100.0).abs() < 1e-6);
    }

    #[test]
    fn required_distance_grows_with_volume() {
        let p = 1e-4;
        let d_small = required_distance(1e3, p);
        let d_large = required_distance(1e15, p);
        assert!(d_large > d_small);
        assert!(d_small >= 3);
        // Sanity: the chosen distance actually meets the budget and the
        // next smaller does not.
        for (v, d) in [(1e3, d_small), (1e15, d_large)] {
            assert!(v * logical_error_per_round(d, p) < 0.5);
            if d > 3 {
                assert!(v * logical_error_per_round(d - 2, p) >= 0.5);
            }
        }
    }

    #[test]
    fn lower_error_rate_needs_smaller_distance() {
        let v = 1e12;
        let d4 = required_distance(v, 1e-4);
        let d5 = required_distance(v, 1e-5);
        let d3 = required_distance(v, 1e-3);
        assert!(d5 < d4, "1e-5 ⇒ d {d5} vs 1e-4 ⇒ d {d4}");
        assert!(d3 > d4, "1e-3 ⇒ d {d3} vs 1e-4 ⇒ d {d4}");
    }

    #[test]
    fn qure_distance_anchors() {
        // Calibration anchors behind the paper's footprints.
        assert_eq!(qure_distance(1e-4), 11);
        assert!(qure_distance(1e-3) > qure_distance(1e-4));
        assert!(qure_distance(1e-5) < qure_distance(1e-4));
    }

    #[test]
    #[should_panic(expected = "not below threshold")]
    fn above_threshold_panics() {
        required_distance(1e6, 2e-2);
    }
}
