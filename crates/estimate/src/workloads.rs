//! Quantum-workload catalog (§6.1) and logical-stream generation.
//!
//! The paper evaluates seven workloads from the ScaffCC suite and recent
//! quantum-chemistry applications. The original QuRE/ScaffCC toolchain is
//! not available, so each workload is described here by its *logical
//! resources*: logical qubit count, total logical gate count, and T-gate
//! fraction. The values are representative figures from the ScaffCC /
//! QuRE literature (order-of-magnitude faithful — every reproduced claim
//! is a ratio spanning orders of magnitude, which these constants only
//! need to hit within small constant factors).
//!
//! `SHOR` is additionally available in parametric form via
//! [`crate::shor`].

use quest_isa::{InstrClass, LogicalInstr, LogicalProgram, LogicalQubit};

/// Average logical instruction-level parallelism assumed by the model
/// (§5.2: "most quantum workloads execute only two to three logical
/// instructions in parallel").
pub const LOGICAL_ILP: f64 = 2.5;

/// Logical-resource description of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Short name used in the paper's figures.
    pub name: &'static str,
    /// What the benchmark computes.
    pub description: &'static str,
    /// Algorithmic logical qubits.
    pub logical_qubits: f64,
    /// Total algorithmic logical gates.
    pub logical_gates: f64,
    /// Fraction of logical gates that are T gates (§5.2: 25–30%).
    pub t_fraction: f64,
}

impl Workload {
    /// Binary Welded Tree: quantum-walk pathfinding (height 300).
    pub const BWT: Workload = Workload {
        name: "BWT",
        description: "binary welded tree quantum walk",
        logical_qubits: 300.0,
        logical_gates: 1e8,
        t_fraction: 0.28,
    };

    /// Boolean Formula: quantum strategy for the game of hex.
    pub const BF: Workload = Workload {
        name: "BF",
        description: "boolean formula (hex strategy)",
        logical_qubits: 60.0,
        logical_gates: 3e5,
        t_fraction: 0.25,
    };

    /// Ground State Estimation of the Fe₂S₂ molecule.
    pub const GSE: Workload = Workload {
        name: "GSE",
        description: "Fe2S2 ground-state estimation",
        logical_qubits: 400.0,
        logical_gates: 1e12,
        t_fraction: 0.30,
    };

    /// Ground State Estimation of the FeMoCo nitrogen-fixation catalyst.
    pub const FEMOCO: Workload = Workload {
        name: "FeMoCo",
        description: "FeMoCo active-site ground state",
        logical_qubits: 220.0,
        logical_gates: 3e14,
        t_fraction: 0.33,
    };

    /// Quantum Linear System solver.
    pub const QLS: Workload = Workload {
        name: "QLS",
        description: "quantum linear system Ax=b",
        logical_qubits: 300.0,
        logical_gates: 1e10,
        t_fraction: 0.30,
    };

    /// Shor's algorithm factoring a 1024-bit number (fixed-size catalog
    /// entry; see [`crate::shor`] for the parametric model).
    pub const SHOR: Workload = Workload {
        name: "SHOR",
        description: "Shor factoring, 1024-bit modulus",
        logical_qubits: 2050.0,
        logical_gates: 2e13,
        t_fraction: 0.30,
    };

    /// Triangle Finding Problem on a dense graph.
    pub const TFP: Workload = Workload {
        name: "TFP",
        description: "triangle finding in a dense graph",
        logical_qubits: 150.0,
        logical_gates: 1e7,
        t_fraction: 0.25,
    };

    /// The seven workloads of §6.1, figure order.
    pub const ALL: [Workload; 7] = [
        Workload::BWT,
        Workload::BF,
        Workload::GSE,
        Workload::FEMOCO,
        Workload::QLS,
        Workload::SHOR,
        Workload::TFP,
    ];

    /// Total T gates.
    pub fn t_count(&self) -> f64 {
        self.logical_gates * self.t_fraction
    }

    /// Logical circuit depth (time steps) assuming [`LOGICAL_ILP`]-wide
    /// issue.
    pub fn logical_depth(&self) -> f64 {
        self.logical_gates / LOGICAL_ILP
    }

    /// Magic states consumed per logical time step.
    pub fn t_rate_per_step(&self) -> f64 {
        self.t_fraction * LOGICAL_ILP
    }

    /// Generates a representative logical instruction stream of about
    /// `len` instructions with this workload's T-fraction and gate mix,
    /// classified for bandwidth accounting. Used to drive the
    /// architectural simulation with workload-shaped traffic.
    pub fn generate_program(&self, len: usize) -> LogicalProgram {
        let mut p = LogicalProgram::new();
        let qubits = 16u8; // tile-local logical ids
        let mut t_budget = 0.0f64;
        for i in 0..len {
            let q = LogicalQubit((i % qubits as usize) as u8);
            t_budget += self.t_fraction;
            let instr = if t_budget >= 1.0 {
                t_budget -= 1.0;
                LogicalInstr::T(q)
            } else {
                match i % 4 {
                    0 => LogicalInstr::H(q),
                    1 => LogicalInstr::Cnot {
                        control: q,
                        target: LogicalQubit((q.0 + 1) % qubits),
                    },
                    2 => LogicalInstr::S(q),
                    _ => LogicalInstr::X(q),
                }
            };
            p.push(instr, InstrClass::Algorithmic);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_workloads_with_unique_names() {
        let names: std::collections::HashSet<_> = Workload::ALL.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn t_fractions_match_paper_range() {
        // §5.2: "T-gate instructions constitute 25% to 30%" (FeMoCo's
        // rotation-heavy circuit sits just above).
        for w in &Workload::ALL {
            assert!(
                (0.24..=0.34).contains(&w.t_fraction),
                "{}: {}",
                w.name,
                w.t_fraction
            );
        }
    }

    #[test]
    fn derived_quantities_are_consistent() {
        let w = Workload::GSE;
        assert!((w.t_count() - 3e11).abs() / 3e11 < 1e-12);
        assert!(w.logical_depth() < w.logical_gates);
        assert!(w.t_rate_per_step() < LOGICAL_ILP);
    }

    #[test]
    fn generated_program_matches_t_fraction() {
        let w = Workload::QLS;
        let p = w.generate_program(10_000);
        assert_eq!(p.len(), 10_000);
        let tf = p.t_fraction();
        assert!((tf - w.t_fraction).abs() < 0.01, "t fraction {tf}");
    }

    #[test]
    fn workload_sizes_span_many_orders() {
        // Figure 6's 10⁴–10⁹ spread requires the suite to span sizes.
        let min = Workload::ALL
            .iter()
            .map(|w| w.logical_gates)
            .fold(f64::INFINITY, f64::min);
        let max = Workload::ALL
            .iter()
            .map(|w| w.logical_gates)
            .fold(0.0, f64::max);
        assert!(max / min >= 1e8);
    }
}
