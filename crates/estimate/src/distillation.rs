//! Magic-state distillation and T-factory model (§5.2).
//!
//! T gates require magic states produced by the recursive 15-to-1
//! Bravyi–Kitaev distillation protocol: each level consumes 15 input
//! states and emits one state whose error is `35·p³` of the input error.
//! Workloads consume magic states roughly every third logical instruction,
//! so factories must run continuously and in parallel — and their
//! instruction streams dominate the *logical* bandwidth (Figure 13).

use crate::distance::P_THRESHOLD;

/// Error-suppression constant of the 15-to-1 protocol: `p_out = 35·p_in³`.
pub const BK_CONSTANT: f64 = 35.0;

/// Logical instructions per level of one distillation round (§5.3: "a
/// typical distillation algorithm has 100 to 200 logical instructions").
pub const INSTRS_PER_LEVEL: f64 = 150.0;

/// Logical qubits occupied by one level-1 factory instance (15 inputs +
/// one output/work qubit).
pub const FACTORY_LOGICAL_QUBITS: f64 = 16.0;

/// Output error after `levels` rounds of 15-to-1 starting from injected
/// states of error `p_in`.
pub fn output_error(p_in: f64, levels: u32) -> f64 {
    let mut p = p_in;
    for _ in 0..levels {
        p = BK_CONSTANT * p * p * p;
    }
    p
}

/// Number of 15-to-1 levels needed so that states injected at error
/// `p_in` reach a target error below `p_target`.
///
/// # Panics
///
/// Panics if the recursion cannot converge (`35·p_in² ≥ 1`) or the target
/// is not positive.
pub fn levels_needed(p_in: f64, p_target: f64) -> u32 {
    assert!(p_target > 0.0, "target error must be positive");
    assert!(
        BK_CONSTANT * p_in * p_in < 1.0,
        "injected error {p_in} too high for 15-to-1 to converge"
    );
    let mut levels = 0;
    let mut p = p_in;
    while p >= p_target {
        p = BK_CONSTANT * p * p * p;
        levels += 1;
        assert!(levels < 16, "distillation depth runaway");
    }
    levels
}

/// A sized distillation pipeline for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillationPlan {
    /// Recursion levels per magic state.
    pub levels: u32,
    /// Logical instructions expended per distilled magic state
    /// (geometric sum over the recursion tree).
    pub instrs_per_state: f64,
    /// Logical qubits per factory (the widest level dominates).
    pub logical_qubits_per_factory: f64,
    /// Number of parallel factories needed to keep up with the workload's
    /// T-gate consumption rate.
    pub factories: f64,
}

impl DistillationPlan {
    /// Sizes the pipeline.
    ///
    /// * `p` — physical error rate; injected states start at `p_in ≈ 10·p`.
    /// * `t_count` — total T gates in the workload (sets the per-state
    ///   error budget `0.5 / t_count`).
    /// * `t_rate_per_step` — magic states consumed per logical time step
    ///   (T-fraction × instruction-level parallelism).
    ///
    /// A level takes ~10 logical steps; a `levels`-deep pipeline outputs
    /// one state per 10·`levels` steps per factory, so
    /// `factories = t_rate_per_step × 10 × levels`.
    ///
    /// # Panics
    ///
    /// Panics if `t_count` is not positive or `p` is not in `(0, p_th)`.
    pub fn size(p: f64, t_count: f64, t_rate_per_step: f64) -> DistillationPlan {
        assert!(t_count > 0.0, "need a positive T count");
        assert!(p > 0.0 && p < P_THRESHOLD, "p out of range");
        let p_in = (10.0 * p).min(0.1);
        let p_target = 0.5 / t_count;
        let levels = levels_needed(p_in, p_target).max(1);
        // Recursion tree: level k consumes 15^(k-1) level-1 rounds.
        let mut instrs = 0.0;
        let mut width: f64 = FACTORY_LOGICAL_QUBITS;
        let mut rounds = 1.0;
        for _ in 0..levels {
            instrs += rounds * INSTRS_PER_LEVEL;
            width = width.max(rounds * FACTORY_LOGICAL_QUBITS);
            rounds *= 15.0;
        }
        let factories = (t_rate_per_step * 10.0 * levels as f64).max(1.0);
        DistillationPlan {
            levels,
            instrs_per_state: instrs,
            logical_qubits_per_factory: width,
            factories,
        }
    }

    /// Total logical qubits occupied by all factories.
    pub fn total_factory_qubits(&self) -> f64 {
        self.factories * self.logical_qubits_per_factory
    }

    /// Ratio of distillation logical instructions to algorithmic logical
    /// instructions, given the workload's T-fraction (Figure 13).
    pub fn instruction_ratio(&self, t_fraction: f64) -> f64 {
        t_fraction * self.instrs_per_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_error_is_cubic_per_level() {
        let p = 1e-3;
        let one = output_error(p, 1);
        assert!((one - 35.0 * p * p * p).abs() < 1e-18);
        let two = output_error(p, 2);
        assert!((two - 35.0 * one * one * one).abs() < 1e-24);
    }

    #[test]
    fn levels_track_target() {
        // p_in = 1e-3: one level gives 3.5e-8, two give ~1.5e-21.
        assert_eq!(levels_needed(1e-3, 1e-6), 1);
        assert_eq!(levels_needed(1e-3, 1e-10), 2);
        assert_eq!(levels_needed(1e-3, 1e-22), 3);
    }

    #[test]
    fn typical_workload_needs_two_levels() {
        // p = 1e-4 (paper's assumption), 1e10 T gates.
        let plan = DistillationPlan::size(1e-4, 1e10, 0.75);
        assert_eq!(plan.levels, 2);
        // ~150 + 15·150 = 2400 instructions per state.
        assert!((plan.instrs_per_state - 2400.0).abs() < 1.0);
    }

    #[test]
    fn instruction_ratio_is_roughly_three_orders() {
        // §5.3: caching distillation cuts logical bandwidth ~1000×, so the
        // distillation:algorithmic ratio must be ~1e3 for typical
        // workloads.
        let plan = DistillationPlan::size(1e-4, 1e12, 0.75);
        let r = plan.instruction_ratio(0.3);
        assert!((100.0..=100_000.0).contains(&r), "ratio {r}");
    }

    #[test]
    fn factories_scale_sublinearly_with_error_rate() {
        // Figure 15's discussion: factory count scales with the *number of
        // levels*, i.e. log-log in the error budget.
        let lo = DistillationPlan::size(1e-5, 1e12, 0.75);
        let hi = DistillationPlan::size(1e-3, 1e12, 0.75);
        assert!(hi.factories >= lo.factories);
        assert!(hi.factories <= 4.0 * lo.factories);
    }

    #[test]
    #[should_panic(expected = "converge")]
    fn hopeless_injection_panics() {
        levels_needed(0.5, 1e-10);
    }
}
