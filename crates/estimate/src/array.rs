//! Control-processor array sizing.
//!
//! §4.2 organizes QuEST as an array of MCEs, each servicing a fixed tile
//! of the substrate. Combining the workload footprint (how many physical
//! qubits, from [`crate::bandwidth`]) with the per-MCE throughput model
//! (how many qubits one MCE can service, from `quest_core::throughput`)
//! yields the control-processor bill of materials: MCE count, total JJ
//! budget, and total microcode power — the quantities a hardware team
//! would take to floor-planning.

use crate::bandwidth::BandwidthEstimate;
use quest_core::throughput::{optimal_config, unit_cell_throughput};
use quest_core::TechnologyParams;
use quest_surface::SyndromeDesign;

/// Sized MCE array for one workload at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayPlan {
    /// Physical qubits to be serviced.
    pub physical_qubits: f64,
    /// Qubits serviced per MCE at the chosen configuration.
    pub qubits_per_mce: usize,
    /// Number of MCEs in the array.
    pub mces: u64,
    /// Total JJ count of all microcode memories.
    pub total_jjs: u64,
    /// Total microcode power in watts.
    pub total_power_w: f64,
}

impl ArrayPlan {
    /// Sizes the array for a bandwidth estimate under a syndrome design
    /// and technology.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome design's program fits no 4 Kb configuration
    /// (cannot happen for the four shipped designs).
    pub fn size(
        estimate: &BandwidthEstimate,
        syndrome: &SyndromeDesign,
        tech: &TechnologyParams,
    ) -> ArrayPlan {
        let config = optimal_config(syndrome, tech);
        let qubits_per_mce = unit_cell_throughput(syndrome, &config, tech);
        assert!(qubits_per_mce > 0, "no feasible configuration");
        let mces = (estimate.physical_qubits / qubits_per_mce as f64).ceil() as u64;
        ArrayPlan {
            physical_qubits: estimate.physical_qubits,
            qubits_per_mce,
            mces,
            total_jjs: mces * config.jj_count(),
            total_power_w: mces as f64 * config.power_w(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;

    fn plan(w: &Workload) -> ArrayPlan {
        let tech = TechnologyParams::PROJECTED_D;
        let syn = SyndromeDesign::STEANE;
        let e = BandwidthEstimate::analyze(w, 1e-4, &tech, &syn);
        ArrayPlan::size(&e, &syn, &tech)
    }

    #[test]
    fn array_covers_every_qubit() {
        for w in &Workload::ALL {
            let p = plan(w);
            assert!(
                p.mces as f64 * p.qubits_per_mce as f64 >= p.physical_qubits,
                "{}: array too small",
                w.name
            );
        }
    }

    #[test]
    fn shor_needs_thousands_of_mces_at_microwatts() {
        // The point of the distributed design: millions of qubits under
        // thousands of tiny engines, total power in the milliwatt class —
        // feasible at 4 K, unlike streaming hundreds of TB/s.
        let p = plan(&Workload::SHOR);
        assert!(p.mces > 1_000 && p.mces < 1_000_000, "{} MCEs", p.mces);
        assert!(
            p.total_power_w < 0.1,
            "total microcode power {} W",
            p.total_power_w
        );
    }

    #[test]
    fn bigger_workloads_need_more_mces() {
        let small = plan(&Workload::BF);
        let large = plan(&Workload::FEMOCO);
        assert!(large.mces > small.mces);
        assert!(large.total_jjs > small.total_jjs);
    }

    #[test]
    fn sc17_reduces_the_array() {
        let tech = TechnologyParams::PROJECTED_D;
        let e = BandwidthEstimate::analyze(&Workload::GSE, 1e-4, &tech, &SyndromeDesign::STEANE);
        let steane = ArrayPlan::size(&e, &SyndromeDesign::STEANE, &tech);
        let sc17 = ArrayPlan::size(&e, &SyndromeDesign::SC17, &tech);
        assert!(sc17.mces < steane.mces, "SC-17 should shrink the array");
    }
}
