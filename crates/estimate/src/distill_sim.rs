//! Exact simulation of one 15-to-1 magic-state distillation round.
//!
//! The Bravyi–Kitaev protocol runs the T-gadget over the `[[15,1,3]]`
//! punctured Reed–Muller code. Under the standard Pauli twirl, a faulty
//! input T state is a perfect one followed by a Z error with probability
//! `p`, and the protocol's behaviour is fully classical:
//!
//! * the X-type checks are the parity-check matrix of the `[15,11,3]`
//!   Hamming code (column `i` is the 4-bit binary of `i`);
//! * a Z-error pattern `e` is **detected** iff `H·e ≠ 0` (round rejected);
//! * an undetected pattern is **harmful** iff its weight is odd: the
//!   code's Z-stabilizer group is the even-weight subcode of the Hamming
//!   code, and any odd-weight codeword acts as logical Z on the output.
//!
//! Because the Hamming code has exactly 35 weight-3 codewords, the leading
//! output error is `35·p³` — the constant used by the analytical model in
//! [`crate::distillation`]. This module computes the *exact* output error
//! and acceptance probability by enumerating all 2¹⁵ error patterns, and
//! verifies the analytical model against it.

/// Number of input magic states per round.
pub const INPUTS: usize = 15;

/// Returns the 4-bit Hamming syndrome of an error pattern (bit `i` of
/// `pattern` = Z error on input `i+1`; columns are 1..=15).
pub fn syndrome(pattern: u16) -> u8 {
    let mut s = 0u8;
    for i in 0..INPUTS {
        if pattern >> i & 1 == 1 {
            s ^= (i as u8) + 1;
        }
    }
    s
}

/// Classifies one error pattern: `(accepted, harmful)`.
pub fn classify(pattern: u16) -> (bool, bool) {
    let accepted = syndrome(pattern) == 0;
    let harmful = accepted && pattern.count_ones() % 2 == 1;
    (accepted, harmful)
}

/// Exact acceptance probability and output error rate of one 15-to-1
/// round with i.i.d. input Z-error probability `p`.
///
/// Returns `(p_accept, p_output_error_given_accept)`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn exact_round(p: f64) -> (f64, f64) {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut p_accept = 0.0;
    let mut p_harm = 0.0;
    for pattern in 0u32..(1 << INPUTS) {
        let pattern = pattern as u16;
        let w = pattern.count_ones();
        let prob = p.powi(w as i32) * (1.0 - p).powi((INPUTS as u32 - w) as i32);
        let (accepted, harmful) = classify(pattern);
        if accepted {
            p_accept += prob;
            if harmful {
                p_harm += prob;
            }
        }
    }
    (p_accept, p_harm / p_accept)
}

/// Number of undetected (syndrome-zero) patterns of each weight —
/// the weight distribution of the `[15,11,3]` Hamming code.
pub fn undetected_weight_distribution() -> [u64; INPUTS + 1] {
    let mut dist = [0u64; INPUTS + 1];
    for pattern in 0u32..(1 << INPUTS) {
        let pattern = pattern as u16;
        if syndrome(pattern) == 0 {
            dist[pattern.count_ones() as usize] += 1;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distillation::output_error;

    #[test]
    fn hamming_code_has_2048_codewords() {
        let dist = undetected_weight_distribution();
        let total: u64 = dist.iter().sum();
        assert_eq!(total, 1 << 11, "Hamming [15,11] has 2^11 codewords");
    }

    #[test]
    fn thirty_five_weight_three_codewords() {
        // The source of the famous 35·p³.
        let dist = undetected_weight_distribution();
        assert_eq!(dist[0], 1);
        assert_eq!(dist[1], 0);
        assert_eq!(dist[2], 0);
        assert_eq!(dist[3], 35);
    }

    #[test]
    fn single_errors_are_always_detected() {
        for i in 0..INPUTS {
            let (accepted, _) = classify(1 << i);
            assert!(!accepted, "single error on input {i} slipped through");
        }
    }

    #[test]
    fn double_errors_are_always_detected() {
        for i in 0..INPUTS {
            for j in i + 1..INPUTS {
                let (accepted, _) = classify((1 << i) | (1 << j));
                assert!(!accepted, "double error ({i},{j}) slipped through");
            }
        }
    }

    #[test]
    fn exact_output_error_approaches_35_p_cubed() {
        for p in [1e-3, 1e-4] {
            let (_, p_out) = exact_round(p);
            let model = 35.0 * p * p * p;
            let rel = (p_out - model).abs() / model;
            assert!(rel < 0.05, "p={p}: exact {p_out:.3e} vs 35p^3 {model:.3e}");
        }
    }

    #[test]
    fn analytical_model_matches_exact_simulation() {
        // The DistillationPlan uses p_out = 35·p³ per level; the exact
        // round must agree to leading order.
        let p = 1e-3;
        let (_, exact) = exact_round(p);
        let model = output_error(p, 1);
        assert!(
            (exact / model - 1.0).abs() < 0.05,
            "exact {exact} model {model}"
        );
    }

    #[test]
    fn acceptance_probability_is_nearly_one_at_low_p() {
        let (p_acc, _) = exact_round(1e-3);
        // Rejection is dominated by any-single-error ≈ 15p.
        assert!((p_acc - (1.0 - 15.0 * 1e-3)).abs() < 2e-3, "{p_acc}");
    }

    #[test]
    fn noiseless_round_is_perfect() {
        let (p_acc, p_out) = exact_round(0.0);
        assert_eq!(p_acc, 1.0);
        assert_eq!(p_out, 0.0);
    }

    #[test]
    fn high_noise_round_mostly_rejects() {
        let (p_acc, _) = exact_round(0.3);
        // 2^11/2^15 = 1/16 of patterns pass; at high noise acceptance
        // approaches the code rate.
        assert!(p_acc < 0.2, "{p_acc}");
    }
}
