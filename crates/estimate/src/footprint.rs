//! Executable-size (instruction working set) model.
//!
//! §2.2 of the paper places cryogenic DRAM at 77 K because "the
//! instruction footprint for quantum algorithms is typically large
//! (10s GB)", and the related work highlights "extremely large
//! executables" as a core toolchain challenge. Hardware-managed QECC
//! shrinks the *static* program as dramatically as it shrinks bandwidth:
//! the baseline executable spells out every physical µop, while QuEST
//! stores logical instructions plus a fixed microcode image.

use crate::bandwidth::BandwidthEstimate;
use quest_core::tech::{LOGICAL_INSTR_BYTES, PHYS_INSTR_BYTES};

/// Static instruction footprint of a workload under each delivery model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Footprint {
    /// Baseline executable: every physical instruction of every QECC
    /// cycle plus expanded logical instructions, in bytes.
    pub baseline_bytes: f64,
    /// QuEST executable: the logical program (algorithmic +
    /// distillation), in bytes.
    pub quest_bytes: f64,
    /// QuEST + cache executable: algorithmic program plus one distillation
    /// kernel image, in bytes.
    pub quest_cached_bytes: f64,
    /// Per-MCE microcode image (stored once in hardware), in bytes.
    pub microcode_bytes: f64,
}

impl Footprint {
    /// Derives the footprint from a bandwidth analysis: footprint =
    /// stream rate × execution time for each delivery model, with the
    /// QECC microcode image charged separately (it is state, not stream).
    pub fn from_estimate(
        e: &BandwidthEstimate,
        syndrome: &quest_surface::SyndromeDesign,
    ) -> Footprint {
        // Execution time: logical gates issued at the algorithmic rate.
        let exec_time = e.workload.logical_gates / e.algo_rate;
        let baseline_bytes = e.baseline * exec_time * PHYS_INSTR_BYTES;
        let quest_bytes = e.quest_mce * exec_time;
        // Cached: algorithmic stream plus one kernel image.
        let kernel_bytes = e.distillation.instrs_per_state * LOGICAL_INSTR_BYTES;
        let quest_cached_bytes = e.quest_cached * exec_time + kernel_bytes;
        let microcode_bytes = syndrome.microcode_uops as f64 * 4.0 / 8.0;
        Footprint {
            baseline_bytes,
            quest_bytes,
            quest_cached_bytes,
            microcode_bytes,
        }
    }

    /// Shrink factor of the QuEST executable vs. the baseline.
    pub fn shrink(&self) -> f64 {
        self.baseline_bytes / self.quest_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::BandwidthEstimate;
    use crate::workloads::Workload;
    use quest_core::TechnologyParams;
    use quest_surface::SyndromeDesign;

    fn fp(w: &Workload) -> Footprint {
        let e = BandwidthEstimate::analyze(
            w,
            1e-4,
            &TechnologyParams::PROJECTED_D,
            &SyndromeDesign::STEANE,
        );
        Footprint::from_estimate(&e, &SyndromeDesign::STEANE)
    }

    #[test]
    fn baseline_executables_are_enormous() {
        // §2.2: tens of gigabytes *at least*; realistic workloads reach
        // petabytes of spelled-out physical instructions.
        let f = fp(&Workload::BWT);
        assert!(
            f.baseline_bytes > 10e9,
            "baseline executable only {} bytes",
            f.baseline_bytes
        );
    }

    #[test]
    fn quest_shrinks_the_executable_by_the_bandwidth_factor() {
        let f = fp(&Workload::GSE);
        assert!(f.shrink() > 1e5, "shrink {}", f.shrink());
        assert!(f.quest_cached_bytes < f.quest_bytes);
    }

    #[test]
    fn microcode_image_is_tiny() {
        let f = fp(&Workload::QLS);
        // 148 4-bit µops = 74 bytes.
        assert_eq!(f.microcode_bytes, 74.0);
        assert!(f.microcode_bytes < 1e-6 * f.quest_bytes);
    }

    #[test]
    fn footprints_scale_with_workload_size() {
        let small = fp(&Workload::BF);
        let large = fp(&Workload::FEMOCO);
        assert!(large.baseline_bytes > 1e6 * small.baseline_bytes / 1e3);
        assert!(large.quest_bytes > small.quest_bytes);
    }
}
