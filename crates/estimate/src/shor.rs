//! Parametric resource model for Shor's factoring algorithm (Figure 2).
//!
//! Follows the structure of the Fowler et al. appendix-M estimate the
//! paper cites: an `n`-bit modular exponentiation on `2n + 2` logical
//! qubits dominated by Toffoli gates (≈ `40·n³`), each decomposed into
//! seven T gates. Wide modular adders expose Toffoli-level parallelism
//! that grows with `n`, so the magic-state consumption rate — and with it
//! the T-factory block — scales with the modulus width. Factories are
//! modelled as compact pipelined blocks (`16` logical qubits per level).
//!
//! Calibration target (§1/Figure 2): at `p = 10⁻⁴`, factoring a 1024-bit
//! modulus needs millions of physical qubits and a baseline instruction
//! bandwidth on the order of 100 TB/s.

use crate::distance::qure_distance;
use crate::distillation::{levels_needed, INSTRS_PER_LEVEL};
use crate::workloads::Workload;

/// Fowler-style constants for the modular-exponentiation circuit.
pub mod constants {
    /// Logical qubits for the algorithm proper (`2n + 2`).
    pub fn logical_qubits(n_bits: u32) -> f64 {
        2.0 * n_bits as f64 + 2.0
    }

    /// Toffoli count `≈ 40·n³`.
    pub fn toffoli_count(n_bits: u32) -> f64 {
        40.0 * (n_bits as f64).powi(3)
    }

    /// T gates per Toffoli.
    pub const T_PER_TOFFOLI: f64 = 7.0;

    /// Clifford gates per Toffoli (CNOT/H/S fabric around the T's).
    pub const CLIFFORD_PER_TOFFOLI: f64 = 16.0;

    /// Physical qubits per logical qubit (Fowler appendix M).
    pub const PHYS_PER_LOGICAL: f64 = 12.5;

    /// Toffoli-level parallelism of the wide modular adders: `n/64`
    /// parallel T consumers, floor of 2.5 for narrow instances.
    pub fn parallelism(n_bits: u32) -> f64 {
        (n_bits as f64 / 64.0).max(2.5)
    }

    /// Logical qubits per distillation-factory level (compact pipelined
    /// block).
    pub const FACTORY_QUBITS_PER_LEVEL: f64 = 16.0;
}

/// Fully sized Shor instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShorEstimate {
    /// Modulus width in bits.
    pub n_bits: u32,
    /// Physical error rate assumed.
    pub p: f64,
    /// Code distance.
    pub distance: usize,
    /// Algorithmic logical qubits.
    pub logical_qubits: f64,
    /// Total logical gates (Cliffords + T).
    pub logical_gates: f64,
    /// T-gate count.
    pub t_count: f64,
    /// Distillation recursion levels.
    pub distillation_levels: u32,
    /// Parallel T-factories.
    pub factories: f64,
    /// Total physical qubits (algorithm + factories).
    pub physical_qubits: f64,
}

impl ShorEstimate {
    /// Sizes an `n_bits` factoring instance at physical error rate `p`.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits` is zero or `p` is not below threshold.
    pub fn new(n_bits: u32, p: f64) -> ShorEstimate {
        assert!(n_bits > 0, "modulus width must be positive");
        let logical_qubits = constants::logical_qubits(n_bits);
        let toffolis = constants::toffoli_count(n_bits);
        let t_count = toffolis * constants::T_PER_TOFFOLI;
        let cliffords = toffolis * constants::CLIFFORD_PER_TOFFOLI;
        let logical_gates = t_count + cliffords;

        let d = qure_distance(p);

        // Distillation: a level takes ~10 logical steps; to feed
        // `parallelism × t_fraction` magic states per step the pipeline
        // needs `rate × 10 × levels` factory instances.
        let p_in = (10.0 * p).min(0.1);
        let levels = levels_needed(p_in, 0.5 / t_count).max(1);
        let t_rate = (t_count / logical_gates) * constants::parallelism(n_bits);
        let factories = (t_rate * 10.0 * levels as f64).max(1.0);
        let factory_logical = factories * constants::FACTORY_QUBITS_PER_LEVEL * levels as f64;

        let total_logical = logical_qubits + factory_logical;
        let physical_qubits = total_logical * constants::PHYS_PER_LOGICAL * (d * d) as f64;

        ShorEstimate {
            n_bits,
            p,
            distance: d,
            logical_qubits,
            logical_gates,
            t_count,
            distillation_levels: levels,
            factories,
            physical_qubits,
        }
    }

    /// Baseline (software-managed QECC) instruction bandwidth in bytes/s:
    /// one byte-sized instruction per physical qubit at the 100 MHz
    /// substrate rate (§3.3).
    pub fn baseline_bandwidth(&self) -> f64 {
        quest_core::tech::baseline_bandwidth_bytes_per_s(self.physical_qubits)
    }

    /// Logical instructions expended per distilled magic state.
    pub fn distillation_instrs_per_state(&self) -> f64 {
        let mut instrs = 0.0;
        let mut rounds = 1.0;
        for _ in 0..self.distillation_levels {
            instrs += rounds * INSTRS_PER_LEVEL;
            rounds *= 15.0;
        }
        instrs
    }

    /// This instance as a [`Workload`] catalog entry.
    pub fn as_workload(&self) -> Workload {
        Workload {
            name: "SHOR",
            description: "Shor factoring (parametric)",
            logical_qubits: self.logical_qubits,
            logical_gates: self.logical_gates,
            t_fraction: self.t_count / self.logical_gates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_moduli_need_more_of_everything() {
        let s128 = ShorEstimate::new(128, 1e-4);
        let s1024 = ShorEstimate::new(1024, 1e-4);
        assert!(s1024.logical_qubits > s128.logical_qubits);
        assert!(s1024.t_count > 100.0 * s128.t_count);
        assert!(s1024.factories > s128.factories);
        assert!(
            s1024.physical_qubits > 4.0 * s128.physical_qubits,
            "{} vs {}",
            s1024.physical_qubits,
            s128.physical_qubits
        );
    }

    #[test]
    fn shor_1024_is_millions_of_qubits_and_terabytes_per_second() {
        // §1/Figure 2: factoring 1024-bit needs millions of qubits and
        // ~100 TB/s of instruction bandwidth. Accept the right order of
        // magnitude.
        let s = ShorEstimate::new(1024, 1e-4);
        assert!(
            (1e6..1e8).contains(&s.physical_qubits),
            "physical qubits {}",
            s.physical_qubits
        );
        let tb_s = s.baseline_bandwidth() / 1e12;
        assert!((50.0..2000.0).contains(&tb_s), "{tb_s} TB/s");
    }

    #[test]
    fn bandwidth_scales_linearly_with_qubits() {
        let s = ShorEstimate::new(512, 1e-4);
        assert_eq!(s.baseline_bandwidth(), s.physical_qubits * 100e6);
    }

    #[test]
    fn lower_error_rate_shrinks_footprint() {
        let coarse = ShorEstimate::new(512, 1e-3);
        let fine = ShorEstimate::new(512, 1e-5);
        assert!(fine.distance < coarse.distance);
        assert!(fine.physical_qubits < coarse.physical_qubits);
    }

    #[test]
    fn sweep_is_monotone() {
        // Figure 2's x-axis: qubits grow monotonically with modulus width.
        let mut last = 0.0;
        for n in [128u32, 256, 512, 768, 1024] {
            let s = ShorEstimate::new(n, 1e-4);
            assert!(s.physical_qubits > last, "n = {n}");
            last = s.physical_qubits;
        }
    }

    #[test]
    fn workload_conversion_keeps_t_fraction() {
        let s = ShorEstimate::new(256, 1e-4);
        let w = s.as_workload();
        assert!((w.t_fraction - 7.0 / 23.0).abs() < 1e-9);
    }

    #[test]
    fn distillation_depth_is_two_levels_at_paper_operating_point() {
        let s = ShorEstimate::new(1024, 1e-4);
        assert_eq!(s.distillation_levels, 2);
        assert!((s.distillation_instrs_per_state() - 2400.0).abs() < 1.0);
    }
}
