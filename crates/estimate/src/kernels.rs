//! Distillation kernel generation: the concrete logical instruction
//! sequence of one 15-to-1 round.
//!
//! §5.3 sizes the MCE instruction cache around "a typical distillation
//! algorithm \[of\] 100 to 200 logical instructions". This module emits
//! that kernel as an executable [`LogicalProgram`]: encode the
//! `[[15,1,3]]` punctured Reed–Muller code over 15 input magic states
//! plus one output qubit, apply the transversal T-gadget, measure the
//! syndrome, and deliver the distilled state. The emitted stream is what
//! the master controller caches into the MCEs (and what the system
//! simulation replays).

use crate::distill_sim::INPUTS;
use quest_isa::{InstrClass, LogicalInstr, LogicalProgram, LogicalQubit};

/// Logical qubit ids used by the kernel: inputs 0–14, output 15.
pub const OUTPUT_QUBIT: u8 = INPUTS as u8;

/// CNOT pairs of the encoding ladder: for each pair of inputs whose
/// 1-based indices share a bit, couple them once per shared generator
/// (the Hamming-code generator structure; see [`crate::distill_sim`]).
fn encoding_pairs() -> Vec<(u8, u8)> {
    let mut pairs = Vec::new();
    // Four X-type generators, one per syndrome bit: qubit j participates
    // in generator g iff bit g of (j+1) is set. Encode by fanning each
    // generator's first member out to the rest.
    for g in 0..4u8 {
        let members: Vec<u8> = (0..INPUTS as u8)
            .filter(|j| (j + 1) >> g & 1 == 1)
            .collect();
        let head = members[0];
        for &m in &members[1..] {
            pairs.push((head, m));
        }
    }
    pairs
}

/// Emits one 15-to-1 distillation round as a classified logical program.
///
/// The stream layout follows the protocol phases: input preparation
/// (15 + 1 preps), encoding CNOT ladder, transversal T-gadget (15 T
/// gates), syndrome measurement (15 X-basis measurements), and the
/// output magic-state injection. All instructions carry
/// [`InstrClass::Distillation`].
///
/// # Example
///
/// ```
/// use quest_estimate::kernels::distillation_kernel;
///
/// let kernel = distillation_kernel();
/// // §5.3: "a typical distillation algorithm has 100 to 200 logical
/// // instructions".
/// assert!((100..=200).contains(&kernel.len()));
/// ```
pub fn distillation_kernel() -> LogicalProgram {
    let mut p = LogicalProgram::new();
    let class = InstrClass::Distillation;

    // Phase 1: prepare the 15 input slots in |+⟩ and the output in |0⟩.
    for q in 0..INPUTS as u8 {
        p.push(LogicalInstr::PrepX(LogicalQubit(q)), class);
    }
    p.push(LogicalInstr::PrepZ(LogicalQubit(OUTPUT_QUBIT)), class);

    // Phase 2: encoding ladder over the Reed–Muller generators, plus the
    // output coupling (logical X of the code is the all-ones string).
    for (c, t) in encoding_pairs() {
        p.push(
            LogicalInstr::Cnot {
                control: LogicalQubit(c),
                target: LogicalQubit(t),
            },
            class,
        );
    }
    for q in 0..INPUTS as u8 {
        if q % 4 == 0 {
            p.push(
                LogicalInstr::Cnot {
                    control: LogicalQubit(q),
                    target: LogicalQubit(OUTPUT_QUBIT),
                },
                class,
            );
        }
    }

    // Phase 3: transversal T-gadget — inject one (noisy) magic state per
    // input and rotate.
    for q in 0..INPUTS as u8 {
        p.push(LogicalInstr::MagicInject(LogicalQubit(q)), class);
        p.push(LogicalInstr::T(LogicalQubit(q)), class);
    }

    // Phase 4: decode — run the encoding ladder in reverse so the
    // syndrome information localizes onto the input slots.
    for (c, t) in encoding_pairs().into_iter().rev() {
        p.push(
            LogicalInstr::Cnot {
                control: LogicalQubit(c),
                target: LogicalQubit(t),
            },
            class,
        );
    }

    // Phase 5: syndrome measurement — X-basis readout of all inputs, with
    // a correction slot (S gate) conditioned at the master on the parity.
    for q in 0..INPUTS as u8 {
        p.push(LogicalInstr::MeasX(LogicalQubit(q)), class);
    }
    p.push(LogicalInstr::S(LogicalQubit(OUTPUT_QUBIT)), class);

    // Phase 6: hand the distilled state to the consumer.
    p.push(LogicalInstr::MagicInject(LogicalQubit(OUTPUT_QUBIT)), class);
    p.push(LogicalInstr::Sync(0), class);
    p
}

/// A workload program with real distillation kernels: `algo_len`
/// algorithmic instructions from the workload's gate mix plus one
/// resident kernel (replayed by the system according to its
/// `distillation_replays` argument).
pub fn workload_with_kernel(
    workload: &crate::workloads::Workload,
    algo_len: usize,
) -> LogicalProgram {
    let mut p = workload.generate_program(algo_len);
    p.extend(distillation_kernel().iter().copied());
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_size_matches_paper_range() {
        let k = distillation_kernel();
        assert!(
            (100..=200).contains(&k.len()),
            "kernel has {} instructions",
            k.len()
        );
    }

    #[test]
    fn kernel_is_all_distillation_class() {
        let k = distillation_kernel();
        assert_eq!(k.count_class(InstrClass::Distillation), k.len());
    }

    #[test]
    fn kernel_consumes_15_magic_states_and_t_gates() {
        let k = distillation_kernel();
        assert_eq!(k.t_count(), INPUTS);
        let injects = k
            .iter()
            .filter(|(i, _)| matches!(i, LogicalInstr::MagicInject(_)))
            .count();
        assert_eq!(injects, INPUTS + 1, "15 inputs + 1 output handoff");
    }

    #[test]
    fn kernel_round_trips_through_encoding() {
        let k = distillation_kernel();
        let decoded = LogicalProgram::decode(&k.encode()).unwrap();
        assert_eq!(decoded.len(), k.len());
    }

    #[test]
    fn encoding_ladder_touches_every_input() {
        let pairs = encoding_pairs();
        let mut touched = std::collections::HashSet::new();
        for (c, t) in pairs {
            touched.insert(c);
            touched.insert(t);
        }
        for q in 0..INPUTS as u8 {
            assert!(touched.contains(&q), "input {q} never coupled");
        }
    }

    #[test]
    fn kernel_fits_a_4kb_instruction_buffer() {
        // §5.3 sizes the software-managed cache for exactly this.
        let k = distillation_kernel();
        assert!(k.encoded_bytes() <= 4096);
    }

    #[test]
    fn workload_with_kernel_mixes_classes() {
        let p = workload_with_kernel(&crate::workloads::Workload::QLS, 50);
        assert_eq!(p.count_class(InstrClass::Algorithmic), 50);
        assert!(p.count_class(InstrClass::Distillation) >= 100);
    }
}
