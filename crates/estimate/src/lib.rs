//! QuRE-style analytical resource and instruction-bandwidth estimator.
//!
//! The paper evaluates QuEST with the QuRE toolbox (resource estimation
//! for quantum algorithms) driving workloads from ScaffCC. Neither tool
//! is openly available, so this crate re-implements the analytical chain:
//!
//! 1. [`distance`] — surface-code distance from the workload's space-time
//!    volume and the physical error rate;
//! 2. [`distillation`] — 15-to-1 magic-state distillation levels,
//!    T-factory counts, and the distillation instruction overhead;
//! 3. [`workloads`] — the seven-workload catalog of §6.1 with logical
//!    resources and an instruction-stream generator;
//! 4. [`shor`] — the parametric Shor model behind Figure 2;
//! 5. [`bandwidth`] — baseline / QuEST / QuEST + cache global instruction
//!    bandwidth and the savings reported in Figures 6, 13, 14 and 15.
//!
//! # Example
//!
//! ```
//! use quest_estimate::bandwidth::analyze_suite;
//!
//! for e in analyze_suite(1e-4) {
//!     assert!(e.mce_savings() >= 1e5, "{}", e.workload.name);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod array;
pub mod bandwidth;
pub mod distance;
pub mod distill_sim;
pub mod distillation;
pub mod footprint;
pub mod kernels;
pub mod shor;
pub mod workloads;

pub use array::ArrayPlan;
pub use bandwidth::{analyze_suite, BandwidthEstimate};
pub use distance::{logical_error_per_round, required_distance};
pub use distillation::DistillationPlan;
pub use shor::ShorEstimate;
pub use workloads::Workload;
