//! Instruction-bandwidth model: baseline vs. QuEST vs. QuEST + cache.
//!
//! The accounting mirrors §7 of the paper:
//!
//! * **baseline** — software-managed QECC streams one byte-sized physical
//!   instruction to every physical qubit at the 100 MHz substrate rate;
//! * **QuEST (MCE)** — QECC is replayed from microcode, so only logical
//!   instructions (algorithmic + magic-state distillation) and
//!   synchronization tokens cross the global bus;
//! * **QuEST + L-cache** — distillation kernels replay from the MCE
//!   instruction caches, leaving the algorithmic stream plus cache/sync
//!   commands.

use crate::distance::qure_distance;
use crate::distillation::DistillationPlan;
use crate::workloads::{Workload, LOGICAL_ILP};
use quest_core::tech::{TechnologyParams, LOGICAL_INSTR_BYTES};
use quest_surface::SyndromeDesign;

/// Sync-token rate relative to the algorithmic instruction stream (one
/// token per ~100 logical instructions for cache management and logical
/// movement).
pub const SYNC_FRACTION: f64 = 0.01;

/// Complete bandwidth analysis of one workload at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthEstimate {
    /// Workload analysed.
    pub workload: Workload,
    /// Physical error rate.
    pub p: f64,
    /// Chosen code distance.
    pub distance: usize,
    /// Total physical qubits (algorithm + T factories).
    pub physical_qubits: f64,
    /// Distillation pipeline.
    pub distillation: DistillationPlan,
    /// Algorithmic logical instructions per second.
    pub algo_rate: f64,
    /// Logical instructions per second entering the control processor
    /// (algorithmic + distillation).
    pub logical_rate: f64,
    /// Baseline bandwidth (bytes/s).
    pub baseline: f64,
    /// QuEST with hardware QECC (bytes/s).
    pub quest_mce: f64,
    /// QuEST with hardware QECC and logical caching (bytes/s).
    pub quest_cached: f64,
}

impl BandwidthEstimate {
    /// Analyses `workload` at physical error rate `p` under `tech` timing
    /// and the given syndrome design.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not below the surface-code threshold.
    pub fn analyze(
        workload: &Workload,
        p: f64,
        tech: &TechnologyParams,
        syndrome: &SyndromeDesign,
    ) -> BandwidthEstimate {
        // --- Footprint -----------------------------------------------------
        let d = qure_distance(p);
        let distillation =
            DistillationPlan::size(p, workload.t_count(), workload.t_rate_per_step());
        let total_logical = workload.logical_qubits + distillation.total_factory_qubits();
        let physical_qubits = total_logical * 12.5 * (d * d) as f64;

        // --- Rates ----------------------------------------------------------
        // Every physical qubit receives `cycle_depth` byte-sized µops per
        // QECC round, continuously (§3.3); one logical time step spans d
        // QECC rounds.
        let qecc_round_time = tech.t_ecc_round;
        let baseline = physical_qubits * syndrome.cycle_depth as f64 / qecc_round_time;
        let step_time = d as f64 * qecc_round_time;
        let algo_rate = LOGICAL_ILP / step_time; // instructions / s
        let distill_rate = algo_rate * distillation.instruction_ratio(workload.t_fraction);
        let sync_rate = algo_rate * SYNC_FRACTION;

        let quest_mce = (algo_rate + distill_rate + sync_rate) * LOGICAL_INSTR_BYTES;
        let quest_cached = (algo_rate + sync_rate) * LOGICAL_INSTR_BYTES;

        BandwidthEstimate {
            workload: *workload,
            p,
            distance: d,
            physical_qubits,
            distillation,
            algo_rate,
            logical_rate: algo_rate + distill_rate,
            baseline,
            quest_mce,
            quest_cached,
        }
    }

    /// Bandwidth saving of hardware-managed QECC (Figure 14, "MCE").
    pub fn mce_savings(&self) -> f64 {
        self.baseline / self.quest_mce
    }

    /// Bandwidth saving with the logical cache (Figure 14, "MCE+L-cache").
    pub fn cached_savings(&self) -> f64 {
        self.baseline / self.quest_cached
    }

    /// Ratio of QECC physical instructions to the workload's algorithmic
    /// logical instructions (Figure 6): what fraction of the baseline
    /// stream is pure error correction. The baseline rate already counts
    /// one µop per physical qubit per instruction slot, so the ratio is
    /// simply baseline instructions over algorithmic instructions.
    pub fn qecc_to_logical_ratio(&self) -> f64 {
        self.baseline / self.algo_rate
    }

    /// Ratio of T-factory logical instructions to algorithmic logical
    /// instructions (Figure 13).
    pub fn t_factory_ratio(&self) -> f64 {
        self.distillation
            .instruction_ratio(self.workload.t_fraction)
    }
}

/// Convenience: analyse the full seven-workload suite at the paper's
/// default operating point (`Projected_D`, Steane syndrome, p as given).
pub fn analyze_suite(p: f64) -> Vec<BandwidthEstimate> {
    Workload::ALL
        .iter()
        .map(|w| {
            BandwidthEstimate::analyze(
                w,
                p,
                &TechnologyParams::PROJECTED_D,
                &SyndromeDesign::STEANE,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gse() -> BandwidthEstimate {
        BandwidthEstimate::analyze(
            &Workload::GSE,
            1e-4,
            &TechnologyParams::PROJECTED_D,
            &SyndromeDesign::STEANE,
        )
    }

    #[test]
    fn mce_savings_are_at_least_five_orders() {
        // §7 headline: "Managing QECC instruction in the MCEs reduces the
        // instruction bandwidth by at least five orders of magnitude."
        for e in analyze_suite(1e-4) {
            assert!(
                e.mce_savings() >= 1e5,
                "{}: {:.2e}",
                e.workload.name,
                e.mce_savings()
            );
        }
    }

    #[test]
    fn cache_adds_roughly_three_more_orders() {
        // §5.3: caching distillation kernels buys ~10³× more. Workloads
        // needing two distillation levels gain ~720×; the two smallest
        // suite members need only one level and gain ~38×.
        let mut two_level_gains = Vec::new();
        for e in analyze_suite(1e-4) {
            let extra = e.cached_savings() / e.mce_savings();
            assert!(
                (10.0..1e5).contains(&extra),
                "{}: extra {extra:.2e}",
                e.workload.name
            );
            if e.distillation.levels == 2 {
                two_level_gains.push(extra);
            }
        }
        assert!(!two_level_gains.is_empty());
        for g in two_level_gains {
            assert!((100.0..5000.0).contains(&g), "two-level gain {g}");
        }
    }

    #[test]
    fn total_savings_are_about_eight_orders() {
        // §7: "the QuEST architecture reduces the instruction bandwidth by
        // almost eight orders of magnitude."
        let suite = analyze_suite(1e-4);
        let log_mean: f64 = suite
            .iter()
            .map(|e| e.cached_savings().log10())
            .sum::<f64>()
            / suite.len() as f64;
        assert!(
            (7.0..10.0).contains(&log_mean),
            "mean log10 savings {log_mean}"
        );
    }

    #[test]
    fn qecc_dominates_the_stream() {
        // Figure 6 / abstract: QECC is ≥ 99.999% of the stream, i.e. the
        // ratio exceeds 10⁵, growing with workload footprint. (Our suite
        // spans ~10⁷–10⁸·⁵; the paper's unpublished problem sizes span
        // 10⁴–10⁹ — see EXPERIMENTS.md.)
        let suite = analyze_suite(1e-4);
        for e in &suite {
            let r = e.qecc_to_logical_ratio();
            assert!(
                (1e5..1e10).contains(&r),
                "{}: ratio {r:.2e}",
                e.workload.name
            );
        }
        // The suite must span at least an order of magnitude.
        let ratios: Vec<f64> = suite
            .iter()
            .map(super::BandwidthEstimate::qecc_to_logical_ratio)
            .collect();
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 10.0, "spread {max:.2e}/{min:.2e}");
    }

    #[test]
    fn savings_insensitive_to_technology_and_syndrome() {
        // §7: savings are nearly configuration-independent (the paper
        // reports a coefficient of variation of 0.0002%). In our model the
        // technology time constants cancel exactly; the syndrome design
        // contributes only its cycle-depth factor (9 vs 14).
        let mut by_tech = Vec::new();
        for tech in &TechnologyParams::ALL {
            let e = BandwidthEstimate::analyze(&Workload::QLS, 1e-4, tech, &SyndromeDesign::STEANE);
            by_tech.push(e.mce_savings());
        }
        for v in &by_tech {
            assert!((v / by_tech[0] - 1.0).abs() < 1e-9, "tech changed savings");
        }
        let steane = BandwidthEstimate::analyze(
            &Workload::QLS,
            1e-4,
            &TechnologyParams::PROJECTED_D,
            &SyndromeDesign::STEANE,
        );
        let shor = BandwidthEstimate::analyze(
            &Workload::QLS,
            1e-4,
            &TechnologyParams::PROJECTED_D,
            &SyndromeDesign::SHOR,
        );
        let ratio = shor.mce_savings() / steane.mce_savings();
        assert!((1.0..2.0).contains(&ratio), "syndrome ratio {ratio}");
    }

    #[test]
    fn error_rate_sensitivity_shape() {
        // Figure 15: lower physical error rate ⇒ smaller code distance ⇒
        // smaller baseline ⇒ smaller savings, while the distillation
        // overhead moves far less than the savings do.
        let w = Workload::SHOR;
        let t = TechnologyParams::PROJECTED_D;
        let s = SyndromeDesign::STEANE;
        let e3 = BandwidthEstimate::analyze(&w, 1e-3, &t, &s);
        let e4 = BandwidthEstimate::analyze(&w, 1e-4, &t, &s);
        let e5 = BandwidthEstimate::analyze(&w, 1e-5, &t, &s);
        assert!(e3.mce_savings() > e4.mce_savings());
        assert!(e4.mce_savings() > e5.mce_savings());
        // Distillation ratio is monotone in p and varies much less than
        // the footprint-driven savings (levels change by at most one).
        let r3 = e3.t_factory_ratio();
        let r5 = e5.t_factory_ratio();
        assert!(r3 >= r5, "distillation ratio not monotone");
        assert!(r3 / r5 < 20.0, "distillation ratio swung {r3}/{r5}");
        let savings_swing = e3.mce_savings() / e5.mce_savings();
        assert!(savings_swing > 5.0, "savings swing {savings_swing}");
    }

    #[test]
    fn distance_and_footprint_are_plausible() {
        let e = gse();
        assert!((9..=41).contains(&e.distance), "distance {}", e.distance);
        assert!(e.physical_qubits > 1e5);
    }
}
