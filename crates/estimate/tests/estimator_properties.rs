//! Property tests of the analytical estimator: the monotonicity laws the
//! paper's scaling arguments depend on.

use proptest::prelude::*;
use quest_core::TechnologyParams;
use quest_estimate::distance::{logical_error_per_round, qure_distance, required_distance};
use quest_estimate::distillation::{levels_needed, output_error, DistillationPlan};
use quest_estimate::{BandwidthEstimate, ShorEstimate, Workload};
use quest_surface::SyndromeDesign;

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::BWT),
        Just(Workload::BF),
        Just(Workload::GSE),
        Just(Workload::FEMOCO),
        Just(Workload::QLS),
        Just(Workload::SHOR),
        Just(Workload::TFP),
    ]
}

proptest! {
    /// Logical error per round is strictly decreasing in distance and
    /// increasing in physical error rate.
    #[test]
    fn logical_error_monotonicity(
        d_idx in 1usize..12,
        p_exp in 3.0f64..6.0,
    ) {
        let d = 2 * d_idx + 1;
        let p = 10f64.powf(-p_exp);
        prop_assert!(logical_error_per_round(d + 2, p) < logical_error_per_round(d, p));
        prop_assert!(logical_error_per_round(d, p * 2.0) > logical_error_per_round(d, p));
    }

    /// The required distance is monotone in the space-time volume and the
    /// chosen distance actually meets the budget.
    #[test]
    fn required_distance_is_correct_and_monotone(
        vol_exp in 2.0f64..18.0,
        p_exp in 3.0f64..6.0,
    ) {
        let v = 10f64.powf(vol_exp);
        let p = 10f64.powf(-p_exp);
        let d = required_distance(v, p);
        prop_assert!(v * logical_error_per_round(d, p) < 0.5);
        prop_assert!(required_distance(v * 100.0, p) >= d);
    }

    /// Distillation output error is decreasing in levels; the level count
    /// from `levels_needed` is minimal.
    #[test]
    fn distillation_levels_minimal(
        p_exp in 3.0f64..5.0,
        target_exp in 6.0f64..20.0,
    ) {
        let p_in = 10f64.powf(-p_exp);
        let target = 10f64.powf(-target_exp);
        let k = levels_needed(p_in, target);
        prop_assert!(output_error(p_in, k) < target);
        if k > 0 {
            prop_assert!(output_error(p_in, k - 1) >= target);
        }
    }

    /// Bigger T counts can only deepen (never shallow) the distillation
    /// pipeline; factories scale with the consumption rate.
    #[test]
    fn distillation_plan_monotone(
        t_exp in 4.0f64..15.0,
        rate in 0.1f64..5.0,
    ) {
        let t = 10f64.powf(t_exp);
        let small = DistillationPlan::size(1e-4, t, rate);
        let big = DistillationPlan::size(1e-4, t * 1e4, rate);
        prop_assert!(big.levels >= small.levels);
        let faster = DistillationPlan::size(1e-4, t, rate * 2.0);
        prop_assert!(faster.factories >= small.factories);
    }

    /// For every workload and configuration: savings ordering
    /// baseline > quest_mce > quest_cached always holds, and both savings
    /// exceed 10^4.
    #[test]
    fn bandwidth_ordering_universal(
        w in workload_strategy(),
        p_exp in 3.1f64..5.0,
        tech_idx in 0usize..3,
        syn_idx in 0usize..2,
    ) {
        let p = 10f64.powf(-p_exp);
        let tech = TechnologyParams::ALL[tech_idx];
        let syn = [SyndromeDesign::STEANE, SyndromeDesign::SHOR][syn_idx];
        let e = BandwidthEstimate::analyze(&w, p, &tech, &syn);
        prop_assert!(e.baseline > e.quest_mce);
        prop_assert!(e.quest_mce > e.quest_cached);
        prop_assert!(e.mce_savings() > 1e4, "{}: {:.2e}", w.name, e.mce_savings());
        prop_assert!(e.cached_savings() > e.mce_savings());
    }

    /// Shor estimates are monotone in the modulus width for every output.
    #[test]
    fn shor_monotone(n1 in 64u32..1024, n2 in 64u32..1024) {
        prop_assume!(n1 < n2);
        let a = ShorEstimate::new(n1, 1e-4);
        let b = ShorEstimate::new(n2, 1e-4);
        prop_assert!(b.logical_qubits > a.logical_qubits);
        prop_assert!(b.t_count > a.t_count);
        prop_assert!(b.physical_qubits >= a.physical_qubits);
        prop_assert!(b.baseline_bandwidth() >= a.baseline_bandwidth());
    }

    /// QuRE distance is monotone in the error rate and always meets the
    /// per-round target.
    #[test]
    fn qure_distance_meets_target(p_exp in 2.1f64..6.0) {
        let p = 10f64.powf(-p_exp);
        let d = qure_distance(p);
        prop_assert!(logical_error_per_round(d, p) < 1e-12);
        if d > 3 {
            prop_assert!(logical_error_per_round(d - 2, p) >= 1e-12);
        }
    }
}
