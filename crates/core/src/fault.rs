//! Deterministic classical-fault injection for the QuEST control plane.
//!
//! The paper's control substrate — MCEs on a shared bus behind a master
//! controller (§4.2) — is modelled elsewhere as perfect: every packet
//! arrives, every MCE responds. Real control planes budget for classical
//! faults. This module defines the dialable fault model the concurrent
//! runtime injects and survives:
//!
//! * **Bus faults** — packets on the master ↔ MCE bus are corrupted
//!   (detected by the CRC-16 field every [`Packet`] carries) or dropped
//!   (detected by acknowledgement timeout), and repaired by bounded
//!   retransmission with exponential backoff. Retransmitted bytes are
//!   accounted in their own [`Traffic::Retransmit`](crate::Traffic)
//!   ledger class, so the bandwidth cost of an unreliable link is
//!   measured, not assumed.
//! * **MCE stalls** — an MCE's instruction buffer stalls and the master's
//!   watchdog times out; the tile degrades gracefully to software-managed
//!   delivery (the QECC stream crosses the bus again) for a quarantine
//!   window. The degradation cost shows up directly in the ledger as
//!   baseline-class traffic — a number the paper never quantifies.
//! * **Decode-pool worker death / shard panics** — scheduled thread
//!   deaths the runtime must contain (respawn or clean typed shutdown)
//!   instead of poisoning mutexes and aborting.
//!
//! Every decision is a pure function of `(fault seed, stream, counter)`
//! — no shared RNG stream exists — so a faulty run is bit-reproducible
//! for any shard count, decode-pool size, or thread schedule, exactly
//! like a fault-free one.

use crate::network::{Packet, PacketKind};
use crate::tile::tile_seed;
use std::fmt;

/// Stream index (far outside any real tile id) from which the fault
/// seed is derived, keeping fault decisions statistically independent of
/// every tile's physics stream.
const FAULT_STREAM: u64 = 0xFA17_0000_0000_0001;

/// Salt separating packet-fault rolls from watchdog rolls.
const SALT_TRANSFER: u64 = 0x01;
/// Salt for watchdog (stall) rolls.
const SALT_WATCHDOG: u64 = 0x02;

/// Largest exponent used for exponential backoff (2^6 = 64 slots).
const MAX_BACKOFF_EXP: u32 = 6;

/// A scheduled shard-thread panic: fault drill for the runtime's
/// containment path (`catch_unwind` → typed `ShardFailed` shutdown).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPanicPlan {
    /// Shard whose worker thread panics.
    pub shard: usize,
    /// QECC cycles the shard completes before panicking.
    pub after_cycles: u64,
}

/// A complete, seedable fault-injection plan.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and is a
/// strict no-op: runs with it are bit-identical to runs of a build
/// without the fault layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a bus packet is dropped in transit (per attempt).
    pub drop_rate: f64,
    /// Probability a bus packet arrives with flipped bits (per attempt),
    /// caught by its CRC-16.
    pub corrupt_rate: f64,
    /// Probability per tile per QECC cycle that the tile's MCE
    /// instruction buffer stalls and the watchdog times out.
    pub stall_rate: f64,
    /// QECC cycles a tile stays degraded to software-managed delivery
    /// after a watchdog timeout (the timeout cycle itself is always
    /// degraded; this extends the quarantine beyond it).
    pub quarantine_cycles: u64,
    /// Retransmission budget per transfer. When the original attempt and
    /// all `max_retries` retransmissions fault, the link is declared
    /// failed and the run shuts down with a typed error.
    pub max_retries: u32,
    /// Kill one decode-pool worker once this many decode jobs have been
    /// dispatched (the pool must respawn it and lose no corrections).
    pub kill_decode_worker_after_jobs: Option<u64>,
    /// Scheduled shard-thread panic (containment drill).
    pub shard_panic: Option<ShardPanicPlan>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults of any class.
    pub fn none() -> FaultPlan {
        FaultPlan {
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            stall_rate: 0.0,
            quarantine_cycles: 0,
            max_retries: 8,
            kill_decode_worker_after_jobs: None,
            shard_panic: None,
        }
    }

    /// `true` when the plan injects nothing (runs are guaranteed
    /// bit-identical to the fault-free path).
    pub fn is_none(&self) -> bool {
        self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.stall_rate == 0.0
            && self.kill_decode_worker_after_jobs.is_none()
            && self.shard_panic.is_none()
    }

    /// Checks the plan's parameters, returning the first invalid rate as
    /// `(name, value)`.
    pub fn check_rates(&self) -> Result<(), (&'static str, f64)> {
        for (name, rate) in [
            ("drop", self.drop_rate),
            ("corrupt", self.corrupt_rate),
            ("stall", self.stall_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err((name, rate));
            }
        }
        Ok(())
    }
}

/// Counters for every fault injected and every recovery performed.
///
/// Part of [`RunReport`](crate::RunReport), and covered by the same
/// determinism guarantee: for a fixed master seed and fault plan these
/// are bit-identical across shard counts.
#[must_use]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Packets that arrived with a CRC mismatch and were retransmitted.
    pub crc_corruptions: u64,
    /// Packets lost in transit (acknowledgement timeout) and
    /// retransmitted.
    pub dropped_packets: u64,
    /// Retransmission attempts performed across all transfers.
    pub retransmissions: u64,
    /// Bytes resent over the bus (mirrors the
    /// [`Traffic::Retransmit`](crate::Traffic) ledger class).
    pub retransmitted_bytes: u64,
    /// Cumulative exponential-backoff slots waited before retransmitting.
    pub backoff_slots: u64,
    /// MCE instruction-buffer stalls that tripped the master's watchdog.
    pub watchdog_timeouts: u64,
    /// Tile-cycles spent degraded to software-managed delivery.
    pub degraded_tile_cycles: u64,
    /// Decode-pool worker threads that died mid-run.
    pub decode_worker_deaths: u64,
    /// Decode-pool workers respawned by the pool supervisor.
    pub decode_worker_respawns: u64,
}

impl RecoveryStats {
    /// `true` when no fault was injected and no recovery ran.
    pub fn is_quiet(&self) -> bool {
        *self == RecoveryStats::default()
    }

    /// Accumulates another run's counters into this one. Plain sums, so
    /// aggregation is order-invariant — the serving layer uses this to
    /// fold every completed job's recovery counters into its tenant's
    /// ledger section.
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.crc_corruptions += other.crc_corruptions;
        self.dropped_packets += other.dropped_packets;
        self.retransmissions += other.retransmissions;
        self.retransmitted_bytes += other.retransmitted_bytes;
        self.backoff_slots += other.backoff_slots;
        self.watchdog_timeouts += other.watchdog_timeouts;
        self.degraded_tile_cycles += other.degraded_tile_cycles;
        self.decode_worker_deaths += other.decode_worker_deaths;
        self.decode_worker_respawns += other.decode_worker_respawns;
    }
}

impl fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bus: {} corrupted (CRC), {} dropped, {} retransmissions \
             ({} B, {} backoff slots)",
            self.crc_corruptions,
            self.dropped_packets,
            self.retransmissions,
            self.retransmitted_bytes,
            self.backoff_slots,
        )?;
        writeln!(
            f,
            "mce: {} watchdog timeouts, {} degraded tile-cycles",
            self.watchdog_timeouts, self.degraded_tile_cycles,
        )?;
        write!(
            f,
            "decode pool: {} worker deaths, {} respawned",
            self.decode_worker_deaths, self.decode_worker_respawns,
        )
    }
}

/// A transfer exhausted its retransmission budget: the original attempt
/// and every retry faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFailure {
    /// The MCE whose link failed.
    pub tile: usize,
    /// Attempts made (original + retransmissions).
    pub attempts: u32,
}

impl fmt::Display for LinkFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bus link to MCE {} failed: {} attempts all dropped or corrupted \
             (raise the retry budget or lower the fault rates)",
            self.tile, self.attempts
        )
    }
}

impl std::error::Error for LinkFailure {}

/// Outcome of one reliable transfer: how many extra attempts the fault
/// layer needed and what they cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Delivery {
    /// Retransmissions performed (0 for a clean first attempt).
    pub retransmissions: u32,
    /// Bytes resent (retransmissions × transfer size).
    pub retransmitted_bytes: u64,
}

/// Per-tile fault-lane state.
#[derive(Debug, Clone, Copy, Default)]
struct Lane {
    /// Transfer attempts rolled on this lane so far (the roll counter).
    attempts: u64,
    /// The tile is degraded for cycles `< quarantined_until`.
    quarantined_until: u64,
}

/// Live fault-injection state for one run, owned by the master thread.
///
/// All mutation happens on the master, and every roll is keyed by a
/// per-tile counter over a deterministic per-tile event sequence, so the
/// session's decisions — and therefore the whole faulty run — do not
/// depend on sharding or thread scheduling.
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: FaultPlan,
    seed: u64,
    lanes: Vec<Lane>,
    cycle: u64,
    stats: RecoveryStats,
    decode_kill_armed: bool,
}

impl FaultSession {
    /// Builds the session for `tiles` MCEs, deriving the fault seed from
    /// the run's master seed.
    pub fn new(plan: FaultPlan, master_seed: u64, tiles: usize) -> FaultSession {
        FaultSession {
            seed: tile_seed(master_seed, FAULT_STREAM),
            lanes: vec![Lane::default(); tiles],
            cycle: 0,
            stats: RecoveryStats::default(),
            decode_kill_armed: plan.kill_decode_worker_after_jobs.is_some(),
            plan,
        }
    }

    /// The plan being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// A uniform roll in `[0, 1)` from `(seed, salt, stream, counter)`.
    fn roll(&self, salt: u64, stream: u64, counter: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(counter.wrapping_mul(0x94d0_49bb_1331_11eb));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Performs one reliable transfer of `bytes` to or from `tile`:
    /// builds the CRC-sealed packet, injects drop/corruption faults, and
    /// retransmits with exponential backoff until the packet arrives
    /// intact or the retry budget runs out.
    ///
    /// Corruption is detected the way real hardware detects it — bits of
    /// the received packet are flipped and its CRC-16 no longer matches —
    /// not by an oracle flag.
    ///
    /// # Errors
    ///
    /// Returns [`LinkFailure`] when the original attempt and all
    /// `max_retries` retransmissions fault.
    pub fn transfer(
        &mut self,
        tile: usize,
        bytes: u64,
        kind: PacketKind,
    ) -> Result<Delivery, LinkFailure> {
        if self.plan.drop_rate == 0.0 && self.plan.corrupt_rate == 0.0 {
            return Ok(Delivery::default());
        }
        let mut delivery = Delivery::default();
        for attempt in 0..=self.plan.max_retries {
            let counter = {
                let lane = &mut self.lanes[tile];
                lane.attempts += 1;
                lane.attempts
            };
            if attempt > 0 {
                delivery.retransmissions += 1;
                delivery.retransmitted_bytes += bytes;
                self.stats.retransmissions += 1;
                self.stats.retransmitted_bytes += bytes;
                self.stats.backoff_slots += 1 << (attempt - 1).min(MAX_BACKOFF_EXP);
            }
            let r = self.roll(SALT_TRANSFER, tile as u64, counter);
            if r < self.plan.drop_rate {
                // Lost in transit: no packet to check; the sender's
                // acknowledgement timer expires.
                self.stats.dropped_packets += 1;
                continue;
            }
            let mut packet = Packet::sealed(tile, bytes, kind);
            if r < self.plan.drop_rate + self.plan.corrupt_rate {
                // Arrived with flipped bits; pick the bit from the same
                // roll so the decision stays a pure function of the lane
                // counter.
                let bit = ((r * 4096.0) as u32) % 64;
                packet = packet.with_bit_error(bit);
            }
            if packet.verify() {
                return Ok(delivery);
            }
            self.stats.crc_corruptions += 1;
        }
        Err(LinkFailure {
            tile,
            attempts: self.plan.max_retries + 1,
        })
    }

    /// Enters QECC cycle `cycle` (the master calls this once per barrier
    /// round before asking for tile modes).
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// Rolls the watchdog for one tile in the current cycle and reports
    /// whether the tile runs degraded (software-managed delivery).
    /// A fresh stall quarantines the tile for the current cycle plus
    /// [`FaultPlan::quarantine_cycles`] more.
    pub fn tile_degraded(&mut self, tile: usize) -> bool {
        let quarantined = self.cycle < self.lanes[tile].quarantined_until;
        if !quarantined && self.plan.stall_rate > 0.0 {
            let r = self.roll(SALT_WATCHDOG, tile as u64, self.cycle);
            if r < self.plan.stall_rate {
                self.stats.watchdog_timeouts += 1;
                self.lanes[tile].quarantined_until = self.cycle + 1 + self.plan.quarantine_cycles;
            }
        }
        let degraded = self.cycle < self.lanes[tile].quarantined_until;
        if degraded {
            self.stats.degraded_tile_cycles += 1;
        }
        degraded
    }

    /// `true` exactly once: when `jobs_dispatched` first reaches the
    /// plan's decode-worker kill threshold. The pool uses this to mark a
    /// chunk as the one whose worker dies.
    pub fn take_decode_kill(&mut self, jobs_dispatched: u64) -> bool {
        match self.plan.kill_decode_worker_after_jobs {
            Some(threshold) if self.decode_kill_armed && jobs_dispatched >= threshold => {
                self.decode_kill_armed = false;
                true
            }
            _ => false,
        }
    }

    /// Folds pool-supervisor counters into the recovery statistics at
    /// the end of a run.
    pub fn note_pool_recoveries(&mut self, deaths: u64, respawns: u64) {
        self.stats.decode_worker_deaths += deaths;
        self.stats.decode_worker_respawns += respawns;
    }

    /// Permanently disarms the plan's scheduled decode-worker kill
    /// without touching any other state. A retry supervisor calls this
    /// on a resumed session so the fault that already killed the run
    /// once cannot fire again on the next attempt.
    pub fn disarm_decode_kill(&mut self) {
        self.decode_kill_armed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_a_strict_noop() {
        let mut s = FaultSession::new(FaultPlan::none(), 7, 4);
        for tile in 0..4 {
            for _ in 0..100 {
                assert_eq!(
                    s.transfer(tile, 64, PacketKind::Downstream),
                    Ok(Delivery::default())
                );
            }
            s.begin_cycle(0);
            assert!(!s.tile_degraded(tile));
        }
        assert!(s.stats().is_quiet());
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
    }

    #[test]
    fn faulty_transfers_are_deterministic_and_accounted() {
        let plan = FaultPlan {
            drop_rate: 0.2,
            corrupt_rate: 0.2,
            ..FaultPlan::none()
        };
        let run = |tiles: usize| {
            let mut s = FaultSession::new(plan, 42, tiles);
            let mut deliveries = Vec::new();
            for tile in 0..tiles.min(4) {
                for _ in 0..200 {
                    deliveries.push(s.transfer(tile, 32, PacketKind::Upstream).unwrap());
                }
            }
            (deliveries, s.stats())
        };
        let (d1, s1) = run(4);
        let (d2, s2) = run(4);
        assert_eq!(d1, d2, "per-lane rolls must be pure");
        assert_eq!(s1, s2);
        assert!(s1.retransmissions > 0, "40% fault rate must retransmit");
        assert!(s1.crc_corruptions > 0, "corruption must be CRC-detected");
        assert!(s1.dropped_packets > 0);
        assert_eq!(
            s1.retransmitted_bytes,
            s1.retransmissions * 32,
            "every retransmission resends the full transfer"
        );
        assert!(s1.backoff_slots >= s1.retransmissions);
    }

    #[test]
    fn lanes_are_independent() {
        // The same sequence of transfers on tile 0 rolls identically
        // whether or not other tiles transferred in between.
        let plan = FaultPlan {
            drop_rate: 0.3,
            ..FaultPlan::none()
        };
        let mut alone = FaultSession::new(plan, 9, 8);
        let solo: Vec<_> = (0..50)
            .map(|_| alone.transfer(0, 16, PacketKind::Downstream).unwrap())
            .collect();
        let mut mixed = FaultSession::new(plan, 9, 8);
        let interleaved: Vec<_> = (0..50)
            .map(|_| {
                for other in 1..8 {
                    mixed.transfer(other, 16, PacketKind::Downstream).unwrap();
                }
                mixed.transfer(0, 16, PacketKind::Downstream).unwrap()
            })
            .collect();
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn hopeless_link_fails_with_bounded_attempts() {
        let plan = FaultPlan {
            drop_rate: 1.0,
            max_retries: 3,
            ..FaultPlan::none()
        };
        let mut s = FaultSession::new(plan, 1, 2);
        let err = s.transfer(1, 8, PacketKind::Downstream).unwrap_err();
        assert_eq!(
            err,
            LinkFailure {
                tile: 1,
                attempts: 4
            }
        );
        assert!(err.to_string().contains("MCE 1"));
        assert_eq!(s.stats().dropped_packets, 4);
        assert_eq!(s.stats().retransmissions, 3);
    }

    #[test]
    fn watchdog_quarantines_for_the_window() {
        let plan = FaultPlan {
            stall_rate: 1.0,
            quarantine_cycles: 3,
            ..FaultPlan::none()
        };
        let mut s = FaultSession::new(plan, 5, 1);
        s.begin_cycle(0);
        assert!(s.tile_degraded(0), "certain stall must degrade");
        assert_eq!(s.stats().watchdog_timeouts, 1);
        // Already quarantined: no second timeout inside the window.
        for cycle in 1..4 {
            s.begin_cycle(cycle);
            assert!(s.tile_degraded(0), "cycle {cycle} inside quarantine");
        }
        assert_eq!(s.stats().watchdog_timeouts, 1);
        assert_eq!(s.stats().degraded_tile_cycles, 4);
        // The window expires; the next roll stalls afresh.
        s.begin_cycle(4);
        assert!(s.tile_degraded(0));
        assert_eq!(s.stats().watchdog_timeouts, 2);
    }

    #[test]
    fn decode_kill_fires_exactly_once() {
        let plan = FaultPlan {
            kill_decode_worker_after_jobs: Some(10),
            ..FaultPlan::none()
        };
        let mut s = FaultSession::new(plan, 3, 1);
        assert!(!s.take_decode_kill(9));
        assert!(s.take_decode_kill(10));
        assert!(!s.take_decode_kill(11), "the kill is one-shot");
        s.note_pool_recoveries(1, 1);
        assert_eq!(s.stats().decode_worker_deaths, 1);
        assert_eq!(s.stats().decode_worker_respawns, 1);
    }

    #[test]
    fn rate_checks_catch_bad_plans() {
        assert!(FaultPlan::none().check_rates().is_ok());
        let bad = FaultPlan {
            corrupt_rate: 1.5,
            ..FaultPlan::none()
        };
        assert_eq!(bad.check_rates(), Err(("corrupt", 1.5)));
        let nan = FaultPlan {
            drop_rate: f64::NAN,
            ..FaultPlan::none()
        };
        assert!(nan.check_rates().is_err());
    }

    #[test]
    fn display_summarizes_all_classes() {
        let stats = RecoveryStats {
            crc_corruptions: 2,
            dropped_packets: 1,
            retransmissions: 3,
            retransmitted_bytes: 96,
            backoff_slots: 4,
            watchdog_timeouts: 1,
            degraded_tile_cycles: 5,
            decode_worker_deaths: 1,
            decode_worker_respawns: 1,
        };
        let s = stats.to_string();
        assert!(s.contains("CRC"));
        assert!(s.contains("watchdog"));
        assert!(s.contains("respawned"));
        assert!(!stats.is_quiet());
    }
}
