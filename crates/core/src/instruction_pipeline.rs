//! MCE instruction pipeline: logical-instruction buffering, decode, and
//! the software-managed instruction cache (§5.1, §5.3).
//!
//! The pipeline receives two-byte logical instructions from the master
//! controller (step ④), decodes them (step ⑤) and expands them into µops
//! in the logical-µop table / mask-table writes (step ⑥). Because QuEST
//! decouples QECC delivery from logical delivery, the buffer may be
//! managed as a *cache*: deterministic distillation kernels are loaded
//! once over the global bus and replayed locally, cutting logical
//! bandwidth by orders of magnitude (§5.3).

use quest_isa::{InstrClass, LogicalInstr};
use std::collections::BTreeMap;
use std::fmt;

/// Outcome of offering one instruction to the pipeline's cache stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Delivered over the global bus (buffer mode, or a cache fill).
    BusDelivered {
        /// Bytes that crossed the global bus.
        bytes: u64,
    },
    /// Served from the local instruction cache; no bus traffic.
    CacheHit,
}

/// Statistics for the instruction pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Instructions delivered over the bus.
    pub bus_instructions: u64,
    /// Instructions replayed from the cache.
    pub cached_instructions: u64,
    /// Instructions decoded and issued to the logical-µop table.
    pub issued: u64,
}

/// A cached instruction block (one distillation kernel, typically 100–200
/// instructions).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct CacheBlock {
    instrs: Vec<LogicalInstr>,
}

/// The instruction pipeline of one MCE.
///
/// # Example
///
/// ```
/// use quest_core::instruction_pipeline::InstructionPipeline;
/// use quest_isa::{LogicalInstr, LogicalQubit};
///
/// let mut ip = InstructionPipeline::new(4096);
/// // Fill block 0 once (bus traffic)...
/// ip.cache_fill(0, &[LogicalInstr::H(LogicalQubit(0)); 150]);
/// // ...then replay it many times for free.
/// for _ in 0..100 {
///     let replayed = ip.cache_replay(0).unwrap();
///     assert_eq!(replayed.len(), 150);
/// }
/// assert_eq!(ip.stats().cached_instructions, 15_000);
/// ```
#[derive(Debug, Clone)]
pub struct InstructionPipeline {
    /// Cache capacity in bytes (the instruction buffer size).
    capacity_bytes: usize,
    blocks: BTreeMap<u8, CacheBlock>,
    issued_log: Vec<LogicalInstr>,
    stats: PipelineStats,
}

impl InstructionPipeline {
    /// Builds a pipeline whose instruction buffer holds `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_bytes: usize) -> InstructionPipeline {
        assert!(capacity_bytes > 0, "instruction buffer needs capacity");
        InstructionPipeline {
            capacity_bytes,
            blocks: BTreeMap::new(),
            issued_log: Vec::new(),
            stats: PipelineStats::default(),
        }
    }

    /// Buffer capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently used by cached blocks.
    pub fn used_bytes(&self) -> usize {
        self.blocks
            .values()
            .map(|b| b.instrs.len() * LogicalInstr::ENCODED_BYTES)
            .sum()
    }

    /// Statistics so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Instructions issued so far, in order (the logical-µop trace).
    pub fn issued_log(&self) -> &[LogicalInstr] {
        &self.issued_log
    }

    /// Delivers one instruction over the bus and issues it immediately
    /// (plain buffer mode, step ④→⑥). Returns the bus traffic incurred.
    pub fn deliver(&mut self, i: LogicalInstr) -> FetchOutcome {
        self.stats.bus_instructions += 1;
        self.issue(i);
        FetchOutcome::BusDelivered {
            bytes: LogicalInstr::ENCODED_BYTES as u64,
        }
    }

    /// Loads a block into the software-managed cache (costs bus traffic
    /// once). Instructions are stored, not issued.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the overflowing byte count if the block would
    /// exceed the buffer capacity.
    pub fn cache_fill(&mut self, block: u8, instrs: &[LogicalInstr]) -> u64 {
        let bytes = (instrs.len() * LogicalInstr::ENCODED_BYTES) as u64;
        assert!(
            self.used_bytes() + bytes as usize <= self.capacity_bytes,
            "cache fill of {bytes} B overflows the {}-byte instruction buffer",
            self.capacity_bytes
        );
        self.stats.bus_instructions += instrs.len() as u64;
        self.blocks.insert(
            block,
            CacheBlock {
                instrs: instrs.to_vec(),
            },
        );
        bytes
    }

    /// Replays a cached block: every instruction issues locally with zero
    /// bus traffic. Returns the instructions issued, or `None` on a cache
    /// miss (unknown block id).
    pub fn cache_replay(&mut self, block: u8) -> Option<Vec<LogicalInstr>> {
        let instrs = self.blocks.get(&block)?.instrs.clone();
        for &i in &instrs {
            self.stats.cached_instructions += 1;
            self.issue(i);
        }
        Some(instrs)
    }

    /// Evicts a block, freeing buffer space.
    pub fn cache_evict(&mut self, block: u8) -> bool {
        self.blocks.remove(&block).is_some()
    }

    /// Returns `true` when a block is resident.
    pub fn cache_contains(&self, block: u8) -> bool {
        self.blocks.contains_key(&block)
    }

    fn issue(&mut self, i: LogicalInstr) {
        self.stats.issued += 1;
        self.issued_log.push(i);
    }

    /// Clears the issued-instruction trace (keeps cache contents).
    pub fn clear_log(&mut self) {
        self.issued_log.clear();
    }
}

impl fmt::Display for InstructionPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ip[{} blocks, {}/{} B, {} bus / {} cached]",
            self.blocks.len(),
            self.used_bytes(),
            self.capacity_bytes,
            self.stats.bus_instructions,
            self.stats.cached_instructions
        )
    }
}

/// Computes the logical-bandwidth ratio achieved by caching a kernel of
/// `kernel_len` instructions replayed `replays` times: bus bytes without
/// cache divided by bus bytes with cache (fill once + replay commands).
pub fn cache_bandwidth_ratio(kernel_len: usize, replays: u64) -> f64 {
    let without = kernel_len as f64 * replays as f64;
    let with = kernel_len as f64 + replays as f64; // fill + one replay token each
    without / with
}

/// Classifies delivered instructions for bandwidth accounting (used by the
/// system model when draining a program through the pipeline).
pub fn traffic_class(class: InstrClass) -> crate::bus::Traffic {
    match class {
        InstrClass::Algorithmic => crate::bus::Traffic::LogicalInstructions,
        InstrClass::Distillation => crate::bus::Traffic::Distillation,
        InstrClass::Sync => crate::bus::Traffic::Sync,
        InstrClass::CacheControl => crate::bus::Traffic::Sync,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_isa::LogicalQubit;

    fn kernel(n: usize) -> Vec<LogicalInstr> {
        (0..n)
            .map(|i| LogicalInstr::H(LogicalQubit((i % 8) as u8)))
            .collect()
    }

    #[test]
    fn plain_delivery_costs_two_bytes_each() {
        let mut ip = InstructionPipeline::new(1024);
        let out = ip.deliver(LogicalInstr::T(LogicalQubit(0)));
        assert_eq!(out, FetchOutcome::BusDelivered { bytes: 2 });
        assert_eq!(ip.stats().bus_instructions, 1);
        assert_eq!(ip.stats().issued, 1);
    }

    #[test]
    fn cache_replay_issues_without_bus_traffic() {
        let mut ip = InstructionPipeline::new(1024);
        let k = kernel(150);
        let fill_bytes = ip.cache_fill(3, &k);
        assert_eq!(fill_bytes, 300);
        let before_bus = ip.stats().bus_instructions;
        for _ in 0..1000 {
            assert!(ip.cache_replay(3).is_some());
        }
        assert_eq!(ip.stats().bus_instructions, before_bus);
        assert_eq!(ip.stats().cached_instructions, 150_000);
        assert_eq!(ip.stats().issued, 150_000);
    }

    #[test]
    fn replay_miss_returns_none() {
        let mut ip = InstructionPipeline::new(64);
        assert!(ip.cache_replay(9).is_none());
    }

    #[test]
    fn eviction_frees_space() {
        let mut ip = InstructionPipeline::new(400);
        ip.cache_fill(0, &kernel(100)); // 200 B
        assert_eq!(ip.used_bytes(), 200);
        assert!(ip.cache_evict(0));
        assert_eq!(ip.used_bytes(), 0);
        assert!(!ip.cache_contains(0));
        assert!(!ip.cache_evict(0));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_fill_panics() {
        let mut ip = InstructionPipeline::new(100);
        ip.cache_fill(0, &kernel(100)); // 200 B > 100 B
    }

    #[test]
    fn cache_ratio_is_three_orders_for_typical_kernels() {
        // §5.3: a 100–200 instruction distillation kernel replayed for the
        // duration of a workload cuts logical bandwidth ~1000×.
        let r = cache_bandwidth_ratio(150, 1_000_000);
        assert!(r > 100.0, "ratio {r}");
        let r_long = cache_bandwidth_ratio(150, u64::MAX / 2);
        assert!(r_long > 140.0 && r_long < 151.0, "asymptote {r_long}");
    }
}
