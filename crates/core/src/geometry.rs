//! Tile geometry: mapping between MCE qubit slots and lattice positions.
//!
//! The prime-line execution unit addresses qubits by their position on the
//! physical substrate; two-qubit µops name their partner by a coupling
//! *direction* (the switch matrix energizes one of four diagonal couplers).
//! `TileGeometry` resolves those directions back to qubit indices so the
//! execution unit can reconstruct the gates a VLIW word encodes.
//!
//! For the rotated surface code, data qubit `(r, c)` sits at grid
//! coordinate `(2r+1, 2c+1)` and the ancilla of plaquette `(pr, pc)` at
//! `(2pr, 2pc)`; diagonal neighbours are at offset `(±1, ±1)`.

use quest_isa::Direction;
use quest_surface::RotatedLattice;
use std::collections::HashMap;

/// Grid coordinates and neighbour resolution for an MCE tile.
#[derive(Debug, Clone)]
pub struct TileGeometry {
    coords: Vec<(i32, i32)>,
    index: HashMap<(i32, i32), usize>,
}

impl TileGeometry {
    /// Builds the geometry of a rotated-surface-code tile.
    pub fn from_lattice(lattice: &RotatedLattice) -> TileGeometry {
        let d = lattice.distance();
        let mut coords = vec![(0, 0); lattice.num_qubits()];
        for r in 0..d {
            for c in 0..d {
                coords[lattice.data_index(r, c)] = (2 * r as i32 + 1, 2 * c as i32 + 1);
            }
        }
        for p in lattice.plaquettes() {
            coords[p.ancilla] = (2 * p.row as i32, 2 * p.col as i32);
        }
        let index = coords
            .iter()
            .copied()
            .enumerate()
            .map(|(i, xy)| (xy, i))
            .collect();
        TileGeometry { coords, index }
    }

    /// Number of qubits in the tile.
    pub fn num_qubits(&self) -> usize {
        self.coords.len()
    }

    /// Grid coordinate of a qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn coord(&self, q: usize) -> (i32, i32) {
        self.coords[q]
    }

    /// The diagonal neighbour of qubit `q` in direction `dir`, if that
    /// position holds a qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn neighbor(&self, q: usize, dir: Direction) -> Option<usize> {
        let (r, c) = self.coords[q];
        let (dr, dc) = match dir {
            Direction::Nw => (-1, -1),
            Direction::Ne => (-1, 1),
            Direction::Sw => (1, -1),
            Direction::Se => (1, 1),
        };
        self.index.get(&(r + dr, c + dc)).copied()
    }

    /// Direction from qubit `a` to adjacent qubit `b`, if they are
    /// diagonal neighbours.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn direction_between(&self, a: usize, b: usize) -> Option<Direction> {
        let (ar, ac) = self.coords[a];
        let (br, bc) = self.coords[b];
        match (br - ar, bc - ac) {
            (-1, -1) => Some(Direction::Nw),
            (-1, 1) => Some(Direction::Ne),
            (1, -1) => Some(Direction::Sw),
            (1, 1) => Some(Direction::Se),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_surface::StabKind;

    #[test]
    fn coordinates_are_unique() {
        let lat = RotatedLattice::new(5);
        let g = TileGeometry::from_lattice(&lat);
        let mut seen = std::collections::HashSet::new();
        for q in 0..g.num_qubits() {
            assert!(seen.insert(g.coord(q)), "duplicate coordinate");
        }
    }

    #[test]
    fn ancilla_neighbours_are_its_plaquette_data() {
        let lat = RotatedLattice::new(3);
        let g = TileGeometry::from_lattice(&lat);
        for p in lat.plaquettes() {
            let mut found = Vec::new();
            for dir in Direction::ALL {
                if let Some(n) = g.neighbor(p.ancilla, dir) {
                    if n < lat.num_data() {
                        found.push(n);
                    }
                }
            }
            found.sort_unstable();
            let mut expected = p.data.clone();
            expected.sort_unstable();
            assert_eq!(found, expected, "plaquette ({}, {})", p.row, p.col);
        }
    }

    #[test]
    fn direction_between_is_inverse_of_neighbor() {
        let lat = RotatedLattice::new(3);
        let g = TileGeometry::from_lattice(&lat);
        for q in 0..g.num_qubits() {
            for dir in Direction::ALL {
                if let Some(n) = g.neighbor(q, dir) {
                    assert_eq!(g.direction_between(q, n), Some(dir));
                    assert_eq!(g.direction_between(n, q), Some(dir.opposite()));
                }
            }
        }
    }

    #[test]
    fn non_adjacent_qubits_have_no_direction() {
        let lat = RotatedLattice::new(3);
        let g = TileGeometry::from_lattice(&lat);
        // Two data qubits in the same row are 2 grid columns apart.
        let a = lat.data_index(0, 0);
        let b = lat.data_index(0, 1);
        assert_eq!(g.direction_between(a, b), None);
    }

    #[test]
    fn x_ancillas_touch_their_scheduled_corners() {
        let lat = RotatedLattice::new(5);
        let g = TileGeometry::from_lattice(&lat);
        for p in lat.plaquettes_of(StabKind::X) {
            let corners = lat.corners(p);
            let dirs = [Direction::Nw, Direction::Ne, Direction::Sw, Direction::Se];
            for (dir, corner) in dirs.into_iter().zip(corners) {
                assert_eq!(g.neighbor(p.ancilla, dir), corner);
            }
        }
    }
}
