//! Slot-timing model of the microcode pipeline's three-step execution
//! (§4.3, Figure 8a).
//!
//! Within one instruction slot the MCE must: ① stream every serviced
//! qubit's µop out of the microcode memory, ② latch each onto its
//! microwave switch, and ③ fire the master clock. Steps ①/② are
//! pipelined with the previous slot's step ③ ("when a microwave switch is
//! active ... µops corresponding to next instructions can be latched"),
//! so the feasibility condition is simply that the streaming time fits
//! within one slot. This module computes the timing budget, slack and
//! utilization for a tile — the continuous-time counterpart of the
//! discrete serviced-qubit bound in [`crate::microcode`].

use crate::jj::{MemoryConfig, JJ_CLOCK_HZ, WORD_BITS};
use crate::tech::TechnologyParams;

/// Timing budget of one instruction slot for one MCE tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotTiming {
    /// Slot duration in seconds (the shortest gate slot of the
    /// technology).
    pub slot_s: f64,
    /// Time to stream and latch the whole tile's µops.
    pub latch_s: f64,
    /// µops delivered per memory word.
    pub uops_per_word: usize,
    /// Memory reads needed per slot (across all channels).
    pub reads_per_slot: usize,
}

impl SlotTiming {
    /// Computes the budget for `tile_width` qubits on `config` at `tech`,
    /// with `opcode_bits`-wide µops.
    ///
    /// # Panics
    ///
    /// Panics if `tile_width` is zero or `opcode_bits` is not positive.
    pub fn compute(
        tile_width: usize,
        config: &MemoryConfig,
        tech: &TechnologyParams,
        opcode_bits: f64,
    ) -> SlotTiming {
        assert!(tile_width > 0, "tile must hold at least one qubit");
        assert!(opcode_bits > 0.0, "µop width must be positive");
        let uops_per_word = (WORD_BITS as f64 / opcode_bits).floor() as usize;
        let reads = tile_width.div_ceil(uops_per_word);
        // Channels stream in parallel; each read takes `read_latency`
        // JJ cycles (fully pipelined banks would do better; we model the
        // paper's unpipelined latency, matching its 6x-at-4-channels
        // arithmetic).
        let rounds_of_reads = reads.div_ceil(config.channels());
        let latch_s = rounds_of_reads as f64 * config.read_latency_cycles() as f64 / JJ_CLOCK_HZ;
        SlotTiming {
            slot_s: tech.min_slot(),
            latch_s,
            uops_per_word,
            reads_per_slot: reads,
        }
    }

    /// Whether the tile's µops can be re-latched within one slot.
    pub fn feasible(&self) -> bool {
        self.latch_s <= self.slot_s
    }

    /// Remaining slack per slot in seconds (negative when infeasible).
    pub fn slack_s(&self) -> f64 {
        self.slot_s - self.latch_s
    }

    /// Memory-time utilization of the slot (1.0 = saturated).
    pub fn utilization(&self) -> f64 {
        self.latch_s / self.slot_s
    }
}

/// Largest tile width whose latch time fits in one slot — the continuous
/// counterpart of [`crate::microcode::bandwidth_limited_qubits`].
pub fn max_feasible_tile(
    config: &MemoryConfig,
    tech: &TechnologyParams,
    opcode_bits: f64,
) -> usize {
    let mut lo = 1usize;
    let mut hi = 1usize;
    while SlotTiming::compute(hi, config, tech, opcode_bits).feasible() {
        lo = hi;
        hi *= 2;
        if hi > 1 << 24 {
            break;
        }
    }
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if SlotTiming::compute(mid, config, tech, opcode_bits).feasible() {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microcode::bandwidth_limited_qubits;

    #[test]
    fn small_tiles_have_slack() {
        let cfg = MemoryConfig::new(4, 1024);
        let tech = TechnologyParams::PROJECTED_F;
        let t = SlotTiming::compute(17, &cfg, &tech, 4.0);
        assert!(t.feasible());
        assert!(t.slack_s() > 0.0);
        assert!(t.utilization() < 0.1);
    }

    #[test]
    fn oversized_tiles_are_infeasible() {
        let cfg = MemoryConfig::new(1, 4096);
        let tech = TechnologyParams::PROJECTED_D; // 5 ns slots
        let t = SlotTiming::compute(100_000, &cfg, &tech, 4.0);
        assert!(!t.feasible());
        assert!(t.slack_s() < 0.0);
    }

    #[test]
    fn continuous_and_discrete_limits_agree() {
        // The binary-searched timing limit must match the closed-form
        // bandwidth bound within one word of quantization.
        for cfg in MemoryConfig::four_kb_sweep() {
            for tech in &TechnologyParams::ALL {
                let discrete = bandwidth_limited_qubits(&cfg, tech, 4.0);
                let continuous = max_feasible_tile(&cfg, tech, 4.0);
                let diff = discrete.abs_diff(continuous);
                assert!(
                    diff <= 8,
                    "{cfg}: discrete {discrete} vs continuous {continuous} at {tech}"
                );
            }
        }
    }

    #[test]
    fn utilization_scales_linearly_with_tile() {
        let cfg = MemoryConfig::new(2, 2048);
        let tech = TechnologyParams::PROJECTED_F;
        let u100 = SlotTiming::compute(100, &cfg, &tech, 4.0).utilization();
        let u400 = SlotTiming::compute(400, &cfg, &tech, 4.0).utilization();
        // Linear up to the read/round quantization (⌈·⌉ twice).
        let ratio = u400 / u100;
        assert!((3.0..=5.0).contains(&ratio), "{u100} vs {u400}");
    }

    #[test]
    fn more_channels_cut_latch_time() {
        let tech = TechnologyParams::PROJECTED_F;
        let one = SlotTiming::compute(256, &MemoryConfig::new(1, 4096), &tech, 4.0);
        let four = SlotTiming::compute(256, &MemoryConfig::new(4, 1024), &tech, 4.0);
        assert!(four.latch_s < one.latch_s);
    }
}
