//! Typed construction errors for the simulation systems.
//!
//! Every public constructor in this crate validates its parameters and
//! returns a [`BuildError`] instead of panicking, so front ends (the CLI,
//! the runtime) can surface a one-line diagnostic to the user. The enum
//! is hand-rolled in the `thiserror` style (a variant per failure, a
//! `Display` message each) because the workspace vendors no proc-macro
//! crates.

use std::fmt;

/// A system constructor rejected its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The surface-code distance is not an odd number ≥ 3.
    InvalidDistance(usize),
    /// A probability parameter lies outside `[0, 1]`.
    InvalidProbability {
        /// Which parameter (e.g. `"error rate"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A multi-tile system needs at least one tile.
    NoTiles,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::InvalidDistance(d) => {
                write!(f, "code distance must be an odd number >= 3, got {d}")
            }
            BuildError::InvalidProbability { what, value } => {
                write!(f, "{what} {value} outside [0, 1]")
            }
            BuildError::NoTiles => write!(f, "need at least one tile"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A transversal logical CNOT between tiles was rejected.
///
/// Raised before any state is touched: a rejected CNOT leaves the
/// substrate, the Pauli frames, and the syndrome references exactly as
/// they were.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnotError {
    /// A tile index is out of range for the system.
    TileOutOfRange {
        /// The offending index.
        tile: usize,
        /// How many tiles the system has.
        tiles: usize,
    },
    /// Control and target name the same tile.
    SameTile {
        /// The coinciding index.
        tile: usize,
    },
    /// A tile has not yet run a QECC cycle, so it has no syndrome
    /// reference to propagate through the gate.
    ReferenceNotSettled {
        /// The unsettled tile.
        tile: usize,
    },
    /// The two tiles' syndrome references have different widths (the
    /// tiles are not the same code distance).
    ReferenceWidthMismatch {
        /// Checks in the reference being updated.
        expected: usize,
        /// Checks in the partner's reference.
        got: usize,
    },
}

impl fmt::Display for CnotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CnotError::TileOutOfRange { tile, tiles } => {
                write!(f, "tile {tile} out of range for a {tiles}-tile system")
            }
            CnotError::SameTile { tile } => {
                write!(f, "control and target tiles must differ (both {tile})")
            }
            CnotError::ReferenceNotSettled { tile } => {
                write!(
                    f,
                    "tile {tile} must run at least one QECC cycle before a transversal CNOT"
                )
            }
            CnotError::ReferenceWidthMismatch { expected, got } => {
                write!(f, "syndrome reference width mismatch: {expected} vs {got}")
            }
        }
    }
}

impl std::error::Error for CnotError {}

/// A cache-replay command named a block that is not resident in the
/// MCE's logical instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayError {
    /// The missing block id.
    pub block: u8,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay of non-resident cache block {} (fill it first)",
            self.block
        )
    }
}

impl std::error::Error for ReplayError {}

/// Validates a surface-code distance.
pub(crate) fn check_distance(d: usize) -> Result<(), BuildError> {
    if d < 3 || d.is_multiple_of(2) {
        return Err(BuildError::InvalidDistance(d));
    }
    Ok(())
}

/// Validates a probability parameter.
pub(crate) fn check_probability(what: &'static str, value: f64) -> Result<(), BuildError> {
    if !(0.0..=1.0).contains(&value) {
        return Err(BuildError::InvalidProbability { what, value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_one_line() {
        let errors = [
            BuildError::InvalidDistance(4),
            BuildError::InvalidProbability {
                what: "error rate",
                value: 1.5,
            },
            BuildError::NoTiles,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.contains('\n'), "{msg:?}");
            assert!(!msg.is_empty());
        }
    }

    #[test]
    fn checks_reject_and_accept() {
        assert!(check_distance(3).is_ok());
        assert!(check_distance(7).is_ok());
        assert!(check_distance(2).is_err());
        assert!(check_distance(4).is_err());
        assert!(check_probability("p", 0.0).is_ok());
        assert!(check_probability("p", 1.0).is_ok());
        assert!(check_probability("p", -0.1).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
    }
}
