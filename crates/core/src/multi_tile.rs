//! Multi-tile QuEST system: an array of MCEs over one shared substrate.
//!
//! §4.2 organizes the control processor as an array of MCEs, each owning
//! a tiled subsection of the substrate, with the master controller
//! orchestrating logical operations across tiles. The paper does not
//! evaluate cross-MCE logical instructions (footnote 9); this module
//! implements them as an *extension*: a transversal logical CNOT between
//! two same-distance tiles (physically exact for CSS codes — the rotated
//! surface code's logical CNOT is transversal qubit-by-qubit), with the
//! master coordinating via sync tokens and the MCEs' Pauli frames
//! propagating through the gate as they must (`X` frames copy
//! control→target, `Z` frames copy target→control).
//!
//! Instruction delivery and bus accounting go through the shared
//! [`DeliveryEngine`], so a multi-tile system can
//! be driven in any [`DeliveryMode`] — per-tile logical dispatch, cached
//! distillation-kernel replay, and (in the software baseline) per-cycle
//! QECC instruction traffic for every tile.

use crate::delivery::{DeliveryEngine, DeliveryMode};
use crate::error::{check_distance, check_probability, BuildError, CnotError};
use crate::master::MasterController;
use crate::mce::Mce;
use crate::system::MCE_IBUF_BYTES;
use crate::tile;
use quest_isa::{InstrClass, LogicalInstr};
use quest_stabilizer::{PauliChannel, Tableau};
use quest_surface::{DecoderChoice, RotatedLattice};
use rand::Rng;

pub use crate::tile::LogicalBasis;

/// An array of MCE-driven tiles over one simulated substrate.
///
/// # Example
///
/// ```
/// use quest_core::multi_tile::{LogicalBasis, MultiTileSystem};
/// use quest_stabilizer::{SeedableRng, StdRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let mut sys = MultiTileSystem::new(3, 2, 0.0)?;
/// sys.prep_logical(0, LogicalBasis::Zero, &mut rng);
/// sys.prep_logical(1, LogicalBasis::Zero, &mut rng);
/// sys.run_noisy_cycle(&mut rng);
/// sys.transversal_cnot(0, 1, &mut rng)?;
/// assert!(!sys.measure_logical_z(0, &mut rng));
/// assert!(!sys.measure_logical_z(1, &mut rng));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiTileSystem {
    lattice: RotatedLattice,
    mces: Vec<Mce>,
    master: MasterController,
    substrate: Tableau,
    noise: PauliChannel,
    engine: DeliveryEngine,
}

impl MultiTileSystem {
    /// Builds `tiles` distance-`d` tiles with per-round depolarizing data
    /// noise of total probability `p`, delivering instructions in
    /// [`DeliveryMode::QuestMce`] (hardware-managed QECC, uncached
    /// logical instructions).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if `tiles` is zero, `d` is not an odd
    /// number ≥ 3, or `p` is outside `[0, 1]`.
    pub fn new(d: usize, tiles: usize, p: f64) -> Result<MultiTileSystem, BuildError> {
        MultiTileSystem::with_delivery(d, tiles, p, DeliveryMode::QuestMce)
    }

    /// Like [`MultiTileSystem::new`] with an explicit delivery mode.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] on the same invalid parameters as
    /// [`MultiTileSystem::new`].
    pub fn with_delivery(
        d: usize,
        tiles: usize,
        p: f64,
        mode: DeliveryMode,
    ) -> Result<MultiTileSystem, BuildError> {
        MultiTileSystem::with_delivery_decoder(d, tiles, p, mode, DecoderChoice::default())
    }

    /// Like [`MultiTileSystem::with_delivery`] with an explicit global
    /// decoder backend for the master controller.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] on the same invalid parameters as
    /// [`MultiTileSystem::new`].
    pub fn with_delivery_decoder(
        d: usize,
        tiles: usize,
        p: f64,
        mode: DeliveryMode,
        decoder: DecoderChoice,
    ) -> Result<MultiTileSystem, BuildError> {
        check_distance(d)?;
        check_probability("error rate", p)?;
        if tiles == 0 {
            return Err(BuildError::NoTiles);
        }
        let lattice = RotatedLattice::new(d);
        let tile_width = lattice.num_qubits();
        let mces = (0..tiles)
            .map(|i| Mce::with_offset(&lattice, MCE_IBUF_BYTES, i * tile_width))
            .collect();
        Ok(MultiTileSystem {
            substrate: Tableau::new(tiles * tile_width),
            lattice,
            mces,
            master: MasterController::with_decoder(decoder),
            noise: PauliChannel::depolarizing(p),
            engine: DeliveryEngine::new(mode),
        })
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.mces.len()
    }

    /// The delivery mode this system accounts under.
    pub fn delivery(&self) -> DeliveryMode {
        self.engine.mode()
    }

    /// The shared tile lattice.
    pub fn lattice(&self) -> &RotatedLattice {
        &self.lattice
    }

    /// The MCE of tile `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn mce(&self, i: usize) -> &Mce {
        &self.mces[i]
    }

    /// The MCEs of all tiles, in tile order.
    pub fn mces(&self) -> &[Mce] {
        &self.mces
    }

    /// The master controller (bus counters live here).
    pub fn master(&self) -> &MasterController {
        &self.master
    }

    /// Prepares tile `i`'s logical qubit (bootstrap: direct transverse
    /// reset of the data qubits, then QECC projection on the next cycle).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn prep_logical<R: Rng + ?Sized>(&mut self, i: usize, basis: LogicalBasis, rng: &mut R) {
        tile::prep_logical(&mut self.mces[i], basis, &mut self.substrate, rng);
    }

    /// Delivers one logical instruction to tile `i` through the engine
    /// (bus-accounted under this system's delivery mode).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dispatch_logical(&mut self, i: usize, instr: LogicalInstr, class: InstrClass) {
        self.engine
            .dispatch(&mut self.master, &mut self.mces[i], instr, class);
    }

    /// Runs a distillation kernel `replays` times on tile `i` through the
    /// engine: per-replay dispatch in the uncached modes, fill-once +
    /// replay commands under [`DeliveryMode::QuestMceCache`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn run_kernel(&mut self, i: usize, kernel: &[LogicalInstr], replays: u64) {
        self.engine
            .kernel(&mut self.master, &mut self.mces[i], kernel, replays);
    }

    /// Issues a master→MCE sync token to tile `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sync_tile(&mut self, i: usize) {
        self.master.sync(&mut self.mces[i], 0);
    }

    /// Runs one noisy QECC cycle on every tile and services escalations.
    /// Under [`DeliveryMode::SoftwareBaseline`] the cycle's physical
    /// instruction stream is bus-accounted for every tile.
    pub fn run_noisy_cycle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for mce in &self.mces {
            tile::noise_layer(mce, &self.noise, &mut self.substrate, rng);
        }
        for mce in &mut self.mces {
            tile::qecc_cycle_serviced(mce, &mut self.master, &mut self.substrate, rng);
        }
        self.account_cycle_all_tiles();
    }

    /// Like [`MultiTileSystem::run_noisy_cycle`], but with one independent
    /// RNG stream per tile (`rngs[i]` drives tile `i`'s noise layer and
    /// QECC cycle). This is the reference semantics for the concurrent
    /// runtime: because each tile consumes only its own stream, the
    /// outcome is invariant under any grouping of tiles onto threads.
    ///
    /// # Panics
    ///
    /// Panics if `rngs.len()` differs from the tile count.
    pub fn run_noisy_cycle_streams<R: Rng>(&mut self, rngs: &mut [R]) {
        assert_eq!(rngs.len(), self.mces.len(), "one RNG stream per tile");
        for (mce, rng) in self.mces.iter().zip(rngs.iter_mut()) {
            tile::noise_layer(mce, &self.noise, &mut self.substrate, rng);
        }
        for (mce, rng) in self.mces.iter_mut().zip(rngs.iter_mut()) {
            tile::qecc_cycle_serviced(mce, &mut self.master, &mut self.substrate, rng);
        }
        self.account_cycle_all_tiles();
    }

    fn account_cycle_all_tiles(&mut self) {
        let cycle_len = self.mces[0].microcode().cycle_len();
        for _ in 0..self.mces.len() {
            self.engine
                .account_cycle(&mut self.master, self.lattice.num_qubits(), cycle_len);
        }
    }

    /// Transversal logical CNOT from tile `control` to tile `target`:
    /// a physical CNOT between every pair of corresponding data qubits.
    /// Pauli frames propagate through the gate (pending X corrections on
    /// the control copy onto the target; pending Z corrections on the
    /// target copy onto the control), and the master issues a sync token
    /// to both MCEs.
    ///
    /// # Errors
    ///
    /// [`CnotError`] if the tile indices coincide or are out of range, or
    /// if either tile has not yet run a QECC cycle. A rejected CNOT
    /// leaves the system (including bus accounting) unchanged.
    pub fn transversal_cnot<R: Rng + ?Sized>(
        &mut self,
        control: usize,
        target: usize,
        _rng: &mut R,
    ) -> Result<(), CnotError> {
        tile::transversal_cnot_physics(&mut self.mces, &mut self.substrate, control, target)?;

        // Master-controller coordination: one sync token per involved MCE.
        self.master.sync_remote(0);
        self.master.sync_remote(0);
        Ok(())
    }

    /// Applies a logical X to tile `i` through its MCE's instruction path.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn logical_x(&mut self, i: usize) {
        self.mces[i].execute_logical(quest_isa::LogicalInstr::X(quest_isa::LogicalQubit(0)));
    }

    /// Reads out tile `i`'s logical qubit in the Z basis (destructive).
    /// The final decoding round's residual detection events cross the bus
    /// upstream and are accounted as syndrome traffic.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn measure_logical_z<R: Rng + ?Sized>(&mut self, i: usize, rng: &mut R) -> bool {
        let readout = self.mces[i].measure_logical_z_details(&mut self.substrate, rng);
        self.master.note_readout_syndrome(readout.final_events);
        readout.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Traffic;
    use quest_stabilizer::{SeedableRng, StdRng};
    use quest_surface::StabKind;

    #[test]
    fn invalid_parameters_are_typed_errors() {
        assert_eq!(
            MultiTileSystem::new(3, 0, 0.0).unwrap_err(),
            BuildError::NoTiles
        );
        assert_eq!(
            MultiTileSystem::new(6, 2, 0.0).unwrap_err(),
            BuildError::InvalidDistance(6)
        );
        assert!(matches!(
            MultiTileSystem::new(3, 2, f64::NAN).unwrap_err(),
            BuildError::InvalidProbability { .. }
        ));
        assert!(MultiTileSystem::new(3, 2, 0.5).is_ok());
    }

    #[test]
    fn zero_zero_cnot_stays_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sys = MultiTileSystem::new(3, 2, 0.0).unwrap();
        sys.prep_logical(0, LogicalBasis::Zero, &mut rng);
        sys.prep_logical(1, LogicalBasis::Zero, &mut rng);
        sys.run_noisy_cycle(&mut rng);
        sys.transversal_cnot(0, 1, &mut rng).unwrap();
        sys.run_noisy_cycle(&mut rng);
        assert!(!sys.measure_logical_z(0, &mut rng));
        assert!(!sys.measure_logical_z(1, &mut rng));
    }

    #[test]
    fn physical_logical_one_propagates() {
        // Flip the control's logical value *physically* (X along the
        // logical-X column); the CNOT must flip the target.
        let mut rng = StdRng::seed_from_u64(2);
        let mut sys = MultiTileSystem::new(3, 2, 0.0).unwrap();
        sys.prep_logical(0, LogicalBasis::Zero, &mut rng);
        sys.prep_logical(1, LogicalBasis::Zero, &mut rng);
        sys.run_noisy_cycle(&mut rng);
        // Physical logical X on tile 0.
        let lat = sys.lattice().clone();
        let off = sys.mce(0).substrate_index(0);
        for row in 0..lat.distance() {
            sys.substrate.x(off + lat.data_index(row, 0));
        }
        sys.transversal_cnot(0, 1, &mut rng).unwrap();
        sys.run_noisy_cycle(&mut rng);
        assert!(sys.measure_logical_z(0, &mut rng));
        assert!(sys.measure_logical_z(1, &mut rng));
    }

    #[test]
    fn frame_only_logical_one_propagates() {
        // Flip the control's logical value in the *Pauli frame* only; the
        // frame must ride through the CNOT.
        let mut rng = StdRng::seed_from_u64(3);
        let mut sys = MultiTileSystem::new(3, 2, 0.0).unwrap();
        sys.prep_logical(0, LogicalBasis::Zero, &mut rng);
        sys.prep_logical(1, LogicalBasis::Zero, &mut rng);
        sys.run_noisy_cycle(&mut rng);
        sys.logical_x(0);
        sys.transversal_cnot(0, 1, &mut rng).unwrap();
        assert!(sys.measure_logical_z(0, &mut rng));
        assert!(sys.measure_logical_z(1, &mut rng));
    }

    #[test]
    fn logical_bell_pair_is_correlated() {
        for seed in 0..12 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sys = MultiTileSystem::new(3, 2, 0.0).unwrap();
            sys.prep_logical(0, LogicalBasis::Plus, &mut rng);
            sys.prep_logical(1, LogicalBasis::Zero, &mut rng);
            sys.run_noisy_cycle(&mut rng);
            sys.transversal_cnot(0, 1, &mut rng).unwrap();
            sys.run_noisy_cycle(&mut rng);
            let a = sys.measure_logical_z(0, &mut rng);
            let b = sys.measure_logical_z(1, &mut rng);
            assert_eq!(a, b, "seed {seed}: Bell pair decorrelated");
        }
    }

    #[test]
    fn bell_pair_survives_noise_and_error_correction() {
        let mut mismatches = 0;
        let shots = 20;
        for seed in 0..shots {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let mut sys = MultiTileSystem::new(3, 2, 1e-3).unwrap();
            sys.prep_logical(0, LogicalBasis::Plus, &mut rng);
            sys.prep_logical(1, LogicalBasis::Zero, &mut rng);
            sys.run_noisy_cycle(&mut rng);
            sys.transversal_cnot(0, 1, &mut rng).unwrap();
            for _ in 0..5 {
                sys.run_noisy_cycle(&mut rng);
            }
            let a = sys.measure_logical_z(0, &mut rng);
            let b = sys.measure_logical_z(1, &mut rng);
            mismatches += (a != b) as u32;
        }
        assert!(
            mismatches <= 2,
            "{mismatches}/{shots} Bell mismatches at p=1e-3"
        );
    }

    #[test]
    fn tiles_error_correct_independently() {
        // An error injected in one tile must not produce decoder activity
        // in the other.
        let mut rng = StdRng::seed_from_u64(5);
        let mut sys = MultiTileSystem::new(3, 2, 0.0).unwrap();
        sys.prep_logical(0, LogicalBasis::Zero, &mut rng);
        sys.prep_logical(1, LogicalBasis::Zero, &mut rng);
        sys.run_noisy_cycle(&mut rng);
        let victim = sys.mce(0).substrate_index(sys.lattice().data_index(1, 1));
        sys.substrate.x(victim);
        sys.run_noisy_cycle(&mut rng);
        let s0 = sys.mce(0).decode_stats(StabKind::Z);
        let s1 = sys.mce(1).decode_stats(StabKind::Z);
        assert_eq!(s0.local_hits, 1);
        assert_eq!(s1.local_hits + s1.escalations, 0);
    }

    #[test]
    fn cnot_costs_only_sync_tokens() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut sys = MultiTileSystem::new(3, 2, 0.0).unwrap();
        sys.prep_logical(0, LogicalBasis::Zero, &mut rng);
        sys.prep_logical(1, LogicalBasis::Zero, &mut rng);
        sys.run_noisy_cycle(&mut rng);
        let before = sys.master().bus().total();
        sys.transversal_cnot(0, 1, &mut rng).unwrap();
        let after = sys.master().bus().total();
        assert_eq!(after - before, 4, "two 2-byte sync tokens");
    }

    #[test]
    fn baseline_delivery_pays_per_cycle_per_tile() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut sys =
            MultiTileSystem::with_delivery(3, 3, 0.0, DeliveryMode::SoftwareBaseline).unwrap();
        let per_tile =
            (sys.lattice().num_qubits() as u64) * (sys.mce(0).microcode().cycle_len() as u64);
        sys.run_noisy_cycle(&mut rng);
        sys.run_noisy_cycle(&mut rng);
        assert_eq!(
            sys.master().bus().bytes(Traffic::QeccInstructions),
            2 * 3 * per_tile,
            "2 cycles x 3 tiles of streamed QECC instructions"
        );
        // The hardware-managed modes pay nothing for the same cycles.
        let mut hw = MultiTileSystem::new(3, 3, 0.0).unwrap();
        hw.run_noisy_cycle(&mut rng);
        assert_eq!(hw.master().bus().bytes(Traffic::QeccInstructions), 0);
    }

    #[test]
    fn per_tile_dispatch_and_kernel_account_like_single_tile() {
        use quest_isa::LogicalQubit;
        let kernel = vec![
            quest_isa::LogicalInstr::H(LogicalQubit(0)),
            quest_isa::LogicalInstr::T(LogicalQubit(0)),
        ];
        for mode in DeliveryMode::ALL {
            let mut sys = MultiTileSystem::with_delivery(3, 2, 0.0, mode).unwrap();
            sys.dispatch_logical(
                1,
                quest_isa::LogicalInstr::X(LogicalQubit(0)),
                InstrClass::Algorithmic,
            );
            sys.run_kernel(0, &kernel, 5);
            sys.sync_tile(1);

            let mut single = crate::QuestSystem::new(3, 0.0).unwrap();
            let mut program = quest_isa::LogicalProgram::new();
            program.push(
                quest_isa::LogicalInstr::X(LogicalQubit(0)),
                InstrClass::Algorithmic,
            );
            for &k in &kernel {
                program.push(k, InstrClass::Distillation);
            }
            let run =
                single.run_memory_workload(0, &program, 5, mode, &mut StdRng::seed_from_u64(9));
            assert_eq!(
                *sys.master().bus(),
                run.bus,
                "{mode:?}: multi-tile delivery diverged from single-tile"
            );
        }
    }

    #[test]
    fn three_tile_ghz_is_fully_correlated() {
        // |+>_L ⊗ |0>_L ⊗ |0>_L with CNOT(0→1), CNOT(1→2) yields a
        // logical GHZ state: all three Z readouts agree, and both values
        // occur across seeds.
        let mut ones = 0;
        let shots = 16;
        for seed in 0..shots {
            let mut rng = StdRng::seed_from_u64(600 + seed);
            let mut sys = MultiTileSystem::new(3, 3, 0.0).unwrap();
            sys.prep_logical(0, LogicalBasis::Plus, &mut rng);
            sys.prep_logical(1, LogicalBasis::Zero, &mut rng);
            sys.prep_logical(2, LogicalBasis::Zero, &mut rng);
            sys.run_noisy_cycle(&mut rng);
            sys.transversal_cnot(0, 1, &mut rng).unwrap();
            sys.run_noisy_cycle(&mut rng);
            sys.transversal_cnot(1, 2, &mut rng).unwrap();
            sys.run_noisy_cycle(&mut rng);
            let a = sys.measure_logical_z(0, &mut rng);
            let b = sys.measure_logical_z(1, &mut rng);
            let c = sys.measure_logical_z(2, &mut rng);
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(b, c, "seed {seed}");
            ones += a as u32;
        }
        assert!(ones > 0 && ones < shots as u32, "GHZ outcomes not random");
    }

    #[test]
    fn same_tile_cnot_is_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sys = MultiTileSystem::new(3, 2, 0.0).unwrap();
        assert_eq!(
            sys.transversal_cnot(1, 1, &mut rng),
            Err(CnotError::SameTile { tile: 1 })
        );
    }

    #[test]
    fn out_of_range_cnot_is_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sys = MultiTileSystem::new(3, 2, 0.0).unwrap();
        assert_eq!(
            sys.transversal_cnot(0, 2, &mut rng),
            Err(CnotError::TileOutOfRange { tile: 2, tiles: 2 })
        );
    }

    #[test]
    fn cnot_before_any_cycle_is_rejected_and_mutates_nothing() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sys = MultiTileSystem::new(3, 2, 0.0).unwrap();
        // X references are FirstRound: unsettled until a cycle runs.
        let before_sync = sys.master().bus().bytes(crate::bus::Traffic::Sync);
        assert_eq!(
            sys.transversal_cnot(0, 1, &mut rng),
            Err(CnotError::ReferenceNotSettled { tile: 1 })
        );
        assert_eq!(
            sys.master().bus().bytes(crate::bus::Traffic::Sync),
            before_sync,
            "a rejected CNOT must not account sync traffic"
        );
    }
}
