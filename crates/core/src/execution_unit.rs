//! Prime-line quantum execution unit (§2.3, Figure 4; execution steps of
//! §4.3, Figure 8a).
//!
//! The unit models Hornibrook et al.'s Primeline Multiplexing Architecture:
//! a small set of arbitrary waveform generators (AWGs) continuously drive a
//! prime-line analog bus, and a matrix of microwave switches steers
//! waveforms to qubits. A physical instruction is just the select code
//! latched onto a switch.
//!
//! Execution of one VLIW word proceeds in the paper's three steps:
//! ① µops stream from the microcode memory to the address decoder,
//! ② each µop is latched onto its microwave switch, and
//! ③ the master clock fires, executing all latched waveforms in parallel.
//! Here "executing a waveform" means applying the corresponding gate to
//! the stabilizer-simulated substrate. Measurement waveforms return their
//! outcome bits, which flow to the error-decoder pipeline.

use crate::geometry::TileGeometry;
use quest_isa::{MicroOp, PhysOpcode, VliwWord};
use quest_stabilizer::Tableau;
use rand::Rng;

/// Result of firing one VLIW word: measurement outcomes by qubit slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FireResult {
    /// `(qubit, outcome)` for every measurement µop in the word.
    pub measurements: Vec<(usize, bool)>,
}

/// Statistics kept by the execution unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// VLIW words fired (master-clock pulses).
    pub words_fired: u64,
    /// Total µops latched (step ② events).
    pub uops_latched: u64,
    /// Non-idle µops executed.
    pub active_uops: u64,
    /// Measurement outcomes produced.
    pub measurements: u64,
}

/// The execution unit for one MCE tile.
#[derive(Debug, Clone)]
pub struct ExecutionUnit {
    geometry: TileGeometry,
    /// Latched select codes, one per switch (= per qubit).
    latches: Vec<MicroOp>,
    /// Index of this tile's first qubit within the shared substrate
    /// (tiles of a multi-MCE system occupy disjoint index ranges).
    offset: usize,
    stats: ExecutionStats,
}

impl ExecutionUnit {
    /// Builds an execution unit over a tile geometry.
    pub fn new(geometry: TileGeometry) -> ExecutionUnit {
        ExecutionUnit::with_offset(geometry, 0)
    }

    /// Builds an execution unit whose tile starts at substrate index
    /// `offset` (multi-tile systems place tiles side by side in one
    /// simulated substrate).
    pub fn with_offset(geometry: TileGeometry, offset: usize) -> ExecutionUnit {
        let n = geometry.num_qubits();
        ExecutionUnit {
            geometry,
            latches: vec![MicroOp::nop(); n],
            offset,
            stats: ExecutionStats::default(),
        }
    }

    /// This tile's substrate offset.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Tile width.
    pub fn num_qubits(&self) -> usize {
        self.latches.len()
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> ExecutionStats {
        self.stats
    }

    /// The tile geometry.
    pub fn geometry(&self) -> &TileGeometry {
        &self.geometry
    }

    /// Steps ① and ②: latch every µop of a word onto its switch.
    ///
    /// # Panics
    ///
    /// Panics if the word width differs from the tile width.
    pub fn latch(&mut self, word: &VliwWord) {
        assert_eq!(
            word.len(),
            self.latches.len(),
            "VLIW word width must match tile width"
        );
        for (q, u) in word.iter() {
            self.latches[q] = u;
            self.stats.uops_latched += 1;
        }
    }

    /// Step ③: fire the master clock, applying every latched waveform to
    /// the substrate in one parallel step.
    ///
    /// Two-qubit waveforms are resolved by pairing each `CnotCtrl` with the
    /// `CnotTgt` latched on the neighbour its direction nibble points at.
    ///
    /// # Panics
    ///
    /// Panics if a CNOT half points at a missing neighbour or at a qubit
    /// whose latch does not hold the matching half — such a word is
    /// malformed microcode.
    pub fn fire<R: Rng + ?Sized>(&mut self, substrate: &mut Tableau, rng: &mut R) -> FireResult {
        assert!(
            substrate.num_qubits() >= self.offset + self.latches.len(),
            "substrate too small for tile at offset {}",
            self.offset
        );
        let off = self.offset;
        let mut result = FireResult::default();
        // Single-qubit waveforms and measurements first, then entangling
        // pairs (all commute within a well-formed lock-step word: the
        // scheduler never touches a qubit twice in one slot).
        for q in 0..self.latches.len() {
            let u = self.latches[q];
            if u.opcode() != PhysOpcode::Nop {
                self.stats.active_uops += 1;
            }
            match u.opcode() {
                PhysOpcode::Nop | PhysOpcode::CnotCtrl | PhysOpcode::CnotTgt => {}
                PhysOpcode::PrepZ => substrate.reset(off + q, rng),
                PhysOpcode::PrepX => substrate.reset_plus(off + q, rng),
                PhysOpcode::MeasZ => {
                    let m = substrate.measure(off + q, rng);
                    result.measurements.push((q, m.value));
                    self.stats.measurements += 1;
                }
                PhysOpcode::MeasX => {
                    let m = substrate.measure_x(off + q, rng);
                    result.measurements.push((q, m.value));
                    self.stats.measurements += 1;
                }
                PhysOpcode::H => substrate.h(off + q),
                PhysOpcode::S => substrate.s(off + q),
                PhysOpcode::Sdg => substrate.s_dagger(off + q),
                PhysOpcode::X => substrate.x(off + q),
                PhysOpcode::Y => substrate.y(off + q),
                PhysOpcode::Z => substrate.z(off + q),
            }
        }
        for q in 0..self.latches.len() {
            let u = self.latches[q];
            if u.opcode() == PhysOpcode::CnotCtrl {
                // The microcode generator always emits directed ctrl
                // halves with an in-lattice partner; a malformed word is
                // dropped (debug builds still assert) rather than
                // panicking the control plane.
                let Some(dir) = u.direction() else {
                    debug_assert!(false, "ctrl µop at qubit {q} carries no direction");
                    continue;
                };
                let Some(target) = self.geometry.neighbor(q, dir) else {
                    debug_assert!(false, "qubit {q}: no neighbour to the {dir}");
                    continue;
                };
                let partner = self.latches[target];
                assert_eq!(
                    partner.opcode(),
                    PhysOpcode::CnotTgt,
                    "qubit {target} latch does not hold the target half"
                );
                assert_eq!(
                    partner.direction(),
                    Some(dir.opposite()),
                    "target half at {target} points the wrong way"
                );
                substrate.cnot(off + q, off + target);
            }
        }
        self.stats.words_fired += 1;
        result
    }

    /// Latches and fires in one call — the pipelined steady state of the
    /// microcode pipeline.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`ExecutionUnit::latch`] and
    /// [`ExecutionUnit::fire`].
    pub fn execute<R: Rng + ?Sized>(
        &mut self,
        word: &VliwWord,
        substrate: &mut Tableau,
        rng: &mut R,
    ) -> FireResult {
        self.latch(word);
        self.fire(substrate, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_isa::Direction;
    use quest_stabilizer::{SeedableRng, StdRng};
    use quest_surface::RotatedLattice;

    fn setup() -> (ExecutionUnit, Tableau, StdRng, RotatedLattice) {
        let lat = RotatedLattice::new(3);
        let geo = TileGeometry::from_lattice(&lat);
        let n = geo.num_qubits();
        (
            ExecutionUnit::new(geo),
            Tableau::new(n),
            StdRng::seed_from_u64(5),
            lat,
        )
    }

    #[test]
    fn single_qubit_word_applies_gates() {
        let (mut eu, mut t, mut rng, lat) = setup();
        let q = lat.data_index(1, 1);
        let mut w = VliwWord::nop(eu.num_qubits());
        w.set(q, MicroOp::simple(PhysOpcode::X));
        eu.execute(&w, &mut t, &mut rng);
        assert!(t.measure(q, &mut rng).value);
        assert_eq!(eu.stats().words_fired, 1);
        assert_eq!(eu.stats().active_uops, 1);
    }

    #[test]
    fn measurement_word_reports_outcomes() {
        let (mut eu, mut t, mut rng, lat) = setup();
        let q = lat.data_index(0, 0);
        t.x(q);
        let mut w = VliwWord::nop(eu.num_qubits());
        w.set(q, MicroOp::simple(PhysOpcode::MeasZ));
        let r = eu.execute(&w, &mut t, &mut rng);
        assert_eq!(r.measurements, vec![(q, true)]);
    }

    #[test]
    fn cnot_halves_resolve_to_a_cnot() {
        let (mut eu, mut t, mut rng, lat) = setup();
        // Use an ancilla and its SE data neighbour.
        let p = &lat.plaquettes()[0];
        let anc = p.ancilla;
        let geo = eu.geometry().clone();
        let (dir, data) = Direction::ALL
            .into_iter()
            .find_map(|d| geo.neighbor(anc, d).map(|n| (d, n)))
            .expect("ancilla has a neighbour");
        // Excite the control, fire CNOT(anc -> data).
        t.x(anc);
        let mut w = VliwWord::nop(eu.num_qubits());
        w.set(anc, MicroOp::cnot_half(PhysOpcode::CnotCtrl, dir));
        w.set(
            data,
            MicroOp::cnot_half(PhysOpcode::CnotTgt, dir.opposite()),
        );
        eu.execute(&w, &mut t, &mut rng);
        assert!(t.measure(data, &mut rng).value, "target was flipped");
        assert!(t.measure(anc, &mut rng).value, "control unchanged");
    }

    #[test]
    #[should_panic(expected = "does not hold the target half")]
    fn dangling_ctrl_half_panics() {
        let (mut eu, mut t, mut rng, lat) = setup();
        let p = &lat.plaquettes()[0];
        let geo = eu.geometry().clone();
        let dir = Direction::ALL
            .into_iter()
            .find(|&d| geo.neighbor(p.ancilla, d).is_some())
            .unwrap();
        let mut w = VliwWord::nop(eu.num_qubits());
        w.set(p.ancilla, MicroOp::cnot_half(PhysOpcode::CnotCtrl, dir));
        eu.execute(&w, &mut t, &mut rng);
    }

    #[test]
    fn prep_words_reset_state() {
        let (mut eu, mut t, mut rng, _) = setup();
        for q in 0..eu.num_qubits() {
            t.x(q);
        }
        let w = VliwWord::from_uops(vec![MicroOp::simple(PhysOpcode::PrepZ); eu.num_qubits()]);
        eu.execute(&w, &mut t, &mut rng);
        for q in 0..eu.num_qubits() {
            assert!(!t.measure(q, &mut rng).value);
        }
    }

    #[test]
    fn stats_accumulate() {
        let (mut eu, mut t, mut rng, _) = setup();
        let w = VliwWord::nop(eu.num_qubits());
        for _ in 0..5 {
            eu.execute(&w, &mut t, &mut rng);
        }
        let s = eu.stats();
        assert_eq!(s.words_fired, 5);
        assert_eq!(s.uops_latched, 5 * eu.num_qubits() as u64);
        assert_eq!(s.active_uops, 0);
    }
}
