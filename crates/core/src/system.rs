//! End-to-end QuEST system simulation.
//!
//! [`QuestSystem`] wires a master controller, one MCE, and a noisy
//! stabilizer-simulated surface-code tile into the full loop of the paper:
//! the MCE's microcode replays QECC cycles autonomously, its local lookup
//! decoder fixes isolated errors, complex syndromes escalate to the
//! master's global decoder, and logical instructions arrive over the
//! global bus (optionally through the software-managed instruction cache).
//!
//! The same workload can be accounted in three delivery modes, reproducing
//! the architecture comparison of Figure 14 *from simulation* rather than
//! from the analytical model:
//!
//! * [`DeliveryMode::SoftwareBaseline`] — every physical µop of every QECC
//!   cycle crosses the global bus.
//! * [`DeliveryMode::QuestMce`] — QECC is hardware-managed; logical and
//!   distillation instructions cross the bus individually.
//! * [`DeliveryMode::QuestMceCache`] — distillation kernels additionally
//!   replay from the MCE instruction cache.

use crate::bus::Traffic;
use crate::master::MasterController;
use crate::mce::Mce;
use quest_isa::{InstrClass, LogicalInstr, LogicalProgram};
use quest_stabilizer::{PauliChannel, Tableau};
use quest_surface::{RotatedLattice, StabKind};
use rand::Rng;

/// Instruction-delivery architecture being accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryMode {
    /// Software-managed QECC: all µops cross the global bus (§3.3).
    SoftwareBaseline,
    /// QuEST with hardware-managed QECC (§4).
    QuestMce,
    /// QuEST plus the software-managed logical instruction cache (§5.3).
    QuestMceCache,
}

/// Result of running a workload on the system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemRun {
    /// Delivery mode accounted.
    pub mode: DeliveryMode,
    /// QECC cycles executed.
    pub qecc_cycles: u64,
    /// Total bytes that crossed the global bus.
    pub bus_bytes: u64,
    /// `true` when the final logical readout was error free.
    pub logical_ok: bool,
    /// Detection events handled locally by MCE lookup decoders.
    pub local_decodes: u64,
    /// Detection events escalated to the global decoder.
    pub escalations: u64,
}

/// A complete single-tile QuEST control processor with its quantum
/// substrate.
#[derive(Debug, Clone)]
pub struct QuestSystem {
    lattice: RotatedLattice,
    master: MasterController,
    mce: Mce,
    substrate: Tableau,
    noise: PauliChannel,
}

impl QuestSystem {
    /// Builds a system over a distance-`d` tile with per-round
    /// depolarizing noise of total probability `p` on data qubits.
    ///
    /// # Panics
    ///
    /// Panics if `d` is invalid or `p` is outside `[0, 1]`.
    pub fn new(d: usize, p: f64) -> QuestSystem {
        let lattice = RotatedLattice::new(d);
        let substrate = Tableau::new(lattice.num_qubits());
        QuestSystem {
            mce: Mce::new(&lattice, 65_536),
            lattice,
            master: MasterController::new(),
            substrate,
            noise: PauliChannel::depolarizing(p),
        }
    }

    /// Like [`QuestSystem::new`], additionally corrupting syndrome
    /// measurements with probability `q` in the MCE readout chain.
    ///
    /// # Panics
    ///
    /// Panics if `d` is invalid or either probability is out of range.
    pub fn with_measurement_noise(d: usize, p: f64, q: f64) -> QuestSystem {
        let mut sys = QuestSystem::new(d, p);
        sys.mce.set_measurement_flip(q);
        sys
    }

    /// The tile lattice.
    pub fn lattice(&self) -> &RotatedLattice {
        &self.lattice
    }

    /// The master controller (bus counters live here).
    pub fn master(&self) -> &MasterController {
        &self.master
    }

    /// The MCE.
    pub fn mce(&self) -> &Mce {
        &self.mce
    }

    /// Runs one noisy QECC cycle: a data-noise layer, then the full
    /// microcode cycle, then escalation service.
    pub fn run_noisy_cycle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        crate::tile::noise_layer(&self.mce, &self.noise, &mut self.substrate, rng);
        crate::tile::qecc_cycle_serviced(&mut self.mce, &mut self.master, &mut self.substrate, rng);
    }

    /// Runs a logical-Z memory workload of `cycles` QECC cycles under the
    /// given delivery mode. The program's algorithmic instructions are
    /// dispatched once; its distillation-class instructions form one
    /// T-factory kernel that executes `distillation_replays` times over
    /// the workload (§5.2: distillation runs continuously). Under
    /// [`DeliveryMode::QuestMceCache`] the kernel crosses the bus once and
    /// replays from the MCE instruction cache thereafter.
    pub fn run_memory_workload<R: Rng + ?Sized>(
        &mut self,
        cycles: u64,
        program: &LogicalProgram,
        distillation_replays: u64,
        mode: DeliveryMode,
        rng: &mut R,
    ) -> SystemRun {
        let kernel: Vec<LogicalInstr> = program
            .iter()
            .filter(|(_, c)| *c == InstrClass::Distillation)
            .map(|(i, _)| *i)
            .collect();
        // Dispatch the logical program according to the mode.
        match mode {
            DeliveryMode::SoftwareBaseline | DeliveryMode::QuestMce => {
                for &(i, class) in program {
                    if class != InstrClass::Distillation {
                        self.master.dispatch(&mut self.mce, i, class);
                    }
                }
                for _ in 0..distillation_replays {
                    for &i in &kernel {
                        self.master
                            .dispatch(&mut self.mce, i, InstrClass::Distillation);
                    }
                }
            }
            DeliveryMode::QuestMceCache => {
                if !kernel.is_empty() && distillation_replays > 0 {
                    self.master.dispatch_cache_fill(&mut self.mce, 0, &kernel);
                    for _ in 0..distillation_replays {
                        self.master.dispatch_cache_replay(&mut self.mce, 0);
                    }
                }
                for &(i, class) in program {
                    if class != InstrClass::Distillation {
                        self.master.dispatch(&mut self.mce, i, class);
                    }
                }
            }
        }

        // Error-corrected idle (memory) for `cycles` rounds.
        for _ in 0..cycles {
            self.run_noisy_cycle(rng);
            if mode == DeliveryMode::SoftwareBaseline {
                // In the baseline, this cycle's µops all crossed the bus:
                // one byte per qubit per microcode word (§3.3).
                let bytes = (self.lattice.num_qubits() * self.mce.microcode().cycle_len()) as u64;
                self.master_mut_bus_record(Traffic::QeccInstructions, bytes);
            }
        }
        // Periodic sync token (cache management + logical movement, §7).
        self.master.sync(&mut self.mce, 0);

        // Final readout: measure data in Z, apply the accumulated Pauli
        // frames (local + global corrections), check logical Z.
        let frame: Vec<usize> = self
            .mce
            .decoder(StabKind::Z)
            .frame()
            .iter()
            .copied()
            .collect();
        let mut bits: Vec<bool> = (0..self.lattice.num_data())
            .map(|q| self.substrate.measure(q, rng).value)
            .collect();
        for q in frame {
            bits[q] = !bits[q];
        }
        // Residual single-shot cleanup from the final perfect readout:
        // derive final-round events and decode them too (standard final
        // round of a memory experiment).
        let final_correction = self.final_round_correction(&bits);
        for q in final_correction {
            bits[q] = !bits[q];
        }
        let logical_error = (0..self.lattice.distance())
            .map(|col| bits[self.lattice.data_index(0, col)])
            .fold(false, |acc, b| acc ^ b);

        let z = self.mce.decode_stats(StabKind::Z);
        SystemRun {
            mode,
            qecc_cycles: self.mce.microcode().completed_cycles(),
            bus_bytes: self.master.bus().total(),
            logical_ok: !logical_error,
            local_decodes: z.local_hits,
            escalations: z.escalations,
        }
    }

    /// Decodes the mismatch between the corrected final readout and the
    /// last in-loop syndrome record, as a final perfect round.
    fn final_round_correction(&mut self, bits: &[bool]) -> Vec<usize> {
        use quest_surface::decoder::Decoder;
        let graph = quest_surface::DecodingGraph::new(&self.lattice, StabKind::Z, 1);
        let events: Vec<usize> = self
            .lattice
            .plaquettes_of(StabKind::Z)
            .enumerate()
            .filter_map(|(c, p)| {
                let parity = p.data.iter().fold(false, |acc, &q| acc ^ bits[q]);
                if parity {
                    Some(graph.node(0, c))
                } else {
                    None
                }
            })
            .collect();
        if events.is_empty() {
            return Vec::new();
        }
        self.master_mut_bus_record(
            Traffic::Syndrome,
            events.len() as u64 * crate::master::SYNDROME_EVENT_BYTES,
        );
        let correction = quest_surface::UnionFindDecoder::new().decode(&graph, &events);
        correction.data_flips.into_iter().collect()
    }

    fn master_mut_bus_record(&mut self, class: Traffic, bytes: u64) {
        self.master.record_traffic(class, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_isa::LogicalQubit;
    use quest_stabilizer::{SeedableRng, StdRng};

    fn program() -> LogicalProgram {
        let mut p = LogicalProgram::new();
        for i in 0..10u8 {
            p.push(
                LogicalInstr::H(LogicalQubit(i % 4)),
                InstrClass::Algorithmic,
            );
        }
        for _ in 0..50 {
            p.push(
                LogicalInstr::Cnot {
                    control: LogicalQubit(0),
                    target: LogicalQubit(1),
                },
                InstrClass::Distillation,
            );
        }
        p
    }

    #[test]
    fn baseline_moves_orders_of_magnitude_more_bytes() {
        // Per-cycle QECC traffic dwarfs the one-shot logical program. Use
        // a modest replay count so the distillation stream stays below the
        // per-tile QECC stream (on a 17-qubit tile; at scale the gap is
        // five orders — see the analytical model).
        let mut rng = StdRng::seed_from_u64(3);
        let cycles = 200;
        let mut base = QuestSystem::new(3, 1e-3);
        let b = base.run_memory_workload(
            cycles,
            &program(),
            1,
            DeliveryMode::SoftwareBaseline,
            &mut rng,
        );
        let mut quest = QuestSystem::new(3, 1e-3);
        let q = quest.run_memory_workload(cycles, &program(), 1, DeliveryMode::QuestMce, &mut rng);
        assert!(
            b.bus_bytes > 50 * q.bus_bytes,
            "baseline {} vs QuEST {}",
            b.bus_bytes,
            q.bus_bytes
        );
    }

    #[test]
    fn cached_distillation_traffic_is_replay_count_independent() {
        // The cache decouples bus traffic from how often the kernel runs.
        let mut few = QuestSystem::new(3, 0.0);
        let f = few.run_memory_workload(
            5,
            &program(),
            10,
            DeliveryMode::QuestMceCache,
            &mut StdRng::seed_from_u64(4),
        );
        let mut many = QuestSystem::new(3, 0.0);
        let m = many.run_memory_workload(
            5,
            &program(),
            1000,
            DeliveryMode::QuestMceCache,
            &mut StdRng::seed_from_u64(4),
        );
        // 990 extra replays cost only 2 bytes each (the replay command).
        assert_eq!(m.bus_bytes - f.bus_bytes, 990 * 2);
        // While the uncached mode pays the full kernel every time.
        let mut plain = QuestSystem::new(3, 0.0);
        let p = plain.run_memory_workload(
            5,
            &program(),
            1000,
            DeliveryMode::QuestMce,
            &mut StdRng::seed_from_u64(4),
        );
        assert!(
            p.bus_bytes > 40 * m.bus_bytes,
            "{} vs {}",
            p.bus_bytes,
            m.bus_bytes
        );
    }

    #[test]
    fn cache_mode_cuts_distillation_traffic() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut plain = QuestSystem::new(3, 0.0);
        let p = plain.run_memory_workload(10, &program(), 10, DeliveryMode::QuestMce, &mut rng);
        let mut cached = QuestSystem::new(3, 0.0);
        let c =
            cached.run_memory_workload(10, &program(), 10, DeliveryMode::QuestMceCache, &mut rng);
        // With one kernel occurrence, fill ≈ dispatch; the win shows in
        // the distillation class being replaced by one-time cache fill.
        assert_eq!(
            cached.master().bus().bytes(Traffic::Distillation),
            0,
            "cached mode sends no per-instance distillation instructions"
        );
        assert!(c.bus_bytes <= p.bus_bytes + 4);
    }

    #[test]
    fn noiseless_run_is_logically_clean_and_quiet() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sys = QuestSystem::new(3, 0.0);
        let r = sys.run_memory_workload(
            50,
            &LogicalProgram::new(),
            0,
            DeliveryMode::QuestMce,
            &mut rng,
        );
        assert!(r.logical_ok);
        assert_eq!(r.local_decodes, 0);
        assert_eq!(r.escalations, 0);
        assert_eq!(r.qecc_cycles, 50);
    }

    #[test]
    fn noisy_run_mostly_survives_at_low_error_rate() {
        let mut failures = 0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sys = QuestSystem::new(3, 2e-3);
            let r = sys.run_memory_workload(
                20,
                &LogicalProgram::new(),
                0,
                DeliveryMode::QuestMce,
                &mut rng,
            );
            if !r.logical_ok {
                failures += 1;
            }
        }
        assert!(failures <= 2, "{failures}/20 logical failures at p=2e-3");
    }

    #[test]
    fn measurement_readout_noise_self_heals() {
        // An isolated measurement flip produces one event in round k and
        // one in round k+1 at the same check; the single-round LUT applies
        // the same (spurious) data correction twice, which XOR-cancels in
        // the Pauli frame. Logical information must survive pure readout
        // noise with high probability. Coincident flips can still fool the
        // single-round decoder: the measured base failure rate at these
        // parameters is ~10% over 400 seeds, so the bound leaves ~3 sigma
        // of headroom above the binomial mean of 2.5/25.
        let mut failures = 0;
        let shots = 25;
        for seed in 0..shots {
            let mut rng = StdRng::seed_from_u64(400 + seed);
            let mut sys = QuestSystem::with_measurement_noise(3, 0.0, 0.02);
            let r = sys.run_memory_workload(
                40,
                &LogicalProgram::new(),
                0,
                DeliveryMode::QuestMce,
                &mut rng,
            );
            failures += (!r.logical_ok) as u32;
        }
        assert!(
            failures <= 7,
            "{failures}/{shots} failures under readout noise"
        );
    }

    #[test]
    fn two_level_decoding_is_actually_used() {
        // At a moderate error rate over many cycles, the local decoder
        // must resolve most rounds and escalations must be rare.
        let mut rng = StdRng::seed_from_u64(6);
        let mut sys = QuestSystem::new(5, 3e-3);
        let r = sys.run_memory_workload(
            300,
            &LogicalProgram::new(),
            0,
            DeliveryMode::QuestMce,
            &mut rng,
        );
        assert!(r.local_decodes > 0, "local decoder never fired");
        assert!(
            r.local_decodes > r.escalations,
            "local {} vs escalated {}",
            r.local_decodes,
            r.escalations
        );
    }
}
