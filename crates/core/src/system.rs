//! End-to-end QuEST system simulation (single tile).
//!
//! [`QuestSystem`] wires a master controller, one MCE, and a noisy
//! stabilizer-simulated surface-code tile into the full loop of the paper:
//! the MCE's microcode replays QECC cycles autonomously, its local lookup
//! decoder fixes isolated errors, complex syndromes escalate to the
//! master's global decoder, and logical instructions arrive over the
//! global bus (optionally through the software-managed instruction cache).
//!
//! Since the engine unification, `QuestSystem` is a thin `tiles = 1`
//! convenience wrapper: instruction delivery and bus accounting live in
//! [`DeliveryEngine`], shared with
//! [`MultiTileSystem`](crate::MultiTileSystem) and the concurrent
//! `quest-runtime`. The same workload can be accounted in three delivery
//! modes, reproducing the architecture comparison of Figure 14 *from
//! simulation* rather than from the analytical model:
//!
//! * [`DeliveryMode::SoftwareBaseline`] — every physical µop of every QECC
//!   cycle crosses the global bus.
//! * [`DeliveryMode::QuestMce`] — QECC is hardware-managed; logical and
//!   distillation instructions cross the bus individually.
//! * [`DeliveryMode::QuestMceCache`] — distillation kernels additionally
//!   replay from the MCE instruction cache.

use crate::delivery::DeliveryEngine;
use crate::error::{check_distance, check_probability, BuildError};
use crate::master::MasterController;
use crate::mce::Mce;
use crate::report::{decode_totals, RunReport};
use quest_isa::{InstrClass, LogicalInstr, LogicalProgram};
use quest_stabilizer::{PauliChannel, Tableau};
use quest_surface::RotatedLattice;
use rand::Rng;

pub use crate::delivery::DeliveryMode;

/// Instruction-buffer bytes per MCE (the §5.3 cache capacity used by
/// every system in this crate and by the runtime's shard workers).
pub const MCE_IBUF_BYTES: usize = 65_536;

/// A complete single-tile QuEST control processor with its quantum
/// substrate.
///
/// # Example
///
/// ```
/// use quest_core::{DeliveryMode, QuestSystem};
/// use quest_isa::LogicalProgram;
/// use quest_stabilizer::{SeedableRng, StdRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut system = QuestSystem::new(3, 1e-3)?;
/// let run = system.run_memory_workload(
///     20,
///     &LogicalProgram::new(),
///     0,
///     DeliveryMode::QuestMce,
///     &mut rng,
/// );
/// assert_eq!(run.qecc_cycles, 20);
/// # Ok::<(), quest_core::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuestSystem {
    lattice: RotatedLattice,
    master: MasterController,
    mce: Mce,
    substrate: Tableau,
    noise: PauliChannel,
}

impl QuestSystem {
    /// Builds a system over a distance-`d` tile with per-round
    /// depolarizing noise of total probability `p` on data qubits.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if `d` is not an odd number ≥ 3 or `p` is
    /// outside `[0, 1]`.
    pub fn new(d: usize, p: f64) -> Result<QuestSystem, BuildError> {
        check_distance(d)?;
        check_probability("error rate", p)?;
        let lattice = RotatedLattice::new(d);
        let substrate = Tableau::new(lattice.num_qubits());
        Ok(QuestSystem {
            mce: Mce::new(&lattice, MCE_IBUF_BYTES),
            lattice,
            master: MasterController::new(),
            substrate,
            noise: PauliChannel::depolarizing(p),
        })
    }

    /// Like [`QuestSystem::new`], additionally corrupting syndrome
    /// measurements with probability `q` in the MCE readout chain.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if `d` is invalid or either probability is
    /// out of range.
    pub fn with_measurement_noise(d: usize, p: f64, q: f64) -> Result<QuestSystem, BuildError> {
        check_probability("measurement flip probability", q)?;
        let mut sys = QuestSystem::new(d, p)?;
        sys.mce.set_measurement_flip(q);
        Ok(sys)
    }

    /// The tile lattice.
    pub fn lattice(&self) -> &RotatedLattice {
        &self.lattice
    }

    /// The master controller (bus counters live here).
    pub fn master(&self) -> &MasterController {
        &self.master
    }

    /// The MCE.
    pub fn mce(&self) -> &Mce {
        &self.mce
    }

    /// Runs one noisy QECC cycle: a data-noise layer, then the full
    /// microcode cycle, then escalation service.
    pub fn run_noisy_cycle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        crate::tile::noise_layer(&self.mce, &self.noise, &mut self.substrate, rng);
        crate::tile::qecc_cycle_serviced(&mut self.mce, &mut self.master, &mut self.substrate, rng);
    }

    /// Runs a logical-Z memory workload of `cycles` QECC cycles under the
    /// given delivery mode. The program's non-distillation instructions
    /// are dispatched once; its distillation-class instructions form one
    /// T-factory kernel that executes `distillation_replays` times over
    /// the workload (§5.2: distillation runs continuously). Under
    /// [`DeliveryMode::QuestMceCache`] the kernel crosses the bus once and
    /// replays from the MCE instruction cache thereafter.
    ///
    /// This is the `tiles = 1` convenience form of the unified engine:
    /// delivery accounting goes through [`DeliveryEngine`] and the result
    /// is the same [`RunReport`] the multi-tile reference and the
    /// concurrent runtime produce.
    pub fn run_memory_workload<R: Rng + ?Sized>(
        &mut self,
        cycles: u64,
        program: &LogicalProgram,
        distillation_replays: u64,
        mode: DeliveryMode,
        rng: &mut R,
    ) -> RunReport {
        let engine = DeliveryEngine::new(mode);
        let kernel: Vec<LogicalInstr> = program
            .iter()
            .filter(|(_, c)| *c == InstrClass::Distillation)
            .map(|(i, _)| *i)
            .collect();
        // Dispatch the logical program through the shared engine.
        for &(i, class) in program {
            if class != InstrClass::Distillation {
                engine.dispatch(&mut self.master, &mut self.mce, i, class);
            }
        }
        engine.kernel(
            &mut self.master,
            &mut self.mce,
            &kernel,
            distillation_replays,
        );

        // Error-corrected idle (memory) for `cycles` rounds; only the
        // software baseline pays per-cycle QECC bus traffic.
        let cycle_len = self.mce.microcode().cycle_len();
        for _ in 0..cycles {
            self.run_noisy_cycle(rng);
            engine.account_cycle(&mut self.master, self.lattice.num_qubits(), cycle_len);
        }
        // Periodic sync token (cache management + logical movement, §7).
        self.master.sync(&mut self.mce, 0);

        // Final readout: measure data in Z, apply the accumulated Pauli
        // frames (local + global corrections) plus one final perfect
        // decoding round; its residual events cross the bus upstream.
        let readout = self.mce.measure_logical_z_details(&mut self.substrate, rng);
        self.master.note_readout_syndrome(readout.final_events);

        let (local_decodes, escalations) = decode_totals([&self.mce]);
        RunReport {
            delivery: mode,
            outcomes: vec![(0, readout.value)],
            bus: *self.master.bus(),
            qecc_cycles: self.mce.microcode().completed_cycles(),
            local_decodes,
            escalations,
            master: self.master.stats(),
            decode_cost: self.master.decoder_cost(),
            recovery: crate::fault::RecoveryStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Traffic;
    use quest_isa::LogicalQubit;
    use quest_stabilizer::{SeedableRng, StdRng};

    fn program() -> LogicalProgram {
        let mut p = LogicalProgram::new();
        for i in 0..10u8 {
            p.push(
                LogicalInstr::H(LogicalQubit(i % 4)),
                InstrClass::Algorithmic,
            );
        }
        for _ in 0..50 {
            p.push(
                LogicalInstr::Cnot {
                    control: LogicalQubit(0),
                    target: LogicalQubit(1),
                },
                InstrClass::Distillation,
            );
        }
        p
    }

    #[test]
    fn invalid_parameters_are_typed_errors() {
        assert_eq!(
            QuestSystem::new(4, 0.0).unwrap_err(),
            BuildError::InvalidDistance(4)
        );
        assert_eq!(
            QuestSystem::new(2, 0.0).unwrap_err(),
            BuildError::InvalidDistance(2)
        );
        assert!(matches!(
            QuestSystem::new(3, 1.5).unwrap_err(),
            BuildError::InvalidProbability { .. }
        ));
        assert!(matches!(
            QuestSystem::with_measurement_noise(3, 0.0, -0.1).unwrap_err(),
            BuildError::InvalidProbability { .. }
        ));
        assert!(QuestSystem::new(3, 0.0).is_ok());
    }

    #[test]
    fn baseline_moves_orders_of_magnitude_more_bytes() {
        // Per-cycle QECC traffic dwarfs the one-shot logical program. Use
        // a modest replay count so the distillation stream stays below the
        // per-tile QECC stream (on a 17-qubit tile; at scale the gap is
        // five orders — see the analytical model).
        let mut rng = StdRng::seed_from_u64(3);
        let cycles = 200;
        let mut base = QuestSystem::new(3, 1e-3).unwrap();
        let b = base.run_memory_workload(
            cycles,
            &program(),
            1,
            DeliveryMode::SoftwareBaseline,
            &mut rng,
        );
        let mut quest = QuestSystem::new(3, 1e-3).unwrap();
        let q = quest.run_memory_workload(cycles, &program(), 1, DeliveryMode::QuestMce, &mut rng);
        assert!(
            b.bus_bytes() > 50 * q.bus_bytes(),
            "baseline {} vs QuEST {}",
            b.bus_bytes(),
            q.bus_bytes()
        );
    }

    #[test]
    fn cached_distillation_traffic_is_replay_count_independent() {
        // The cache decouples bus traffic from how often the kernel runs.
        let mut few = QuestSystem::new(3, 0.0).unwrap();
        let f = few.run_memory_workload(
            5,
            &program(),
            10,
            DeliveryMode::QuestMceCache,
            &mut StdRng::seed_from_u64(4),
        );
        let mut many = QuestSystem::new(3, 0.0).unwrap();
        let m = many.run_memory_workload(
            5,
            &program(),
            1000,
            DeliveryMode::QuestMceCache,
            &mut StdRng::seed_from_u64(4),
        );
        // 990 extra replays cost only 2 bytes each (the replay command).
        assert_eq!(m.bus_bytes() - f.bus_bytes(), 990 * 2);
        // While the uncached mode pays the full kernel every time.
        let mut plain = QuestSystem::new(3, 0.0).unwrap();
        let p = plain.run_memory_workload(
            5,
            &program(),
            1000,
            DeliveryMode::QuestMce,
            &mut StdRng::seed_from_u64(4),
        );
        assert!(
            p.bus_bytes() > 40 * m.bus_bytes(),
            "{} vs {}",
            p.bus_bytes(),
            m.bus_bytes()
        );
    }

    #[test]
    fn cache_mode_cuts_distillation_traffic() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut plain = QuestSystem::new(3, 0.0).unwrap();
        let p = plain.run_memory_workload(10, &program(), 10, DeliveryMode::QuestMce, &mut rng);
        let mut cached = QuestSystem::new(3, 0.0).unwrap();
        let c =
            cached.run_memory_workload(10, &program(), 10, DeliveryMode::QuestMceCache, &mut rng);
        // With one kernel occurrence, fill ≈ dispatch; the win shows in
        // the distillation class being replaced by one-time cache fill.
        assert_eq!(
            c.bus_bytes_of(Traffic::Distillation),
            0,
            "cached mode sends no per-instance distillation instructions"
        );
        assert!(c.bus_bytes() <= p.bus_bytes() + 4);
    }

    #[test]
    fn noiseless_run_is_logically_clean_and_quiet() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sys = QuestSystem::new(3, 0.0).unwrap();
        let r = sys.run_memory_workload(
            50,
            &LogicalProgram::new(),
            0,
            DeliveryMode::QuestMce,
            &mut rng,
        );
        assert!(r.logical_ok());
        assert_eq!(r.local_decodes, 0);
        assert_eq!(r.escalations, 0);
        assert_eq!(r.qecc_cycles, 50);
        assert_eq!(r.outcomes, vec![(0, false)]);
    }

    #[test]
    fn noisy_run_mostly_survives_at_low_error_rate() {
        let mut failures = 0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sys = QuestSystem::new(3, 2e-3).unwrap();
            let r = sys.run_memory_workload(
                20,
                &LogicalProgram::new(),
                0,
                DeliveryMode::QuestMce,
                &mut rng,
            );
            if !r.logical_ok() {
                failures += 1;
            }
        }
        assert!(failures <= 2, "{failures}/20 logical failures at p=2e-3");
    }

    #[test]
    fn measurement_readout_noise_self_heals() {
        // An isolated measurement flip produces one event in round k and
        // one in round k+1 at the same check; the single-round LUT applies
        // the same (spurious) data correction twice, which XOR-cancels in
        // the Pauli frame. Logical information must survive pure readout
        // noise with high probability. Coincident flips can still fool the
        // single-round decoder: the measured base failure rate at these
        // parameters is ~10% over 400 seeds, so the bound leaves ~3 sigma
        // of headroom above the binomial mean of 2.5/25.
        let mut failures = 0;
        let shots = 25;
        for seed in 0..shots {
            let mut rng = StdRng::seed_from_u64(400 + seed);
            let mut sys = QuestSystem::with_measurement_noise(3, 0.0, 0.02).unwrap();
            let r = sys.run_memory_workload(
                40,
                &LogicalProgram::new(),
                0,
                DeliveryMode::QuestMce,
                &mut rng,
            );
            failures += (!r.logical_ok()) as u32;
        }
        assert!(
            failures <= 7,
            "{failures}/{shots} failures under readout noise"
        );
    }

    #[test]
    fn two_level_decoding_is_actually_used() {
        // At a moderate error rate over many cycles, the local decoder
        // must resolve most rounds and escalations must be rare.
        let mut rng = StdRng::seed_from_u64(6);
        let mut sys = QuestSystem::new(5, 3e-3).unwrap();
        let r = sys.run_memory_workload(
            300,
            &LogicalProgram::new(),
            0,
            DeliveryMode::QuestMce,
            &mut rng,
        );
        assert!(r.local_decodes > 0, "local decoder never fired");
        assert!(
            r.local_decodes > r.escalations,
            "local {} vs escalated {}",
            r.local_decodes,
            r.escalations
        );
    }
}
