//! Global-bus byte accounting.
//!
//! The global bus between the master controller and the MCEs carries
//! logical instructions downstream and error-syndrome data upstream
//! (§4.2). The entire point of QuEST is what does *not* travel on this
//! bus: QECC µops. [`BusCounters`] tallies traffic by class so experiments
//! can report baseline-vs-QuEST bandwidth directly from the simulation.

use std::fmt;

/// Traffic classes tallied on the global bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Traffic {
    /// Physical QECC instructions (baseline design only).
    QeccInstructions,
    /// Physical instructions expanded from logical ops (baseline only).
    PhysicalLogical,
    /// Logical instructions dispatched to MCEs.
    LogicalInstructions,
    /// Magic-state-distillation logical instructions.
    Distillation,
    /// Syndrome data escalated to the global decoder.
    Syndrome,
    /// Synchronization tokens.
    Sync,
    /// Instruction-cache fill traffic.
    CacheFill,
    /// Bytes resent after a packet was dropped or failed its CRC check.
    Retransmit,
}

impl Traffic {
    /// All classes, display order.
    pub const ALL: [Traffic; 8] = [
        Traffic::QeccInstructions,
        Traffic::PhysicalLogical,
        Traffic::LogicalInstructions,
        Traffic::Distillation,
        Traffic::Syndrome,
        Traffic::Sync,
        Traffic::CacheFill,
        Traffic::Retransmit,
    ];
}

impl fmt::Display for Traffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Traffic::QeccInstructions => "qecc-instructions",
            Traffic::PhysicalLogical => "physical-logical",
            Traffic::LogicalInstructions => "logical-instructions",
            Traffic::Distillation => "distillation",
            Traffic::Syndrome => "syndrome",
            Traffic::Sync => "sync",
            Traffic::CacheFill => "cache-fill",
            Traffic::Retransmit => "retransmit",
        };
        write!(f, "{s}")
    }
}

/// Byte counters per traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusCounters {
    counts: [u64; 8],
}

impl BusCounters {
    /// Fresh, zeroed counters.
    pub fn new() -> BusCounters {
        BusCounters::default()
    }

    fn idx(class: Traffic) -> usize {
        match class {
            Traffic::QeccInstructions => 0,
            Traffic::PhysicalLogical => 1,
            Traffic::LogicalInstructions => 2,
            Traffic::Distillation => 3,
            Traffic::Syndrome => 4,
            Traffic::Sync => 5,
            Traffic::CacheFill => 6,
            Traffic::Retransmit => 7,
        }
    }

    /// Records `bytes` of traffic in `class`.
    pub fn record(&mut self, class: Traffic, bytes: u64) {
        self.counts[Self::idx(class)] += bytes;
    }

    /// Bytes recorded for one class.
    pub fn bytes(&self, class: Traffic) -> u64 {
        self.counts[Self::idx(class)]
    }

    /// Total bytes across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total excluding the baseline-only classes — the bytes a QuEST bus
    /// actually carries.
    pub fn quest_total(&self) -> u64 {
        self.total() - self.bytes(Traffic::QeccInstructions) - self.bytes(Traffic::PhysicalLogical)
    }
}

impl fmt::Display for BusCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in Traffic::ALL {
            let b = self.bytes(class);
            if b > 0 {
                writeln!(f, "{class:>22}: {b} B")?;
            }
        }
        write!(f, "{:>22}: {} B", "total", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_matches_display_order() {
        for (i, &class) in Traffic::ALL.iter().enumerate() {
            assert_eq!(BusCounters::idx(class), i, "{class}");
        }
    }

    #[test]
    fn record_and_read_back() {
        let mut c = BusCounters::new();
        c.record(Traffic::Syndrome, 10);
        c.record(Traffic::Syndrome, 5);
        c.record(Traffic::Sync, 2);
        assert_eq!(c.bytes(Traffic::Syndrome), 15);
        assert_eq!(c.bytes(Traffic::Sync), 2);
        assert_eq!(c.total(), 17);
    }

    #[test]
    fn quest_total_excludes_baseline_classes() {
        let mut c = BusCounters::new();
        c.record(Traffic::QeccInstructions, 1_000_000);
        c.record(Traffic::PhysicalLogical, 500);
        c.record(Traffic::LogicalInstructions, 20);
        assert_eq!(c.quest_total(), 20);
        assert_eq!(c.total(), 1_000_520);
    }

    #[test]
    fn display_includes_total() {
        let mut c = BusCounters::new();
        c.record(Traffic::CacheFill, 7);
        let s = c.to_string();
        assert!(s.contains("cache-fill"));
        assert!(s.contains("total"));
    }
}
