//! The Micro-coded Control Engine (MCE), §4.2/Figure 7.
//!
//! An MCE owns a tile of the quantum substrate and contains the four
//! functional blocks of the paper: the instruction pipeline (logical
//! instructions), the microcode pipeline (QECC replay), the prime-line
//! quantum execution unit, and the error-decoder pipeline. Once its QECC
//! microcode is programmed, the MCE sustains error correction with *zero*
//! global-bus instruction traffic — the architectural claim this
//! repository exists to demonstrate.

use crate::decoder_pipeline::{DecodeStats, DecoderPipeline, Escalation};
use crate::execution_unit::{ExecutionStats, ExecutionUnit};
use crate::geometry::TileGeometry;
use crate::instruction_pipeline::InstructionPipeline;
use crate::mask::MaskTable;
use crate::microcode::QeccMicrocode;
use crate::program_gen;
#[cfg(test)]
use quest_isa::PhysOpcode;
use quest_isa::{LogicalInstr, MicroOp, VliwWord};
use quest_stabilizer::Tableau;
use quest_surface::{RotatedLattice, StabKind};
use rand::Rng;

/// Result of a destructive logical-Z readout
/// ([`Mce::measure_logical_z_details`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readout {
    /// The decoded logical value.
    pub value: bool,
    /// Residual detection events resolved by the final perfect round
    /// (upstream syndrome traffic at readout).
    pub final_events: u64,
}

/// One Micro-coded Control Engine driving a surface-code tile.
///
/// # Example
///
/// ```
/// use quest_core::Mce;
/// use quest_stabilizer::{SeedableRng, StdRng, Tableau};
/// use quest_surface::RotatedLattice;
///
/// let lattice = RotatedLattice::new(3);
/// let mut mce = Mce::new(&lattice, 4096);
/// let mut substrate = Tableau::new(lattice.num_qubits());
/// let mut rng = StdRng::seed_from_u64(2);
/// // Run three full QECC cycles with no master-controller involvement.
/// for _ in 0..3 {
///     mce.run_qecc_cycle(&mut substrate, &mut rng);
/// }
/// assert_eq!(mce.microcode().completed_cycles(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Mce {
    lattice: RotatedLattice,
    microcode: QeccMicrocode,
    mask: MaskTable,
    execution: ExecutionUnit,
    instruction: InstructionPipeline,
    decode_x: DecoderPipeline,
    decode_z: DecoderPipeline,
    /// Logical-µop table: words queued by the instruction pipeline that
    /// take priority (via the mask) over QECC words.
    logical_uops: Vec<VliwWord>,
    /// Pending logical Pauli-frame flips on the tile's logical qubit.
    logical_frame_x: bool,
    logical_frame_z: bool,
    /// Magic states consumed by T gates dispatched to this tile.
    magic_states_consumed: u64,
    /// Probability that a syndrome measurement is reported flipped
    /// (readout-chain error, independent of the quantum state).
    measurement_flip: f64,
}

impl Mce {
    /// Builds an MCE for a lattice tile with an instruction buffer of
    /// `ibuf_bytes` bytes. The QECC microcode is generated and installed
    /// immediately (the unit-cell program of the tile's syndrome circuit).
    pub fn new(lattice: &RotatedLattice, ibuf_bytes: usize) -> Mce {
        Mce::with_offset(lattice, ibuf_bytes, 0)
    }

    /// Builds an MCE whose tile starts at substrate index `offset`
    /// (multi-MCE systems place tiles side by side in one substrate).
    pub fn with_offset(lattice: &RotatedLattice, ibuf_bytes: usize, offset: usize) -> Mce {
        let geometry = TileGeometry::from_lattice(lattice);
        let words = program_gen::qecc_cycle_words(lattice, &geometry);
        let d = lattice.distance();
        Mce {
            lattice: lattice.clone(),
            microcode: QeccMicrocode::new(words),
            mask: MaskTable::coalesced(lattice.num_qubits(), d * d),
            execution: ExecutionUnit::with_offset(geometry, offset),
            instruction: InstructionPipeline::new(ibuf_bytes),
            decode_x: DecoderPipeline::new(lattice, StabKind::X),
            decode_z: DecoderPipeline::new(lattice, StabKind::Z),
            logical_uops: Vec::new(),
            logical_frame_x: false,
            logical_frame_z: false,
            magic_states_consumed: 0,
            measurement_flip: 0.0,
        }
    }

    /// Sets the classical syndrome-measurement flip probability (readout
    /// noise between the execution unit and the decoder pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_measurement_flip(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.measurement_flip = p;
    }

    /// Substrate index of tile-local qubit `q`.
    pub fn substrate_index(&self, q: usize) -> usize {
        self.execution.offset() + q
    }

    /// The tile's lattice.
    pub fn lattice(&self) -> &RotatedLattice {
        &self.lattice
    }

    /// The QECC replay engine.
    pub fn microcode(&self) -> &QeccMicrocode {
        &self.microcode
    }

    /// The mask table.
    pub fn mask(&self) -> &MaskTable {
        &self.mask
    }

    /// Mutable mask access (mask instructions write here).
    pub fn mask_mut(&mut self) -> &mut MaskTable {
        &mut self.mask
    }

    /// The instruction pipeline.
    pub fn instruction_pipeline(&self) -> &InstructionPipeline {
        &self.instruction
    }

    /// Mutable instruction-pipeline access.
    pub fn instruction_pipeline_mut(&mut self) -> &mut InstructionPipeline {
        &mut self.instruction
    }

    /// Execution-unit statistics.
    pub fn execution_stats(&self) -> ExecutionStats {
        self.execution.stats()
    }

    /// Local-decoder statistics for one stabilizer type.
    pub fn decode_stats(&self, kind: StabKind) -> DecodeStats {
        match kind {
            StabKind::X => self.decode_x.stats(),
            StabKind::Z => self.decode_z.stats(),
        }
    }

    /// The decoder pipeline for one stabilizer type.
    pub fn decoder(&self, kind: StabKind) -> &DecoderPipeline {
        match kind {
            StabKind::X => &self.decode_x,
            StabKind::Z => &self.decode_z,
        }
    }

    /// Mutable decoder access (the master controller pushes global
    /// corrections through this).
    pub fn decoder_mut(&mut self, kind: StabKind) -> &mut DecoderPipeline {
        match kind {
            StabKind::X => &mut self.decode_x,
            StabKind::Z => &mut self.decode_z,
        }
    }

    /// Queues a logical VLIW word; while queued words exist they are
    /// issued in place of QECC words on masked qubits.
    pub fn queue_logical_word(&mut self, w: VliwWord) {
        assert_eq!(
            w.len(),
            self.lattice.num_qubits(),
            "logical word width must match tile"
        );
        self.logical_uops.push(w);
    }

    /// Number of queued logical words.
    pub fn pending_logical_words(&self) -> usize {
        self.logical_uops.len()
    }

    /// Issues one instruction slot: the next QECC word, merged through the
    /// mask table with the head of the logical-µop queue (Figure 8c).
    /// Returns the word actually fired.
    pub fn step<R: Rng + ?Sized>(&mut self, substrate: &mut Tableau, rng: &mut R) -> VliwWord {
        let qecc_word = self.microcode.next_word();
        let logical = if self.logical_uops.is_empty() {
            None
        } else {
            Some(self.logical_uops.remove(0))
        };
        let mut merged = VliwWord::nop(qecc_word.len());
        for (q, qecc_uop) in qecc_word.iter() {
            let uop = if self.mask.is_masked(q) {
                logical.as_ref().map_or(MicroOp::nop(), |w| w.get(q))
            } else {
                qecc_uop
            };
            merged.set(q, uop);
        }
        let fired = self.execution.execute(&merged, substrate, rng);

        // Route measurement outcomes from the cycle's measurement word to
        // the decoder pipelines, optionally corrupted by readout noise.
        if !fired.measurements.is_empty() {
            let mut readings = fired.measurements;
            if self.measurement_flip > 0.0 {
                for (_, v) in &mut readings {
                    if rng.gen::<f64>() < self.measurement_flip {
                        *v = !*v;
                    }
                }
            }
            self.route_syndrome(&readings);
        }
        merged
    }

    /// Runs exactly one full QECC cycle (all words of the microcode
    /// program from its current cycle start).
    ///
    /// # Panics
    ///
    /// Panics if called mid-cycle (the microcode cursor is not at a cycle
    /// boundary).
    pub fn run_qecc_cycle<R: Rng + ?Sized>(&mut self, substrate: &mut Tableau, rng: &mut R) {
        assert!(
            self.microcode.at_cycle_start(),
            "run_qecc_cycle must start at a cycle boundary"
        );
        for _ in 0..self.microcode.cycle_len() {
            self.step(substrate, rng);
        }
    }

    fn route_syndrome(&mut self, measurements: &[(usize, bool)]) {
        for kind in [StabKind::X, StabKind::Z] {
            let ancillas = program_gen::measured_ancillas(&self.lattice, kind);
            // Only route when the full set of this type's ancillas was
            // measured this slot and none of them is masked (masked
            // regions produce no valid syndrome).
            let bits: Option<Vec<bool>> = ancillas
                .iter()
                .map(|&a| measurements.iter().find(|(q, _)| *q == a).map(|(_, v)| *v))
                .collect();
            if let Some(bits) = bits {
                if ancillas.iter().all(|&a| !self.mask.is_masked(a)) {
                    match kind {
                        StabKind::X => self.decode_x.feed_round(&bits),
                        StabKind::Z => self.decode_z.feed_round(&bits),
                    }
                }
            }
        }
    }

    /// Executes one logical instruction on this tile (step ⑤/⑥ of the
    /// instruction pipeline: decode and expand).
    ///
    /// The tile hosts one logical qubit, so single-qubit operands are
    /// ignored. Simulation-backed operations:
    ///
    /// * `X`/`Z` — tracked in the logical Pauli frame (no physical µops,
    ///   exactly like real Pauli-frame controllers);
    /// * `MaskOn`/`MaskOff` — mask-table writes;
    /// * `BraidStep` — toggles a mask region (one boundary-move step);
    /// * `PrepZ`/`PrepX` — queue a transverse preparation word for the
    ///   data qubits (issued through the mask on the next slot);
    /// * `T`/`MagicInject` — consume a magic state (counted; the
    ///   non-Clifford rotation itself lies outside stabilizer
    ///   simulation);
    /// * `H`, `S`, `Cnot`, measurements, sync and cache control are
    ///   coordinated by the master controller, not expanded per tile.
    pub fn execute_logical(&mut self, i: LogicalInstr) {
        use quest_isa::PhysOpcode as Op;
        match i {
            LogicalInstr::X(_) => self.logical_frame_x = !self.logical_frame_x,
            LogicalInstr::Z(_) => self.logical_frame_z = !self.logical_frame_z,
            LogicalInstr::MaskOn(r) => self.mask.set_region(r.0 as usize, true),
            LogicalInstr::MaskOff(r) => self.mask.set_region(r.0 as usize, false),
            LogicalInstr::BraidStep(r) => {
                let region = r.0 as usize;
                let now = self.mask.region_masked(region);
                self.mask.set_region(region, !now);
            }
            LogicalInstr::PrepZ(_) | LogicalInstr::PrepX(_) => {
                let op = if matches!(i, LogicalInstr::PrepZ(_)) {
                    Op::PrepZ
                } else {
                    Op::PrepX
                };
                let mut w = VliwWord::nop(self.lattice.num_qubits());
                for q in 0..self.lattice.num_data() {
                    w.set(q, MicroOp::simple(op));
                }
                self.queue_logical_word(w);
                self.notify_prepared(if matches!(i, LogicalInstr::PrepZ(_)) {
                    StabKind::Z
                } else {
                    StabKind::X
                });
            }
            LogicalInstr::T(_) | LogicalInstr::MagicInject(_) => {
                self.magic_states_consumed += 1;
            }
            _ => {}
        }
    }

    /// Re-arms the decoder pipelines and clears the logical frame after a
    /// fresh logical preparation in the `deterministic_kind` basis: that
    /// kind's checks start from the known all-zero reference, the other
    /// kind's checks take their reference from the first projective round.
    pub fn notify_prepared(&mut self, deterministic_kind: StabKind) {
        use crate::decoder_pipeline::Reference;
        self.decoder_mut(deterministic_kind)
            .reset_reference(Reference::Deterministic);
        self.decoder_mut(deterministic_kind.other())
            .reset_reference(Reference::FirstRound);
        self.logical_frame_x = false;
        self.logical_frame_z = false;
    }

    /// Pending logical Pauli-frame flips `(x, z)` on the tile's logical
    /// qubit.
    pub fn logical_frame(&self) -> (bool, bool) {
        (self.logical_frame_x, self.logical_frame_z)
    }

    /// Magic states consumed by T gates dispatched to this tile.
    pub fn magic_states_consumed(&self) -> u64 {
        self.magic_states_consumed
    }

    /// Reads out the tile's logical qubit in the Z basis: measures every
    /// data qubit, applies the error-decoder Pauli frame plus one final
    /// perfect decoding round, XORs the logical-Z row, and folds in the
    /// logical Pauli frame.
    ///
    /// This consumes the logical state (all data qubits collapse).
    pub fn measure_logical_z<R: Rng + ?Sized>(
        &mut self,
        substrate: &mut Tableau,
        rng: &mut R,
    ) -> bool {
        self.measure_logical_z_details(substrate, rng).value
    }

    /// Like [`Mce::measure_logical_z`], additionally reporting how many
    /// residual detection events the final perfect decoding round saw —
    /// the master controller accounts those as upstream syndrome bytes
    /// ([`MasterController::note_readout_syndrome`](crate::MasterController::note_readout_syndrome)).
    pub fn measure_logical_z_details<R: Rng + ?Sized>(
        &mut self,
        substrate: &mut Tableau,
        rng: &mut R,
    ) -> Readout {
        use quest_surface::decoder::Decoder;
        let mut bits: Vec<bool> = (0..self.lattice.num_data())
            .map(|q| substrate.measure(self.substrate_index(q), rng).value)
            .collect();
        for &q in self.decode_z.frame() {
            bits[q] = !bits[q];
        }
        // Final perfect round: decode the residual syndrome derived from
        // the readout itself.
        let graph = quest_surface::DecodingGraph::new(&self.lattice, StabKind::Z, 1);
        let events: Vec<usize> = self
            .lattice
            .plaquettes_of(StabKind::Z)
            .enumerate()
            .filter_map(|(c, p)| {
                let parity = p.data.iter().fold(false, |acc, &q| acc ^ bits[q]);
                parity.then_some(graph.node(0, c))
            })
            .collect();
        if !events.is_empty() {
            let correction = quest_surface::UnionFindDecoder::new().decode(&graph, &events);
            for q in correction.data_flips {
                bits[q] = !bits[q];
            }
        }
        let parity = (0..self.lattice.distance())
            .map(|col| bits[self.lattice.data_index(0, col)])
            .fold(false, |acc, b| acc ^ b);
        Readout {
            value: parity ^ self.logical_frame_x,
            final_events: events.len() as u64,
        }
    }

    /// Drains pending escalations from both decoder pipelines as
    /// `(kind, escalation)` pairs for the master controller.
    pub fn take_escalations(&mut self) -> Vec<(StabKind, Escalation)> {
        let mut out = Vec::new();
        for e in self.decode_z.take_escalations() {
            out.push((StabKind::Z, e));
        }
        for e in self.decode_x.take_escalations() {
            out.push((StabKind::X, e));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_stabilizer::{SeedableRng, StdRng};

    fn setup(d: usize) -> (Mce, Tableau, StdRng) {
        let lat = RotatedLattice::new(d);
        let mce = Mce::new(&lat, 4096);
        let t = Tableau::new(lat.num_qubits());
        (mce, t, StdRng::seed_from_u64(13))
    }

    #[test]
    fn qecc_cycles_replay_without_bus_traffic() {
        let (mut mce, mut t, mut rng) = setup(3);
        for _ in 0..10 {
            mce.run_qecc_cycle(&mut t, &mut rng);
        }
        assert_eq!(mce.microcode().completed_cycles(), 10);
        // The instruction pipeline saw nothing: QECC is hardware-managed.
        assert_eq!(mce.instruction_pipeline().stats().bus_instructions, 0);
    }

    #[test]
    fn noiseless_cycles_produce_no_corrections_or_escalations() {
        let (mut mce, mut t, mut rng) = setup(3);
        for _ in 0..5 {
            mce.run_qecc_cycle(&mut t, &mut rng);
        }
        let z = mce.decode_stats(StabKind::Z);
        assert_eq!(z.escalations, 0);
        assert_eq!(z.local_corrections, 0);
        assert!(mce.decoder(StabKind::Z).frame().is_empty());
    }

    #[test]
    fn injected_error_is_fixed_by_local_decoder() {
        let (mut mce, mut t, mut rng) = setup(3);
        mce.run_qecc_cycle(&mut t, &mut rng); // project
        let victim = mce.lattice().data_index(1, 1);
        t.x(victim);
        mce.run_qecc_cycle(&mut t, &mut rng);
        let frame: Vec<usize> = mce.decoder(StabKind::Z).frame().iter().copied().collect();
        assert_eq!(frame, vec![victim]);
        assert_eq!(mce.decode_stats(StabKind::Z).local_hits, 1);
        assert_eq!(mce.decode_stats(StabKind::Z).escalations, 0);
    }

    #[test]
    fn masked_region_stops_qecc_uops() {
        let (mut mce, mut t, mut rng) = setup(3);
        // Mask everything: all µops become NOPs, no measurements occur.
        let regions = mce.mask().num_regions();
        for r in 0..regions {
            mce.mask_mut().set_region(r, true);
        }
        let before = mce.execution_stats().measurements;
        mce.run_qecc_cycle(&mut t, &mut rng);
        assert_eq!(mce.execution_stats().measurements, before);
        assert_eq!(mce.execution_stats().active_uops, 0);
    }

    #[test]
    fn logical_words_flow_through_mask() {
        let (mut mce, mut t, mut rng) = setup(3);
        let n = mce.lattice().num_qubits();
        // Mask the whole tile and queue a logical X on one data qubit.
        for r in 0..mce.mask().num_regions() {
            mce.mask_mut().set_region(r, true);
        }
        let q = mce.lattice().data_index(0, 0);
        let mut w = VliwWord::nop(n);
        w.set(q, MicroOp::simple(PhysOpcode::X));
        mce.queue_logical_word(w);
        mce.step(&mut t, &mut rng);
        assert_eq!(mce.pending_logical_words(), 0);
        assert!(t.measure(q, &mut rng).value, "logical µop executed");
    }

    #[test]
    #[should_panic(expected = "cycle boundary")]
    fn mid_cycle_full_cycle_call_panics() {
        let (mut mce, mut t, mut rng) = setup(3);
        mce.step(&mut t, &mut rng);
        mce.run_qecc_cycle(&mut t, &mut rng);
    }

    #[test]
    fn mask_idle_and_resume_preserves_logical_state() {
        // §5.1: logical qubits are created by masking QECC over a region.
        // Mask the whole tile (QECC off), idle a few slots, unmask: in the
        // absence of noise the stabilizer state persists, the resumed
        // syndrome matches the pre-mask reference (no spurious detection
        // events), and the logical qubit reads back intact.
        let (mut mce, mut t, mut rng) = setup(3);
        mce.run_qecc_cycle(&mut t, &mut rng); // project |0_L>
        for r in 0..mce.mask().num_regions() {
            mce.mask_mut().set_region(r, true);
        }
        for _ in 0..3 {
            mce.run_qecc_cycle(&mut t, &mut rng); // masked: all-NOP cycles
        }
        for r in 0..mce.mask().num_regions() {
            mce.mask_mut().set_region(r, false);
        }
        mce.run_qecc_cycle(&mut t, &mut rng); // resumed QECC
        let z = mce.decode_stats(StabKind::Z);
        assert_eq!(z.local_hits + z.escalations, 0, "spurious events on resume");
        assert!(!mce.measure_logical_z(&mut t, &mut rng));
    }

    #[test]
    fn logical_pauli_instructions_toggle_the_frame() {
        use quest_isa::{LogicalInstr, LogicalQubit};
        let (mut mce, _, _) = setup(3);
        assert_eq!(mce.logical_frame(), (false, false));
        mce.execute_logical(LogicalInstr::X(LogicalQubit(0)));
        mce.execute_logical(LogicalInstr::Z(LogicalQubit(0)));
        assert_eq!(mce.logical_frame(), (true, true));
        mce.execute_logical(LogicalInstr::X(LogicalQubit(0)));
        assert_eq!(mce.logical_frame(), (false, true));
    }

    #[test]
    fn mask_instructions_write_the_mask_table() {
        use quest_isa::{LogicalInstr, MaskRegion};
        let (mut mce, _, _) = setup(3);
        mce.execute_logical(LogicalInstr::MaskOn(MaskRegion(1)));
        assert!(mce.mask().region_masked(1));
        mce.execute_logical(LogicalInstr::BraidStep(MaskRegion(1)));
        assert!(!mce.mask().region_masked(1));
        mce.execute_logical(LogicalInstr::BraidStep(MaskRegion(1)));
        assert!(mce.mask().region_masked(1));
        mce.execute_logical(LogicalInstr::MaskOff(MaskRegion(1)));
        assert!(!mce.mask().region_masked(1));
    }

    #[test]
    fn t_gates_consume_magic_states() {
        use quest_isa::{LogicalInstr, LogicalQubit};
        let (mut mce, _, _) = setup(3);
        for _ in 0..7 {
            mce.execute_logical(LogicalInstr::T(LogicalQubit(0)));
        }
        mce.execute_logical(LogicalInstr::MagicInject(LogicalQubit(0)));
        assert_eq!(mce.magic_states_consumed(), 8);
    }

    #[test]
    fn logical_prep_queues_a_transverse_word_and_clears_frames() {
        use quest_isa::{LogicalInstr, LogicalQubit};
        let (mut mce, _, _) = setup(3);
        mce.execute_logical(LogicalInstr::X(LogicalQubit(0)));
        mce.execute_logical(LogicalInstr::PrepZ(LogicalQubit(0)));
        assert_eq!(mce.pending_logical_words(), 1);
        assert_eq!(mce.logical_frame(), (false, false));
    }

    #[test]
    fn logical_readout_respects_frame_and_corrections() {
        use quest_isa::{LogicalInstr, LogicalQubit};
        let (mut mce, mut t, mut rng) = setup(3);
        mce.run_qecc_cycle(&mut t, &mut rng);
        // Clean |0_L>: reads 0. Frame X flips the report to 1.
        let mut probe = mce.clone();
        let mut pt = t.clone();
        assert!(!probe.measure_logical_z(&mut pt, &mut rng));
        mce.execute_logical(LogicalInstr::X(LogicalQubit(0)));
        assert!(mce.measure_logical_z(&mut t, &mut rng));
    }

    #[test]
    fn readout_survives_uncorrected_residual_error() {
        // An error injected after the last QECC cycle is caught by the
        // final perfect decoding round inside measure_logical_z.
        let (mut mce, mut t, mut rng) = setup(3);
        mce.run_qecc_cycle(&mut t, &mut rng);
        t.x(mce.lattice().data_index(1, 1));
        assert!(!mce.measure_logical_z(&mut t, &mut rng));
    }
}
