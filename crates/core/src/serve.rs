//! Serving-layer vocabulary: job/tenant identities and the server
//! ledger report.
//!
//! The paper's bandwidth argument turns QEC control from a batch problem
//! into a sustained service; `quest-serve` (the `crates/serve` crate) is
//! that service. This module holds the *data* half of it — the types
//! that cross the boundary between the server and its clients — so the
//! report a server hands back lives alongside [`RunReport`](crate::RunReport)
//! and is usable without depending on the server crate itself.
//!
//! Everything here is deterministic plain data: identities are ordered
//! integers, per-tenant sections are kept in sorted order, and latency
//! summaries are computed from explicit sample vectors (wall-clock
//! *measurement* happens behind the runtime's `Stopwatch` boundary, never
//! here).

use crate::fault::RecoveryStats;
use std::fmt;
use std::time::Duration;

/// Identity of one tenant of the serving layer. Tenants are the unit of
/// admission control: quotas, ledger sections and fairness accounting
/// all key on this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Identity of one submitted job, unique for the lifetime of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Order-statistics summary of a latency sample set.
///
/// Percentiles use the nearest-rank method on the sorted samples: the
/// p-th percentile is the smallest sample at or above p% of the set, so
/// every reported value is an actually-observed latency. An empty set
/// summarizes to all-zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples observed.
    pub samples: u64,
    /// Median (50th percentile, nearest rank).
    pub p50: Duration,
    /// 99th percentile (nearest rank).
    pub p99: Duration,
    /// Largest observed sample.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarizes a sample set. The slice is sorted in place (summaries
    /// are taken at report time, when sample order no longer matters).
    pub fn from_samples(samples: &mut [Duration]) -> LatencySummary {
        samples.sort_unstable();
        let Some(&max) = samples.last() else {
            return LatencySummary::default();
        };
        let rank = |pct: u64| -> Duration {
            // Nearest rank: ceil(pct/100 * n), 1-based, clamped into the
            // slice. n is nonzero here.
            let n = samples.len() as u64;
            let r = (pct * n).div_ceil(100).clamp(1, n);
            samples[(r - 1) as usize]
        };
        LatencySummary {
            samples: samples.len() as u64,
            p50: rank(50),
            p99: rank(99),
            max,
        }
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50 {:?} / p99 {:?} / max {:?} ({} samples)",
            self.p50, self.p99, self.max, self.samples
        )
    }
}

/// One tenant's section of the server ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantServeStats {
    /// Jobs admitted into the queue (whatever their eventual fate).
    pub jobs_admitted: u64,
    /// Jobs rejected at admission (quota or validation).
    pub jobs_rejected: u64,
    /// Jobs that ran to completion.
    pub jobs_done: u64,
    /// Jobs cancelled (before or during execution).
    pub jobs_cancelled: u64,
    /// Jobs that failed with a runtime error.
    pub jobs_failed: u64,
    /// Jobs that exhausted their cycle-budget deadline (terminal, counted
    /// separately from failures: the runtime was healthy, the budget ran
    /// out).
    pub jobs_deadline_exceeded: u64,
    /// Retry attempts started across the tenant's jobs (a job retried
    /// twice counts 2 here and once in whatever terminal bucket it
    /// reached).
    pub jobs_retried: u64,
    /// Jobs shed at admission because the server's cycle backlog exceeded
    /// its bound (a subset of `jobs_rejected`).
    pub jobs_shed: u64,
    /// QECC cycles inherited from checkpoints instead of re-executed,
    /// summed over every resumed attempt.
    pub cycles_resumed: u64,
    /// Logical readouts ("shots") completed across the tenant's done
    /// jobs.
    pub shots_done: u64,
    /// Fault-recovery counters (retransmissions, watchdog quarantines,
    /// decode-pool respawns, ...) folded in from every completed job's
    /// `RunReport::recovery`, so fault pressure is visible per tenant.
    pub recovery: RecoveryStats,
    /// Queue latency (submit → worker pickup) of started jobs.
    pub queue_latency: LatencySummary,
    /// Run latency (worker pickup → terminal state) of finished jobs.
    pub run_latency: LatencySummary,
    /// Completed jobs by decoder-backend name, sorted by name. Empty
    /// until a job completes.
    pub jobs_by_decoder: Vec<(String, u64)>,
}

impl TenantServeStats {
    /// Jobs that reached a terminal state (done, cancelled, failed or
    /// deadline-exceeded).
    pub fn jobs_finished(&self) -> u64 {
        self.jobs_done + self.jobs_cancelled + self.jobs_failed + self.jobs_deadline_exceeded
    }
}

/// The server ledger: what a `quest-serve` server observed over its
/// lifetime, reported per tenant and in aggregate.
///
/// The companion of [`RunReport`](crate::RunReport) one level up: a
/// `RunReport` describes one job's physics and bus accounting (and is
/// bit-deterministic per job), a `ServeReport` describes how the *service*
/// treated many jobs (and is timing-dependent by nature — wall-clock
/// latencies and throughput are observability, never physics).
#[must_use]
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    /// Per-tenant sections, sorted by tenant id.
    pub tenants: Vec<(TenantId, TenantServeStats)>,
    /// Worker threads the server ran.
    pub workers: usize,
    /// Wall-clock from server start to the report snapshot.
    pub uptime: Duration,
}

impl ServeReport {
    /// One tenant's section, if the tenant ever touched the server.
    pub fn tenant(&self, id: TenantId) -> Option<&TenantServeStats> {
        self.tenants
            .binary_search_by_key(&id, |&(t, _)| t)
            .ok()
            .map(|i| &self.tenants[i].1)
    }

    /// Jobs completed across all tenants.
    pub fn jobs_done(&self) -> u64 {
        self.tenants.iter().map(|(_, t)| t.jobs_done).sum()
    }

    /// Jobs cancelled across all tenants.
    pub fn jobs_cancelled(&self) -> u64 {
        self.tenants.iter().map(|(_, t)| t.jobs_cancelled).sum()
    }

    /// Jobs failed across all tenants.
    pub fn jobs_failed(&self) -> u64 {
        self.tenants.iter().map(|(_, t)| t.jobs_failed).sum()
    }

    /// Jobs rejected at admission across all tenants.
    pub fn jobs_rejected(&self) -> u64 {
        self.tenants.iter().map(|(_, t)| t.jobs_rejected).sum()
    }

    /// Jobs that exhausted their deadline across all tenants.
    pub fn jobs_deadline_exceeded(&self) -> u64 {
        self.tenants
            .iter()
            .map(|(_, t)| t.jobs_deadline_exceeded)
            .sum()
    }

    /// Retry attempts started across all tenants.
    pub fn jobs_retried(&self) -> u64 {
        self.tenants.iter().map(|(_, t)| t.jobs_retried).sum()
    }

    /// Jobs shed at admission for backlog pressure across all tenants.
    pub fn jobs_shed(&self) -> u64 {
        self.tenants.iter().map(|(_, t)| t.jobs_shed).sum()
    }

    /// Logical readouts completed across all tenants.
    pub fn shots_done(&self) -> u64 {
        self.tenants.iter().map(|(_, t)| t.shots_done).sum()
    }

    /// Completed jobs per second of uptime (0 for a zero-length window).
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs > 0.0 {
            self.jobs_done() as f64 / secs
        } else {
            0.0
        }
    }

    /// Completed shots per second of uptime (0 for a zero-length window).
    pub fn shots_per_sec(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs > 0.0 {
            self.shots_done() as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve ledger: {} workers, uptime {:?}, {} done / {} cancelled / {} failed / {} deadline-exceeded / {} rejected",
            self.workers,
            self.uptime,
            self.jobs_done(),
            self.jobs_cancelled(),
            self.jobs_failed(),
            self.jobs_deadline_exceeded(),
            self.jobs_rejected(),
        )?;
        if self.jobs_retried() > 0 || self.jobs_shed() > 0 {
            writeln!(
                f,
                "supervision: {} retries, {} shed",
                self.jobs_retried(),
                self.jobs_shed(),
            )?;
        }
        writeln!(
            f,
            "throughput: {:.2} jobs/s, {:.2} shots/s ({} shots)",
            self.jobs_per_sec(),
            self.shots_per_sec(),
            self.shots_done(),
        )?;
        for (id, t) in &self.tenants {
            writeln!(
                f,
                "  {id}: {} done / {} cancelled / {} failed / {} deadline-exceeded / {} rejected, {} shots",
                t.jobs_done,
                t.jobs_cancelled,
                t.jobs_failed,
                t.jobs_deadline_exceeded,
                t.jobs_rejected,
                t.shots_done,
            )?;
            if t.jobs_retried > 0 || t.jobs_shed > 0 || t.cycles_resumed > 0 {
                writeln!(
                    f,
                    "    supervision  : {} retries, {} shed, {} cycles resumed",
                    t.jobs_retried, t.jobs_shed, t.cycles_resumed,
                )?;
            }
            writeln!(f, "    queue latency: {}", t.queue_latency)?;
            writeln!(f, "    run latency  : {}", t.run_latency)?;
            if !t.recovery.is_quiet() {
                writeln!(
                    f,
                    "    recovery     : {} retransmissions, {} watchdog timeouts, {} pool respawns",
                    t.recovery.retransmissions,
                    t.recovery.watchdog_timeouts,
                    t.recovery.decode_worker_respawns,
                )?;
            }
            if !t.jobs_by_decoder.is_empty() {
                write!(f, "    decoders     :")?;
                for (name, n) in &t.jobs_by_decoder {
                    write!(f, " {name}={n}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn latency_summary_nearest_rank() {
        let mut samples: Vec<Duration> = (1..=100).map(ms).collect();
        let s = LatencySummary::from_samples(&mut samples);
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50, ms(50));
        assert_eq!(s.p99, ms(99));
        assert_eq!(s.max, ms(100));
    }

    #[test]
    fn latency_summary_small_and_empty_sets() {
        assert_eq!(
            LatencySummary::from_samples(&mut []),
            LatencySummary::default()
        );
        let mut one = vec![ms(7)];
        let s = LatencySummary::from_samples(&mut one);
        assert_eq!((s.p50, s.p99, s.max, s.samples), (ms(7), ms(7), ms(7), 1));
        let mut two = vec![ms(9), ms(3)];
        let s = LatencySummary::from_samples(&mut two);
        assert_eq!(
            s.p50,
            ms(3),
            "nearest rank of p50 over 2 samples is the 1st"
        );
        assert_eq!(s.p99, ms(9));
    }

    #[test]
    fn report_totals_and_lookup() {
        let a = TenantServeStats {
            jobs_done: 3,
            shots_done: 12,
            jobs_by_decoder: vec![("union-find".to_string(), 3)],
            ..TenantServeStats::default()
        };
        let b = TenantServeStats {
            jobs_done: 1,
            jobs_cancelled: 2,
            jobs_rejected: 4,
            ..TenantServeStats::default()
        };
        let report = ServeReport {
            tenants: vec![(TenantId(1), a), (TenantId(5), b)],
            workers: 2,
            uptime: Duration::from_secs(2),
        };
        assert_eq!(report.jobs_done(), 4);
        assert_eq!(report.jobs_cancelled(), 2);
        assert_eq!(report.jobs_rejected(), 4);
        assert_eq!(report.shots_done(), 12);
        assert!((report.jobs_per_sec() - 2.0).abs() < 1e-12);
        assert!((report.shots_per_sec() - 6.0).abs() < 1e-12);
        assert_eq!(
            report.tenant(TenantId(5)).map(|t| t.jobs_cancelled),
            Some(2)
        );
        assert!(report.tenant(TenantId(2)).is_none());
        let text = report.to_string();
        assert!(text.contains("tenant-1"));
        assert!(text.contains("jobs/s"));
        assert!(text.contains("union-find=3"));
    }

    #[test]
    fn zero_uptime_throughput_is_zero() {
        let report = ServeReport::default();
        assert_eq!(report.jobs_per_sec(), 0.0);
        assert_eq!(report.shots_per_sec(), 0.0);
    }

    #[test]
    fn ids_display_and_order() {
        assert_eq!(TenantId(3).to_string(), "tenant-3");
        assert_eq!(JobId(12).to_string(), "job-12");
        assert!(TenantId(1) < TenantId(2));
        assert!(JobId(1) < JobId(2));
    }
}
