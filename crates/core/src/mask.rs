//! QECC mask table.
//!
//! §4.4/§5.1: each qubit has a mask bit selecting whether its µop comes
//! from the QECC-µop table or the logical-µop table. Masking the error
//! correction over a region of qubits is how logical qubits are created,
//! moved and braided. §4.5 additionally observes that logical instructions
//! operate at a granularity of `d²` physical qubits, so mask bits can be
//! *coalesced* over pre-defined regions, shrinking the table from `N` bits
//! to `N/d²` bits.

use std::fmt;

/// Per-qubit mask with optional region coalescing.
///
/// # Example
///
/// ```
/// use quest_core::mask::MaskTable;
///
/// // 18 qubits in regions of 9 (d = 3 ⇒ d² = 9).
/// let mut m = MaskTable::coalesced(18, 9);
/// assert_eq!(m.storage_bits(), 2);
/// m.set_region(1, true);
/// assert!(m.is_masked(9));
/// assert!(!m.is_masked(8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskTable {
    num_qubits: usize,
    region_size: usize,
    regions: Vec<bool>,
}

impl MaskTable {
    /// One mask bit per qubit (the unoptimized design).
    pub fn per_qubit(num_qubits: usize) -> MaskTable {
        MaskTable::coalesced(num_qubits, 1)
    }

    /// Coalesced mask: one bit per `region_size` consecutive qubits.
    ///
    /// # Panics
    ///
    /// Panics if `region_size` is zero or `num_qubits` is zero.
    pub fn coalesced(num_qubits: usize, region_size: usize) -> MaskTable {
        assert!(num_qubits > 0, "mask needs at least one qubit");
        assert!(region_size > 0, "region size must be nonzero");
        let regions = num_qubits.div_ceil(region_size);
        MaskTable {
            num_qubits,
            region_size,
            regions: vec![false; regions],
        }
    }

    /// Number of qubits covered.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Region granularity in qubits.
    pub fn region_size(&self) -> usize {
        self.region_size
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Storage cost in bits — the paper's `N/d²` saving.
    pub fn storage_bits(&self) -> usize {
        self.regions.len()
    }

    /// The region a qubit belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn region_of(&self, qubit: usize) -> usize {
        assert!(qubit < self.num_qubits, "qubit out of range");
        qubit / self.region_size
    }

    /// Masks or unmasks a whole region (a logical-qubit boundary move is a
    /// sequence of such writes, §5.1).
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn set_region(&mut self, region: usize, masked: bool) {
        self.regions[region] = masked;
    }

    /// Returns `true` when QECC is disabled for this qubit (its µop comes
    /// from the logical table instead).
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn is_masked(&self, qubit: usize) -> bool {
        self.regions[self.region_of(qubit)]
    }

    /// Returns `true` when a region is masked.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn region_masked(&self, region: usize) -> bool {
        self.regions[region]
    }

    /// Number of masked qubits.
    pub fn masked_count(&self) -> usize {
        (0..self.num_qubits).filter(|&q| self.is_masked(q)).count()
    }

    /// Clears every mask bit (QECC everywhere).
    pub fn clear(&mut self) {
        self.regions.iter_mut().for_each(|r| *r = false);
    }
}

impl fmt::Display for MaskTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mask[{} qubits / {} regions of {}]",
            self.num_qubits,
            self.regions.len(),
            self.region_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_qubit_mask_storage_is_n() {
        let m = MaskTable::per_qubit(100);
        assert_eq!(m.storage_bits(), 100);
        assert_eq!(m.region_size(), 1);
    }

    #[test]
    fn coalescing_divides_storage_by_d_squared() {
        // Paper: N physical qubits need only N/d² coalesced mask bits.
        let d = 5;
        let n = 10_000;
        let m = MaskTable::coalesced(n, d * d);
        assert_eq!(m.storage_bits(), n / (d * d));
    }

    #[test]
    fn region_masking_covers_member_qubits_exactly() {
        let mut m = MaskTable::coalesced(30, 10);
        m.set_region(2, true);
        for q in 0..30 {
            assert_eq!(m.is_masked(q), q >= 20, "qubit {q}");
        }
        assert_eq!(m.masked_count(), 10);
        m.clear();
        assert_eq!(m.masked_count(), 0);
    }

    #[test]
    fn ragged_final_region() {
        let m = MaskTable::coalesced(25, 10);
        assert_eq!(m.num_regions(), 3);
        assert_eq!(m.region_of(24), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        MaskTable::per_qubit(5).is_masked(5);
    }
}
