//! The unified run report shared by every execution path.
//!
//! [`QuestSystem::run_memory_workload`](crate::QuestSystem::run_memory_workload),
//! the multi-tile reference executor and the concurrent `quest-runtime`
//! all produce this one [`RunReport`]. It carries the full per-class bus
//! ledger (not just a byte total), the two-level decoding counters, and
//! the logical readout outcomes — everything the determinism harness
//! asserts bit-identical across shard counts, and everything Figure 14
//! needs per delivery mode.

use crate::bus::{BusCounters, Traffic};
use crate::delivery::DeliveryMode;
use crate::fault::RecoveryStats;
use crate::master::MasterStats;
use crate::mce::Mce;
use quest_surface::decoder::CostReport;

/// Result of running a workload, identical in shape for the single-tile
/// system, the multi-tile reference and the sharded runtime.
#[must_use]
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Delivery mode accounted.
    pub delivery: DeliveryMode,
    /// Logical readout outcomes, in program order, as `(tile, value)`.
    pub outcomes: Vec<(usize, bool)>,
    /// The full global-bus ledger, by traffic class.
    pub bus: BusCounters,
    /// QECC cycles executed per tile.
    pub qecc_cycles: u64,
    /// Detection-event rounds resolved by MCE lookup decoders (both
    /// stabilizer types, all tiles).
    pub local_decodes: u64,
    /// Rounds escalated to the master's global decoder (both stabilizer
    /// types, all tiles).
    pub escalations: u64,
    /// Master-controller counters (dispatches, global decodes, syncs).
    pub master: MasterStats,
    /// Accumulated cost of the global decoder backend (cycles, JJ
    /// footprint, fallback counts). Pure functions of the decoded
    /// `(graph, events)` multiset, so bit-identical across shard counts.
    pub decode_cost: CostReport,
    /// Classical-fault injection and recovery counters. All-zero for a
    /// fault-free run (and always for the non-injecting reference path).
    pub recovery: RecoveryStats,
}

impl RunReport {
    /// Total bytes that crossed the global bus.
    pub fn bus_bytes(&self) -> u64 {
        self.bus.total()
    }

    /// Bytes in one traffic class.
    pub fn bus_bytes_of(&self, class: Traffic) -> u64 {
        self.bus.bytes(class)
    }

    /// `true` when every logical readout returned 0 (an error-free
    /// `|0_L⟩` memory run).
    pub fn logical_ok(&self) -> bool {
        self.outcomes.iter().all(|&(_, v)| !v)
    }

    /// The readout value of one tile, if it was measured.
    pub fn outcome(&self, tile: usize) -> Option<bool> {
        self.outcomes
            .iter()
            .find(|&&(t, _)| t == tile)
            .map(|&(_, v)| v)
    }
}

/// Sums the two-level decoding counters of a set of MCEs over both
/// stabilizer types, as `(local_decodes, escalations)`.
pub fn decode_totals<'a>(mces: impl IntoIterator<Item = &'a Mce>) -> (u64, u64) {
    use quest_surface::StabKind;
    let mut local = 0;
    let mut escalated = 0;
    for mce in mces {
        for kind in [StabKind::Z, StabKind::X] {
            let s = mce.decode_stats(kind);
            local += s.local_hits;
            escalated += s.escalations;
        }
    }
    (local, escalated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(outcomes: Vec<(usize, bool)>) -> RunReport {
        RunReport {
            delivery: DeliveryMode::QuestMce,
            outcomes,
            bus: BusCounters::new(),
            qecc_cycles: 0,
            local_decodes: 0,
            escalations: 0,
            master: MasterStats::default(),
            decode_cost: CostReport::default(),
            recovery: RecoveryStats::default(),
        }
    }

    #[test]
    fn logical_ok_means_all_zero() {
        assert!(report(vec![(0, false), (1, false)]).logical_ok());
        assert!(!report(vec![(0, false), (1, true)]).logical_ok());
        assert!(report(Vec::new()).logical_ok());
    }

    #[test]
    fn outcome_lookup_by_tile() {
        let r = report(vec![(2, true), (0, false)]);
        assert_eq!(r.outcome(2), Some(true));
        assert_eq!(r.outcome(0), Some(false));
        assert_eq!(r.outcome(1), None);
    }

    #[test]
    fn bus_helpers_read_the_ledger() {
        let mut r = report(Vec::new());
        r.bus.record(Traffic::Syndrome, 10);
        r.bus.record(Traffic::Sync, 2);
        assert_eq!(r.bus_bytes(), 12);
        assert_eq!(r.bus_bytes_of(Traffic::Syndrome), 10);
    }
}
