//! Microcode pipeline: storage designs and the QECC replay engine.
//!
//! §4.4–4.5 of the paper. The microcode memory must deliver one µop to
//! every serviced qubit per instruction slot, in lock step. Three storage
//! designs trade capacity for addressing flexibility:
//!
//! * [`MicrocodeDesign::Ram`] — the baseline: software-buffered QECC
//!   instructions with conventional opcode + address encoding. Capacity
//!   scales `O(N · log₂ N)` per cycle instruction.
//! * [`MicrocodeDesign::Fifo`] — lock-step execution never needs random
//!   access, so address bits are dropped and the memory becomes a FIFO;
//!   capacity scales `O(N)`.
//! * [`MicrocodeDesign::UnitCell`] — the surface code's syndrome circuit
//!   repeats spatially with a small unit cell, so only the unit-cell µops
//!   are stored and a state machine replays them across the tile; capacity
//!   is `O(1)` and the serviced-qubit count becomes bandwidth-limited.
//!
//! [`QeccMicrocode`] is the functional replay engine: it stores the VLIW
//! words of one QECC cycle and streams them forever without any
//! master-controller involvement.

use crate::jj::{MemoryConfig, JJ_CLOCK_HZ, WORD_BITS};
use crate::tech::TechnologyParams;
use quest_isa::{MicroOp, PhysOpcode, VliwWord};
use quest_surface::SyndromeDesign;
use std::fmt;

/// The three microcode-memory designs of §4.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicrocodeDesign {
    /// Opcode + address encoding, random access (baseline).
    Ram,
    /// Address-free FIFO streaming.
    Fifo,
    /// Unit-cell program replayed spatially by a state machine.
    UnitCell,
}

impl MicrocodeDesign {
    /// All designs in the order of Figures 10 and 11.
    pub const ALL: [MicrocodeDesign; 3] = [
        MicrocodeDesign::Ram,
        MicrocodeDesign::Fifo,
        MicrocodeDesign::UnitCell,
    ];

    /// µop width in bits when servicing `n` qubits: the RAM design pays
    /// `log₂ N` address bits per µop on top of the opcode.
    pub fn uop_bits(self, n: usize, opcode_bits: f64) -> f64 {
        match self {
            MicrocodeDesign::Ram => opcode_bits + (n.max(2) as f64).log2(),
            MicrocodeDesign::Fifo | MicrocodeDesign::UnitCell => opcode_bits,
        }
    }

    /// Memory capacity in bits required to hold one QECC cycle for `n`
    /// qubits (Figure 10).
    pub fn capacity_bits(self, n: usize, design: &SyndromeDesign, opcode_bits: f64) -> f64 {
        let per_uop = self.uop_bits(n, opcode_bits);
        match self {
            MicrocodeDesign::Ram | MicrocodeDesign::Fifo => {
                n as f64 * design.cycle_depth as f64 * per_uop
            }
            MicrocodeDesign::UnitCell => design.microcode_uops as f64 * per_uop,
        }
    }

    /// Maximum qubits serviceable under the *capacity* constraint alone,
    /// for a memory of `total_bits`.
    pub fn capacity_limited_qubits(
        self,
        total_bits: usize,
        design: &SyndromeDesign,
        opcode_bits: f64,
    ) -> usize {
        match self {
            MicrocodeDesign::UnitCell => {
                // The unit-cell program either fits or it does not; once it
                // fits, capacity places no limit on serviced qubits.
                if self.capacity_bits(0, design, opcode_bits) <= total_bits as f64 {
                    usize::MAX
                } else {
                    0
                }
            }
            _ => {
                // Largest n with capacity_bits(n) <= total_bits (monotone).
                let mut lo = 0usize;
                let mut hi = total_bits; // capacity ≥ n for any design
                while lo < hi {
                    let mid = (lo + hi).div_ceil(2);
                    if self.capacity_bits(mid, design, opcode_bits) <= total_bits as f64 {
                        lo = mid;
                    } else {
                        hi = mid - 1;
                    }
                }
                lo
            }
        }
    }
}

impl fmt::Display for MicrocodeDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MicrocodeDesign::Ram => "RAM",
            MicrocodeDesign::Fifo => "FIFO",
            MicrocodeDesign::UnitCell => "Unit-cell",
        };
        write!(f, "{s}")
    }
}

/// Maximum qubits serviceable under the *bandwidth* constraint: within the
/// shortest instruction slot the memory must stream one µop per qubit
/// (§4.5). Each channel yields one [`WORD_BITS`]-bit word per
/// `read_latency` JJ cycles.
pub fn bandwidth_limited_qubits(
    config: &MemoryConfig,
    tech: &TechnologyParams,
    opcode_bits: f64,
) -> usize {
    let uops_per_word = (WORD_BITS as f64 / opcode_bits).floor();
    let reads_per_slot_per_channel =
        (tech.min_slot() * JJ_CLOCK_HZ / config.read_latency_cycles() as f64).floor();
    (config.channels() as f64 * uops_per_word * reads_per_slot_per_channel) as usize
}

/// Qubits serviced per MCE for a design/configuration (Figure 11): the
/// lesser of the capacity and bandwidth limits.
pub fn qubits_serviced(
    mc_design: MicrocodeDesign,
    config: &MemoryConfig,
    syndrome: &SyndromeDesign,
    tech: &TechnologyParams,
    opcode_bits: f64,
) -> usize {
    let cap = mc_design.capacity_limited_qubits(config.total_bits(), syndrome, opcode_bits);
    let bw = bandwidth_limited_qubits(config, tech, opcode_bits);
    cap.min(bw)
}

/// The functional QECC replay engine: unit-cell VLIW words streamed
/// cyclically (§4.4, Figure 8b/8c). One `QeccMicrocode` drives one MCE
/// tile; the same `M` words repeat forever.
///
/// # Example
///
/// ```
/// use quest_core::microcode::QeccMicrocode;
/// use quest_isa::{MicroOp, PhysOpcode, VliwWord};
///
/// let words = vec![
///     VliwWord::from_uops(vec![MicroOp::simple(PhysOpcode::PrepZ); 4]),
///     VliwWord::from_uops(vec![MicroOp::simple(PhysOpcode::MeasZ); 4]),
/// ];
/// let mut mc = QeccMicrocode::new(words);
/// assert_eq!(mc.next_word().get(0).opcode(), PhysOpcode::PrepZ);
/// assert_eq!(mc.next_word().get(0).opcode(), PhysOpcode::MeasZ);
/// assert_eq!(mc.next_word().get(0).opcode(), PhysOpcode::PrepZ); // wrapped
/// ```
#[derive(Debug, Clone)]
pub struct QeccMicrocode {
    words: Vec<VliwWord>,
    cursor: usize,
    replays: u64,
}

impl QeccMicrocode {
    /// Loads a QECC cycle program.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty or the words have differing widths.
    pub fn new(words: Vec<VliwWord>) -> QeccMicrocode {
        assert!(
            !words.is_empty(),
            "QECC cycle must contain at least one word"
        );
        let width = words[0].len();
        assert!(
            words.iter().all(|w| w.len() == width),
            "all VLIW words must cover the same tile width"
        );
        QeccMicrocode {
            words,
            cursor: 0,
            replays: 0,
        }
    }

    /// Tile width (qubits covered by each word).
    pub fn tile_width(&self) -> usize {
        self.words[0].len()
    }

    /// Words per QECC cycle (`M` in Figure 8b).
    pub fn cycle_len(&self) -> usize {
        self.words.len()
    }

    /// Position within the current cycle.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// How many complete QECC cycles have been replayed.
    pub fn completed_cycles(&self) -> u64 {
        self.replays
    }

    /// Returns `true` when the next word starts a new QECC cycle.
    pub fn at_cycle_start(&self) -> bool {
        self.cursor == 0
    }

    /// Streams the next lock-step word, wrapping at the cycle boundary —
    /// the continuous replay of §4.4.
    pub fn next_word(&mut self) -> VliwWord {
        let w = self.words[self.cursor].clone();
        self.cursor += 1;
        if self.cursor == self.words.len() {
            self.cursor = 0;
            self.replays += 1;
        }
        w
    }

    /// Peeks at word `i` of the cycle without advancing.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn word(&self, i: usize) -> &VliwWord {
        &self.words[i]
    }

    /// Total storage in bits using address-free FIFO µop encoding.
    pub fn storage_bits(&self) -> usize {
        self.words.len() * self.tile_width() * PhysOpcode::BITS
    }

    /// Replaces the program (the microcode is programmable, §4.4: "the
    /// choice of QECC is flexible").
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`QeccMicrocode::new`].
    pub fn reprogram(&mut self, words: Vec<VliwWord>) {
        *self = QeccMicrocode::new(words);
    }

    /// Builds the idle program (all-NOP single word) for a tile, used when
    /// a tile boots before its QECC program is installed.
    pub fn idle(tile_width: usize) -> QeccMicrocode {
        QeccMicrocode::new(vec![VliwWord::from_uops(vec![MicroOp::nop(); tile_width])])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPCODE_BITS: f64 = PhysOpcode::BITS as f64;

    #[test]
    fn ram_capacity_scales_n_log_n() {
        let steane = SyndromeDesign::STEANE;
        let c100 = MicrocodeDesign::Ram.capacity_bits(100, &steane, OPCODE_BITS);
        let c1000 = MicrocodeDesign::Ram.capacity_bits(1000, &steane, OPCODE_BITS);
        // 10x qubits costs more than 10x capacity (the log factor).
        assert!(c1000 > 10.0 * c100);
        assert!(c1000 < 20.0 * c100);
    }

    #[test]
    fn fifo_capacity_scales_linearly() {
        let steane = SyndromeDesign::STEANE;
        let c100 = MicrocodeDesign::Fifo.capacity_bits(100, &steane, OPCODE_BITS);
        let c1000 = MicrocodeDesign::Fifo.capacity_bits(1000, &steane, OPCODE_BITS);
        assert!((c1000 / c100 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unit_cell_capacity_is_constant() {
        let steane = SyndromeDesign::STEANE;
        let c100 = MicrocodeDesign::UnitCell.capacity_bits(100, &steane, OPCODE_BITS);
        let c1m = MicrocodeDesign::UnitCell.capacity_bits(1_000_000, &steane, OPCODE_BITS);
        assert_eq!(c100, c1m);
        assert_eq!(c100, 148.0 * 4.0);
    }

    #[test]
    fn paper_4kb_capacity_limits() {
        // §4.5: a 4 Kb RAM microcode holds ~48 qubits of QECC instructions;
        // the FIFO design reaches ~120. Our integer model lands within a
        // few qubits of the paper's figures.
        let steane = SyndromeDesign::STEANE;
        let ram = MicrocodeDesign::Ram.capacity_limited_qubits(4096, &steane, OPCODE_BITS);
        let fifo = MicrocodeDesign::Fifo.capacity_limited_qubits(4096, &steane, OPCODE_BITS);
        assert!((40..=55).contains(&ram), "RAM limit {ram} (paper: 48)");
        assert!(
            (105..=125).contains(&fifo),
            "FIFO limit {fifo} (paper: 120)"
        );
        let uc = MicrocodeDesign::UnitCell.capacity_limited_qubits(4096, &steane, OPCODE_BITS);
        assert_eq!(uc, usize::MAX);
    }

    #[test]
    fn fifo_improves_on_ram_3_to_4x() {
        // §4.5: "This improves the scalability by 3 to 4 times".
        let steane = SyndromeDesign::STEANE;
        for bits in [4096usize, 16384, 65536] {
            let ram = MicrocodeDesign::Ram.capacity_limited_qubits(bits, &steane, OPCODE_BITS);
            let fifo = MicrocodeDesign::Fifo.capacity_limited_qubits(bits, &steane, OPCODE_BITS);
            let ratio = fifo as f64 / ram as f64;
            assert!((2.0..=4.5).contains(&ratio), "ratio {ratio} at {bits} bits");
        }
    }

    #[test]
    fn bandwidth_super_linear_in_channels() {
        // §4.5: four channels deliver 6× the one-channel bandwidth.
        let tech = TechnologyParams::PROJECTED_F; // 10 ns slot
        let one = bandwidth_limited_qubits(&MemoryConfig::new(1, 4096), &tech, OPCODE_BITS);
        let four = bandwidth_limited_qubits(&MemoryConfig::new(4, 1024), &tech, OPCODE_BITS);
        assert_eq!(one, 264); // 8 µops/word × ⌊100/3⌋ reads
        assert_eq!(four, 1600);
        assert!((four as f64 / one as f64) > 5.0);
    }

    #[test]
    fn serviced_qubits_combined_limits() {
        // Unit-cell + 4-channel services far more qubits than RAM.
        let tech = TechnologyParams::PROJECTED_F;
        let cfg = MemoryConfig::new(4, 1024);
        let steane = SyndromeDesign::STEANE;
        let uc = qubits_serviced(MicrocodeDesign::UnitCell, &cfg, &steane, &tech, OPCODE_BITS);
        let ram = qubits_serviced(MicrocodeDesign::Ram, &cfg, &steane, &tech, OPCODE_BITS);
        assert!(uc >= 30 * ram, "unit-cell {uc} vs RAM {ram}");
    }

    #[test]
    fn replay_engine_wraps_and_counts() {
        let words = vec![
            VliwWord::from_uops(vec![MicroOp::simple(PhysOpcode::PrepZ); 2]),
            VliwWord::from_uops(vec![MicroOp::simple(PhysOpcode::H); 2]),
            VliwWord::from_uops(vec![MicroOp::simple(PhysOpcode::MeasZ); 2]),
        ];
        let mut mc = QeccMicrocode::new(words);
        assert_eq!(mc.cycle_len(), 3);
        for _ in 0..7 {
            mc.next_word();
        }
        assert_eq!(mc.completed_cycles(), 2);
        assert_eq!(mc.cursor(), 1);
        assert!(!mc.at_cycle_start());
    }

    #[test]
    fn storage_accounting() {
        let mc = QeccMicrocode::idle(10);
        assert_eq!(mc.storage_bits(), 10 * 4);
        assert_eq!(mc.tile_width(), 10);
    }

    #[test]
    #[should_panic(expected = "same tile width")]
    fn mismatched_word_widths_panic() {
        QeccMicrocode::new(vec![VliwWord::nop(2), VliwWord::nop(3)]);
    }
}
