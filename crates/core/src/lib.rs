//! QuEST: a quantum control-processor architecture with hardware-managed
//! error correction.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Tannu et al., MICRO-50 2017): a control processor organized as an array
//! of **Micro-coded Control Engines** (MCEs) that replay the quantum
//! error-correction instruction stream from a tiny local microcode instead
//! of streaming it from software — reducing the global instruction
//! bandwidth by five orders of magnitude, and by eight with the logical
//! instruction cache.
//!
//! The crate contains both:
//!
//! * **functional simulation** — [`Mce`], [`MasterController`] and
//!   [`QuestSystem`] actually drive a noisy, stabilizer-simulated
//!   surface-code tile through syndrome extraction, two-level decoding and
//!   logical readout, with every global-bus byte accounted;
//! * **microarchitecture models** — [`microcode`], [`jj`] and
//!   [`throughput`] reproduce the capacity/bandwidth trade-offs of the
//!   paper's Figures 10–11 & 16 and Table 2.
//!
//! # Example
//!
//! ```
//! use quest_core::{DeliveryMode, QuestSystem};
//! use quest_isa::LogicalProgram;
//! use quest_stabilizer::{SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut system = QuestSystem::new(3, 1e-3)?;
//! let run = system.run_memory_workload(
//!     20,
//!     &LogicalProgram::new(),
//!     0,
//!     DeliveryMode::QuestMce,
//!     &mut rng,
//! );
//! assert_eq!(run.qecc_cycles, 20);
//! assert!(run.logical_ok());
//! # Ok::<(), quest_core::BuildError>(())
//! ```

#![forbid(unsafe_code)]
// The panic-free contract (PR 2/3), enforced three ways: quest-lint's
// QL01 rule, this clippy deny, and the runtime's catch_unwind
// containment as a last resort. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bus;
pub mod decoder_pipeline;
pub mod delivery;
pub mod error;
pub mod execution_unit;
pub mod fault;
pub mod geometry;
pub mod instruction_pipeline;
pub mod jj;
pub mod mask;
pub mod master;
pub mod mce;
pub mod microcode;
pub mod multi_tile;
pub mod network;
pub mod primeline;
pub mod program_gen;
pub mod report;
pub mod serve;
pub mod system;
pub mod tech;
pub mod throughput;
pub mod tile;
pub mod timing;

pub use bus::{BusCounters, Traffic};
pub use decoder_pipeline::{DecodeStats, DecoderPipeline, Escalation};
// The pluggable decode-backend layer lives in quest-surface (the
// dependency points that way); re-exported here so the runtime, server
// and CLI can name it from the architecture crate.
pub use delivery::{DeliveryEngine, DeliveryMode};
pub use error::{BuildError, CnotError, ReplayError};
pub use execution_unit::{ExecutionStats, ExecutionUnit, FireResult};
pub use fault::{Delivery, FaultPlan, FaultSession, LinkFailure, RecoveryStats, ShardPanicPlan};
pub use geometry::TileGeometry;
pub use instruction_pipeline::{FetchOutcome, InstructionPipeline, PipelineStats};
pub use jj::MemoryConfig;
pub use mask::MaskTable;
pub use master::{MasterController, MasterStats};
pub use mce::{Mce, Readout};
pub use microcode::{MicrocodeDesign, QeccMicrocode};
pub use multi_tile::{LogicalBasis, MultiTileSystem};
pub use network::{Network, Packet, PacketKind};
pub use primeline::PrimelineResources;
pub use quest_surface::decoder::{CostReport, DecoderBackend, DecoderChoice};
pub use report::{decode_totals, RunReport};
pub use serve::{JobId, LatencySummary, ServeReport, TenantId, TenantServeStats};
pub use system::{QuestSystem, MCE_IBUF_BYTES};
pub use tech::TechnologyParams;
pub use throughput::{optimal_config, table2, Table2Row};
pub use timing::SlotTiming;
