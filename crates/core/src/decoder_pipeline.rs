//! MCE error-decoder pipeline: the local half of the two-level decoding
//! scheme (§4.2).
//!
//! Each MCE collects the syndrome measurements its execution unit
//! produces, converts them to detection events, and runs a *local* lookup
//! decode that resolves isolated single-qubit errors immediately
//! (accumulating the correction into a Pauli frame — Appendix A.2: errors
//! are logged and corrected before measurement, not by executing extra
//! quantum instructions). Anything the lookup table cannot explain is
//! escalated to the master controller's global decoder, costing upstream
//! syndrome bandwidth.

use quest_surface::decoder::{Correction, CostReport, DecoderBackend, LutBackend};
use quest_surface::{DecodingGraph, NodeId, RotatedLattice, StabKind};
use std::collections::BTreeSet;

/// Statistics for the local decode stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Rounds whose events were fully resolved locally.
    pub local_hits: u64,
    /// Rounds escalated to the global decoder.
    pub escalations: u64,
    /// Rounds with no detection events at all.
    pub quiet_rounds: u64,
    /// Data-qubit corrections applied to the Pauli frame locally.
    pub local_corrections: u64,
}

/// Why a syndrome-reference update was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferenceError {
    /// The reference is not yet established (no projective round has run
    /// since the last reset).
    NotSettled,
    /// The partner's bits have a different width than this reference.
    WidthMismatch {
        /// Checks in this pipeline's reference.
        expected: usize,
        /// Checks in the partner's bits.
        got: usize,
    },
}

impl std::fmt::Display for ReferenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReferenceError::NotSettled => {
                write!(f, "syndrome reference not settled (run a QECC cycle first)")
            }
            ReferenceError::WidthMismatch { expected, got } => {
                write!(f, "syndrome reference width mismatch: {expected} vs {got}")
            }
        }
    }
}

impl std::error::Error for ReferenceError {}

/// A round of detection events escalated to the master controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Escalation {
    /// Round index (monotonically increasing since reset).
    pub round: usize,
    /// Detection events in the single-round graph's node numbering.
    pub events: Vec<NodeId>,
}

/// How the first syndrome round after (re)initialization is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reference {
    /// The prepared state is a known +1 eigenstate of every check of this
    /// type (e.g. Z checks after `|0…0⟩`): the reference is all-zero and
    /// the first round already carries detection events.
    Deterministic,
    /// The checks of this type are randomly projected by the first round
    /// (e.g. X checks after `|0…0⟩`): the first round *establishes* the
    /// reference and produces no events.
    FirstRound,
}

/// The per-MCE decoder pipeline for one stabilizer type.
#[derive(Debug, Clone)]
pub struct DecoderPipeline {
    kind: StabKind,
    /// Single-round decoding graph driving the local backend.
    graph: DecodingGraph,
    /// The local decode engine, dispatched through the pluggable
    /// [`DecoderBackend`] trait (a [`LutBackend`]; its
    /// [`DecoderBackend::try_decode`] escalates on patterns outside the
    /// table, which is exactly the MCE-local contract).
    local: Box<dyn DecoderBackend>,
    /// Previous round's syndrome bits (for detection-event differencing);
    /// `None` while waiting for a first-round reference.
    previous: Option<Vec<bool>>,
    /// Accumulated Pauli-frame flips on data qubits.
    frame: BTreeSet<usize>,
    round: usize,
    stats: DecodeStats,
    escalations: Vec<Escalation>,
}

impl DecoderPipeline {
    /// Builds the pipeline for checks of `kind` on `lattice`, assuming a
    /// `|0…0⟩`-booted substrate: Z checks start deterministic, X checks
    /// take their reference from the first projective round.
    pub fn new(lattice: &RotatedLattice, kind: StabKind) -> DecoderPipeline {
        let reference = match kind {
            StabKind::Z => Reference::Deterministic,
            StabKind::X => Reference::FirstRound,
        };
        DecoderPipeline::with_reference(lattice, kind, reference)
    }

    /// Builds the pipeline with an explicit first-round interpretation.
    pub fn with_reference(
        lattice: &RotatedLattice,
        kind: StabKind,
        reference: Reference,
    ) -> DecoderPipeline {
        let graph = DecodingGraph::new(lattice, kind, 1);
        let local: Box<dyn DecoderBackend> = Box::new(LutBackend::new(&graph));
        let previous = match reference {
            Reference::Deterministic => Some(vec![false; graph.num_checks()]),
            Reference::FirstRound => None,
        };
        DecoderPipeline {
            kind,
            graph,
            local,
            previous,
            frame: BTreeSet::new(),
            round: 0,
            stats: DecodeStats::default(),
            escalations: Vec::new(),
        }
    }

    /// The current syndrome reference (last round's bits), or `None`
    /// before the first projective round.
    pub fn reference_bits(&self) -> Option<&[bool]> {
        self.previous.as_deref()
    }

    /// XORs another tile's syndrome values into this pipeline's reference.
    ///
    /// A transversal CNOT conjugates the target tile's Z checks into the
    /// product of both tiles' Z checks (and the control's X checks into
    /// the product of both X checks), so the affected pipeline's expected
    /// syndrome shifts by the partner tile's current values. Without this
    /// update every subsequent round would appear to be full of detection
    /// events.
    ///
    /// # Errors
    ///
    /// [`ReferenceError`] if this reference is not yet established or the
    /// widths differ; the reference is untouched on error.
    pub fn xor_reference(&mut self, partner_bits: &[bool]) -> Result<(), ReferenceError> {
        let prev = self.previous.as_mut().ok_or(ReferenceError::NotSettled)?;
        if prev.len() != partner_bits.len() {
            return Err(ReferenceError::WidthMismatch {
                expected: prev.len(),
                got: partner_bits.len(),
            });
        }
        for (a, &b) in prev.iter_mut().zip(partner_bits) {
            *a ^= b;
        }
        Ok(())
    }

    /// Re-arms the pipeline after a logical (re)preparation: clears the
    /// Pauli frame and resets the reference.
    pub fn reset_reference(&mut self, reference: Reference) {
        self.previous = match reference {
            Reference::Deterministic => Some(vec![false; self.graph.num_checks()]),
            Reference::FirstRound => None,
        };
        self.frame.clear();
        self.escalations.clear();
    }

    /// Stabilizer type handled by this pipeline.
    pub fn kind(&self) -> StabKind {
        self.kind
    }

    /// Statistics so far.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Accumulated cost counters of the local decode backend: one
    /// primary decode per LUT lookup, one fallback count per escalated
    /// miss, and the LUT bank's modeled JJ footprint.
    pub fn local_cost(&self) -> CostReport {
        self.local.cost()
    }

    /// The accumulated Pauli frame: data qubits whose readout must be
    /// flipped before interpretation.
    pub fn frame(&self) -> &BTreeSet<usize> {
        &self.frame
    }

    /// Escalated rounds awaiting the global decoder.
    pub fn pending_escalations(&self) -> &[Escalation] {
        &self.escalations
    }

    /// Drains the escalation queue (the master controller fetched them).
    pub fn take_escalations(&mut self) -> Vec<Escalation> {
        std::mem::take(&mut self.escalations)
    }

    /// Feeds one round of syndrome bits (plaquette order for this type).
    ///
    /// Detection events are the bits that changed since the previous
    /// round. If the LUT explains them as isolated single faults, the
    /// correction joins the local Pauli frame; otherwise the round is
    /// queued for escalation.
    ///
    /// # Panics
    ///
    /// Panics if `bits` has the wrong length.
    pub fn feed_round(&mut self, bits: &[bool]) {
        assert_eq!(
            bits.len(),
            self.graph.num_checks(),
            "syndrome width mismatch"
        );
        let events: Vec<NodeId> = match &self.previous {
            // First projective round: establish the reference, no events.
            None => {
                self.previous = Some(bits.to_vec());
                self.stats.quiet_rounds += 1;
                self.round += 1;
                return;
            }
            Some(prev) => bits
                .iter()
                .zip(prev)
                .enumerate()
                .filter(|(_, (&now, &before))| now != before)
                .map(|(c, _)| self.graph.node(0, c))
                .collect(),
        };
        self.previous = Some(bits.to_vec());

        if events.is_empty() {
            self.stats.quiet_rounds += 1;
        } else {
            match self.local.try_decode(&self.graph, &events) {
                Some(Correction { data_flips, .. }) => {
                    self.stats.local_hits += 1;
                    self.stats.local_corrections += data_flips.len() as u64;
                    for q in data_flips {
                        // XOR into the frame.
                        if !self.frame.insert(q) {
                            self.frame.remove(&q);
                        }
                    }
                }
                None => {
                    self.stats.escalations += 1;
                    self.escalations.push(Escalation {
                        round: self.round,
                        events,
                    });
                }
            }
        }
        self.round += 1;
    }

    /// Merges a correction computed by the global decoder into the frame.
    pub fn apply_global_correction(&mut self, data_flips: impl IntoIterator<Item = usize>) {
        for q in data_flips {
            if !self.frame.insert(q) {
                self.frame.remove(&q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z_pipeline(d: usize) -> (RotatedLattice, DecoderPipeline) {
        let lat = RotatedLattice::new(d);
        let p = DecoderPipeline::new(&lat, StabKind::Z);
        (lat, p)
    }

    #[test]
    fn quiet_rounds_are_counted() {
        let (lat, mut p) = z_pipeline(3);
        let zeros = vec![false; lat.plaquettes_of(StabKind::Z).count()];
        for _ in 0..5 {
            p.feed_round(&zeros);
        }
        assert_eq!(p.stats().quiet_rounds, 5);
        assert!(p.frame().is_empty());
        assert!(p.pending_escalations().is_empty());
    }

    #[test]
    fn isolated_error_is_fixed_locally() {
        let (lat, mut p) = z_pipeline(3);
        let zc = lat.plaquettes_of(StabKind::Z).count();
        // A bulk data qubit flips its two Z checks.
        let victim = lat.data_index(1, 1);
        let owners: Vec<usize> = lat
            .plaquettes_of(StabKind::Z)
            .enumerate()
            .filter(|(_, pl)| pl.data.contains(&victim))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(owners.len(), 2);
        let mut bits = vec![false; zc];
        for &o in &owners {
            bits[o] = true;
        }
        p.feed_round(&bits);
        assert_eq!(p.stats().local_hits, 1);
        assert_eq!(p.stats().escalations, 0);
        // The frame holds exactly the victim.
        assert_eq!(p.frame().iter().copied().collect::<Vec<_>>(), vec![victim]);
        // The syndrome persists next round (error not physically removed);
        // no *new* events, so the round is quiet.
        p.feed_round(&bits);
        assert_eq!(p.stats().quiet_rounds, 1);
    }

    #[test]
    fn complex_pattern_escalates() {
        let (lat, mut p) = z_pipeline(5);
        let zc = lat.plaquettes_of(StabKind::Z).count();
        // Fire a non-adjacent pattern that no single fault explains: pick
        // three pairwise-distant bulk checks.
        let mut bits = vec![false; zc];
        bits[0] = true;
        bits[zc / 2] = true;
        bits[zc - 1] = true;
        p.feed_round(&bits);
        let escalated = p.stats().escalations == 1;
        let local = p.stats().local_hits == 1;
        assert!(escalated || local);
        if escalated {
            let esc = p.take_escalations();
            assert_eq!(esc.len(), 1);
            assert_eq!(esc[0].events.len(), 3);
            assert!(p.pending_escalations().is_empty());
        }
    }

    #[test]
    fn counters_sum_to_rounds_fed() {
        // ISSUE 7 satellite: local_hits + escalations + quiet_rounds must
        // account for every round the pipeline processed, for both
        // first-round interpretations.
        for reference in [Reference::Deterministic, Reference::FirstRound] {
            let lat = RotatedLattice::new(5);
            let mut p = DecoderPipeline::with_reference(&lat, StabKind::Z, reference);
            let zc = lat.plaquettes_of(StabKind::Z).count();
            let mut fed = 0u64;
            for round in 0..12 {
                let mut bits = vec![false; zc];
                match round % 3 {
                    0 => {}                       // quiet
                    1 => bits[round % zc] = true, // isolated-ish
                    _ => {
                        // Scattered pattern likely outside the LUT.
                        bits[0] = true;
                        bits[zc / 2] = true;
                        bits[zc - 1] = true;
                    }
                }
                p.feed_round(&bits);
                fed += 1;
            }
            let s = p.stats();
            assert_eq!(
                s.local_hits + s.escalations + s.quiet_rounds,
                fed,
                "round accounting leaked ({reference:?})"
            );
        }
    }

    #[test]
    fn escalation_accounting_matches_local_backend_cost() {
        // Every non-quiet round is exactly one lookup on the local
        // backend, and every escalation is exactly one recorded miss.
        let lat = RotatedLattice::new(5);
        let mut p = DecoderPipeline::new(&lat, StabKind::Z);
        let zc = lat.plaquettes_of(StabKind::Z).count();
        for round in 0..10 {
            let mut bits = vec![false; zc];
            if round % 2 == 0 {
                bits[0] = true;
                bits[zc / 2] = true;
                bits[zc - 1] = true;
            }
            p.feed_round(&bits);
        }
        let s = p.stats();
        let cost = p.local_cost();
        assert_eq!(cost.decodes, s.local_hits + s.escalations);
        assert_eq!(cost.fallback_decodes, s.escalations);
        assert!(cost.jj_count > 0, "the LUT bank has a JJ footprint");
    }

    #[test]
    fn escalated_corrections_merge_idempotently() {
        // Merging the global decoder's correction for an escalated round
        // is XOR-folding: an empty correction is a no-op, and re-merging
        // the same flips restores the prior frame (so a retransmitted
        // pair of identical corrections nets out instead of compounding).
        let (lat, mut p) = z_pipeline(5);
        let zc = lat.plaquettes_of(StabKind::Z).count();
        let mut bits = vec![false; zc];
        bits[0] = true;
        bits[zc / 2] = true;
        bits[zc - 1] = true;
        p.feed_round(&bits);
        let flips: Vec<usize> = vec![lat.data_index(0, 0), lat.data_index(2, 2)];
        let before = p.frame().clone();
        p.apply_global_correction([]);
        assert_eq!(*p.frame(), before, "empty correction must be a no-op");
        p.apply_global_correction(flips.iter().copied());
        p.apply_global_correction(flips.iter().copied());
        assert_eq!(*p.frame(), before, "double merge must cancel exactly");
    }

    #[test]
    fn frame_xor_cancels_double_corrections() {
        let (lat, mut p) = z_pipeline(3);
        let q = lat.data_index(0, 0);
        p.apply_global_correction([q]);
        assert!(p.frame().contains(&q));
        p.apply_global_correction([q]);
        assert!(!p.frame().contains(&q));
    }
}
