//! Prime-line multiplexing resource model (§2.3, Figure 4).
//!
//! Existing superconducting systems give every qubit a dedicated
//! arbitrary waveform generator (AWG); the Hornibrook et al. prime-line
//! architecture the paper adopts instead shares a small bank of AWGs — one
//! per distinct waveform in the instruction alphabet — across a microwave
//! switch matrix. A physical instruction is then just the select code
//! routing a prime line to a qubit. This module quantifies that trade:
//! AWG counts, select-bus width, and switch counts, versus the
//! point-to-point baseline.

use quest_isa::PhysOpcode;

/// Number of distinct waveforms in the physical instruction alphabet:
/// one prime line per non-idle opcode (the idle slot routes nothing).
pub fn waveform_alphabet() -> usize {
    PhysOpcode::ALL.len() - 1
}

/// Resource summary of one quantum execution unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimelineResources {
    /// Qubits served by the unit.
    pub qubits: usize,
    /// Arbitrary waveform generators (shared prime lines).
    pub awgs: usize,
    /// Microwave switches (one per qubit × prime line crossing).
    pub switches: usize,
    /// Select-bus bits per qubit (`⌈log₂(alphabet + 1)⌉`).
    pub select_bits_per_qubit: usize,
}

impl PrimelineResources {
    /// Sizes a prime-line execution unit for `qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is zero.
    pub fn for_qubits(qubits: usize) -> PrimelineResources {
        assert!(qubits > 0, "unit must serve at least one qubit");
        let alphabet = waveform_alphabet();
        let select_bits_per_qubit =
            usize::BITS as usize - (alphabet + 1).next_power_of_two().leading_zeros() as usize - 1;
        PrimelineResources {
            qubits,
            awgs: alphabet,
            switches: qubits * alphabet,
            select_bits_per_qubit,
        }
    }

    /// AWGs the point-to-point baseline would need for the same qubits
    /// (one per qubit).
    pub fn point_to_point_awgs(&self) -> usize {
        self.qubits
    }

    /// AWG savings factor over point-to-point.
    pub fn awg_savings(&self) -> f64 {
        self.point_to_point_awgs() as f64 / self.awgs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_covers_every_non_idle_opcode() {
        assert_eq!(waveform_alphabet(), 12);
    }

    #[test]
    fn select_bits_fit_a_nibble() {
        // The µop encoding reserves a 4-bit opcode; the select bus must
        // agree.
        let r = PrimelineResources::for_qubits(100);
        assert!(r.select_bits_per_qubit <= 4, "{}", r.select_bits_per_qubit);
    }

    #[test]
    fn awg_count_is_constant_in_qubits() {
        let small = PrimelineResources::for_qubits(17);
        let large = PrimelineResources::for_qubits(100_000);
        assert_eq!(small.awgs, large.awgs);
        assert!(large.awg_savings() > 8_000.0);
    }

    #[test]
    fn switch_matrix_scales_linearly() {
        let a = PrimelineResources::for_qubits(100);
        let b = PrimelineResources::for_qubits(200);
        assert_eq!(b.switches, 2 * a.switches);
    }
}
