//! Shared tile-level operations.
//!
//! [`QuestSystem`](crate::QuestSystem) (one tile),
//! [`MultiTileSystem`](crate::MultiTileSystem) (an MCE array over one
//! substrate) and the `quest-runtime` shard workers all drive tiles
//! through the same sequence — noise layer, microcode QECC cycle,
//! escalation service, transversal logical gates, destructive readout.
//! This module is that single code path, so the concurrent runtime and
//! the single-threaded reference systems cannot drift apart.
//!
//! Every helper that consumes randomness takes the caller's `&mut R` and
//! draws in a fixed order (noise sweep over data qubits, then the
//! microcode cycle's measurements). Combined with [`tile_seed`], which
//! derives one independent stream per tile from a master seed, a
//! simulation's outcome depends only on the master seed and the per-tile
//! operation sequence — not on how tiles are grouped onto threads.

use crate::error::CnotError;
use crate::master::MasterController;
use crate::mce::Mce;
use quest_isa::{LogicalInstr, LogicalQubit};
use quest_stabilizer::{NoiseChannel, PauliChannel, Tableau};
use quest_surface::StabKind;
use rand::Rng;

/// Logical basis for tile preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicalBasis {
    /// `|0_L⟩` (all data qubits `|0⟩`).
    Zero,
    /// `|+_L⟩` (all data qubits `|+⟩`).
    Plus,
}

/// Derives the RNG seed of tile `tile` from a run's master seed.
///
/// The derivation is a SplitMix64-style avalanche of the pair, giving
/// each tile a statistically independent stream. Because the seed
/// depends only on `(master_seed, tile)`, outcomes are invariant under
/// any assignment of tiles to shards or threads.
pub fn tile_seed(master_seed: u64, tile: u64) -> u64 {
    let mut z = master_seed ^ tile.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Applies one round of data-qubit noise to an MCE's tile: one channel
/// sample per data qubit, in tile-local qubit order.
pub fn noise_layer<R: Rng + ?Sized>(
    mce: &Mce,
    noise: &PauliChannel,
    substrate: &mut Tableau,
    rng: &mut R,
) {
    for q in 0..mce.lattice().num_data() {
        let e = noise.sample(rng);
        substrate.pauli(mce.substrate_index(q), e);
    }
}

/// Prepares a tile's logical qubit (bootstrap: direct transverse reset of
/// the data qubits, then QECC projection on the next cycle).
pub fn prep_logical<R: Rng + ?Sized>(
    mce: &mut Mce,
    basis: LogicalBasis,
    substrate: &mut Tableau,
    rng: &mut R,
) {
    let off = mce.substrate_index(0);
    for q in 0..mce.lattice().num_data() {
        substrate.reset(off + q, rng);
        if basis == LogicalBasis::Plus {
            substrate.h(off + q);
        }
    }
    mce.notify_prepared(match basis {
        LogicalBasis::Zero => StabKind::Z,
        LogicalBasis::Plus => StabKind::X,
    });
}

/// Runs one full microcode QECC cycle on a tile and services any
/// escalations through the master controller (the single-threaded
/// escalation path; the runtime ships escalations over channels instead
/// and resolves them in its decode pool).
pub fn qecc_cycle_serviced<R: Rng + ?Sized>(
    mce: &mut Mce,
    master: &mut MasterController,
    substrate: &mut Tableau,
    rng: &mut R,
) {
    mce.run_qecc_cycle(substrate, rng);
    master.service_escalations(mce);
}

/// The physics and frame bookkeeping of a transversal logical CNOT
/// between two same-distance tiles: physical CNOTs between corresponding
/// data qubits, syndrome-reference propagation, error-decoder Pauli-frame
/// propagation, and logical-frame propagation.
///
/// Master-controller coordination (the two sync tokens) is *not* included
/// — callers account it on their own bus path. Consumes no randomness.
///
/// # Errors
///
/// [`CnotError`] if the tile indices coincide or are out of range, or if
/// either tile has not yet run a QECC cycle (no syndrome reference
/// exists). Every precondition is checked before the substrate or any
/// frame is touched, so a rejected CNOT leaves the system unchanged.
pub fn transversal_cnot_physics(
    mces: &mut [Mce],
    substrate: &mut Tableau,
    control: usize,
    target: usize,
) -> Result<(), CnotError> {
    let tiles = mces.len();
    for tile in [control, target] {
        if tile >= tiles {
            return Err(CnotError::TileOutOfRange { tile, tiles });
        }
    }
    if control == target {
        return Err(CnotError::SameTile { tile: control });
    }
    let ref_width = |tile: usize, kind: StabKind| {
        mces[tile]
            .decoder(kind)
            .reference_bits()
            .map(<[bool]>::len)
            .ok_or(CnotError::ReferenceNotSettled { tile })
    };
    for kind in [StabKind::Z, StabKind::X] {
        let expected = ref_width(target, kind)?;
        let got = ref_width(control, kind)?;
        if expected != got {
            return Err(CnotError::ReferenceWidthMismatch { expected, got });
        }
    }

    let c_off = mces[control].substrate_index(0);
    let t_off = mces[target].substrate_index(0);
    for q in 0..mces[control].lattice().num_data() {
        substrate.cnot(c_off + q, t_off + q);
    }

    // Propagate the syndrome references: the CNOT conjugates the
    // target's Z checks into (control Z check) x (target Z check) and
    // the control's X checks into the product of both X checks, so the
    // expected syndromes shift by the partner's current values. The
    // preconditions above guarantee these updates cannot fail.
    let settled = |tile: usize| CnotError::ReferenceNotSettled { tile };
    let c_z_ref: Vec<bool> = mces[control]
        .decoder(StabKind::Z)
        .reference_bits()
        .ok_or(settled(control))?
        .to_vec();
    mces[target]
        .decoder_mut(StabKind::Z)
        .xor_reference(&c_z_ref)
        .map_err(|_| settled(target))?;
    let t_x_ref: Vec<bool> = mces[target]
        .decoder(StabKind::X)
        .reference_bits()
        .ok_or(settled(target))?
        .to_vec();
    mces[control]
        .decoder_mut(StabKind::X)
        .xor_reference(&t_x_ref)
        .map_err(|_| settled(control))?;

    // Propagate the error-decoder Pauli frames: CNOT maps X_c -> X_c X_t
    // and Z_t -> Z_c Z_t. The Z-decoder frame holds pending X
    // corrections; the X-decoder frame holds pending Z corrections.
    let x_frame: Vec<usize> = mces[control]
        .decoder(StabKind::Z)
        .frame()
        .iter()
        .copied()
        .collect();
    mces[target]
        .decoder_mut(StabKind::Z)
        .apply_global_correction(x_frame);
    let z_frame: Vec<usize> = mces[target]
        .decoder(StabKind::X)
        .frame()
        .iter()
        .copied()
        .collect();
    mces[control]
        .decoder_mut(StabKind::X)
        .apply_global_correction(z_frame);

    // Propagate logical frames the same way.
    let (cx, _cz) = mces[control].logical_frame();
    let (_tx, tz) = mces[target].logical_frame();
    if cx {
        mces[target].execute_logical(LogicalInstr::X(LogicalQubit(0)));
    }
    if tz {
        mces[control].execute_logical(LogicalInstr::Z(LogicalQubit(0)));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_seeds_are_distinct_and_stable() {
        let a = tile_seed(42, 0);
        let b = tile_seed(42, 1);
        let c = tile_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, tile_seed(42, 0), "derivation must be pure");
    }

    #[test]
    fn tile_seed_spreads_low_entropy_inputs() {
        // Consecutive master seeds and tiles must not produce clustered
        // seeds (the point of the avalanche mix).
        let mut seen = std::collections::BTreeSet::new();
        for master in 0..16u64 {
            for tile in 0..16u64 {
                seen.insert(tile_seed(master, tile));
            }
        }
        assert_eq!(seen.len(), 256, "collision in 256 derived seeds");
    }
}
