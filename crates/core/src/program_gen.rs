//! Microcode program generation: compiling a surface-code QECC cycle into
//! lock-step VLIW words.
//!
//! The generated program is the content of the QECC-µop table (Figure 8c):
//! six words per cycle — ancilla preparation, four interleaved CNOT
//! layers, ancilla measurement — with every CNOT encoded as a
//! ctrl/tgt µop pair carrying coupling directions. Executing the program
//! through the [`crate::execution_unit::ExecutionUnit`] reproduces the
//! reference syndrome circuit of `quest_surface` gate for gate (verified
//! in tests).

use crate::geometry::TileGeometry;
use quest_isa::{Direction, MicroOp, PhysOpcode, VliwWord};
use quest_surface::{schedule, RotatedLattice, StabKind};

/// Number of VLIW words in one generated QECC cycle.
pub const CYCLE_WORDS: usize = 6;

/// Index of the measurement word within the cycle.
pub const MEASURE_WORD: usize = CYCLE_WORDS - 1;

/// Compiles one QECC cycle for `lattice` into VLIW words.
///
/// The word layout is:
/// * word 0 — `PrepX`/`PrepZ` on every ancilla;
/// * words 1–4 — CNOT layers in the collision-free interleaving of
///   [`schedule::corner_for_layer`];
/// * word 5 — `MeasX`/`MeasZ` on every ancilla.
pub fn qecc_cycle_words(lattice: &RotatedLattice, geometry: &TileGeometry) -> Vec<VliwWord> {
    let n = lattice.num_qubits();
    let mut words = vec![VliwWord::nop(n); CYCLE_WORDS];

    for p in lattice.plaquettes() {
        let (prep, meas) = match p.kind {
            StabKind::X => (PhysOpcode::PrepX, PhysOpcode::MeasX),
            StabKind::Z => (PhysOpcode::PrepZ, PhysOpcode::MeasZ),
        };
        words[0].set(p.ancilla, MicroOp::simple(prep));
        words[MEASURE_WORD].set(p.ancilla, MicroOp::simple(meas));

        let corners = lattice.corners(p);
        for layer in 0..4 {
            let corner = schedule::corner_for_layer(p.kind, layer);
            let Some(data) = corners[corner] else {
                continue;
            };
            // Corner order NW, NE, SW, SE matches `Direction::ALL`.
            let dir = Direction::ALL[corner];
            debug_assert_eq!(geometry.neighbor(p.ancilla, dir), Some(data));
            let word = &mut words[1 + layer];
            match p.kind {
                // X syndrome: ancilla is the control.
                StabKind::X => {
                    word.set(p.ancilla, MicroOp::cnot_half(PhysOpcode::CnotCtrl, dir));
                    word.set(
                        data,
                        MicroOp::cnot_half(PhysOpcode::CnotTgt, dir.opposite()),
                    );
                }
                // Z syndrome: data is the control.
                StabKind::Z => {
                    word.set(
                        data,
                        MicroOp::cnot_half(PhysOpcode::CnotCtrl, dir.opposite()),
                    );
                    word.set(p.ancilla, MicroOp::cnot_half(PhysOpcode::CnotTgt, dir));
                }
            }
        }
    }
    words
}

/// The ancilla slots measured by the cycle's measurement word, split by
/// stabilizer type in plaquette order — the wiring between the execution
/// unit's measurement outputs and the error-decoder pipeline.
pub fn measured_ancillas(lattice: &RotatedLattice, kind: StabKind) -> Vec<usize> {
    lattice.plaquettes_of(kind).map(|p| p.ancilla).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_stabilizer::{SeedableRng, StdRng, Tableau};
    use quest_surface::SyndromeCircuit;

    #[test]
    fn generated_cycle_has_six_words() {
        let lat = RotatedLattice::new(3);
        let geo = TileGeometry::from_lattice(&lat);
        let words = qecc_cycle_words(&lat, &geo);
        assert_eq!(words.len(), CYCLE_WORDS);
        for w in &words {
            assert_eq!(w.len(), lat.num_qubits());
        }
    }

    #[test]
    fn every_ancilla_prepped_and_measured_once() {
        let lat = RotatedLattice::new(5);
        let geo = TileGeometry::from_lattice(&lat);
        let words = qecc_cycle_words(&lat, &geo);
        assert_eq!(words[0].active_count(), lat.num_ancillas());
        assert_eq!(words[MEASURE_WORD].active_count(), lat.num_ancillas());
    }

    #[test]
    fn cnot_layers_pair_up_exactly() {
        let lat = RotatedLattice::new(5);
        let geo = TileGeometry::from_lattice(&lat);
        let words = qecc_cycle_words(&lat, &geo);
        #[allow(clippy::needless_range_loop)] // layer is the word index
        for layer in 1..5 {
            let mut ctrls = 0;
            let mut tgts = 0;
            for (_, u) in words[layer].iter() {
                match u.opcode() {
                    PhysOpcode::CnotCtrl => ctrls += 1,
                    PhysOpcode::CnotTgt => tgts += 1,
                    PhysOpcode::Nop => {}
                    other => panic!("unexpected µop {other} in CNOT layer"),
                }
            }
            assert_eq!(ctrls, tgts, "layer {layer}");
            assert!(ctrls > 0, "layer {layer} is empty");
        }
    }

    /// The microcode program, executed through the execution unit, must
    /// produce identical syndrome statistics to the reference circuit: on
    /// the |0…0⟩ state all Z checks read 0, and injected single errors
    /// flip exactly the same checks.
    #[test]
    fn microcode_reproduces_reference_syndrome_circuit() {
        use crate::execution_unit::ExecutionUnit;
        let lat = RotatedLattice::new(3);
        let geo = TileGeometry::from_lattice(&lat);
        let words = qecc_cycle_words(&lat, &geo);
        let sc = SyndromeCircuit::new(&lat);

        for victim in 0..lat.num_data() {
            // Reference: project, inject X, measure syndrome.
            let mut rng = StdRng::seed_from_u64(7);
            let mut t_ref = Tableau::new(lat.num_qubits());
            sc.run_round(&mut t_ref, &mut rng);
            t_ref.x(victim);
            let expect = sc.run_round(&mut t_ref, &mut rng);

            // Microcode path: same protocol through the execution unit.
            let mut rng = StdRng::seed_from_u64(7);
            let mut t_mc = Tableau::new(lat.num_qubits());
            let mut eu = ExecutionUnit::new(TileGeometry::from_lattice(&lat));
            let mut run_cycle = |t: &mut Tableau, rng: &mut StdRng| {
                let mut meas = Vec::new();
                for w in &words {
                    meas.extend(eu.execute(w, t, rng).measurements);
                }
                meas
            };
            run_cycle(&mut t_mc, &mut rng);
            t_mc.x(victim);
            let got = run_cycle(&mut t_mc, &mut rng);

            // Compare Z-check outcomes (deterministic under this protocol).
            let z_ancillas = measured_ancillas(&lat, StabKind::Z);
            let got_z: Vec<bool> = z_ancillas
                .iter()
                .map(|&a| {
                    got.iter()
                        .find(|(q, _)| *q == a)
                        .map(|(_, v)| *v)
                        .expect("ancilla measured")
                })
                .collect();
            assert_eq!(got_z, expect.z, "victim {victim}");
        }
    }
}
