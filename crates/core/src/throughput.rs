//! MCE throughput and optimal microcode configuration (Figures 11 & 16,
//! Table 2).
//!
//! The number of qubits an MCE services is the lesser of two limits:
//!
//! * **capacity** — the microcode program must fit in the JJ memory. For
//!   the unit-cell design, the program is replicated into every bank so
//!   each channel can stream independently; a configuration is feasible
//!   only if one bank holds the whole unit-cell program.
//! * **bandwidth** — within the shortest instruction slot of the qubit
//!   technology, the memory must stream one µop per serviced qubit.
//!
//! The *optimal configuration* for a syndrome design (Table 2) is the
//! feasible 4 Kb configuration maximizing serviced qubits.
//!
//! Calibration note (documented deviation): the paper's Table 2 assigns
//! SC-17 the 8-channel configuration. A 512 b bank holds SC-17's 136-µop
//! program only with a 3-bit opcode encoding, which its reduced waveform
//! alphabet (7 waveforms: idle, two preparations, two measurements, two
//! CNOT halves) permits; the wider Steane/Shor/SC-13 alphabets need 4
//! bits. `opcode_bits` captures this per design.

use crate::jj::MemoryConfig;
use crate::microcode::{bandwidth_limited_qubits, MicrocodeDesign};
use crate::tech::TechnologyParams;
use quest_surface::SyndromeDesign;

/// Opcode width in bits for a syndrome design's waveform alphabet.
pub fn opcode_bits(design: &SyndromeDesign) -> f64 {
    if design.name == "SC-17" {
        3.0
    } else {
        4.0
    }
}

/// Returns `true` when the unit-cell program of `design` fits in one bank
/// of `config` (the replication requirement for independent channels).
pub fn program_fits(design: &SyndromeDesign, config: &MemoryConfig) -> bool {
    design.microcode_uops as f64 * opcode_bits(design) <= config.bank_bits() as f64
}

/// Qubits serviced per MCE by the unit-cell design under `config` for a
/// syndrome design and technology; zero when the program does not fit.
pub fn unit_cell_throughput(
    design: &SyndromeDesign,
    config: &MemoryConfig,
    tech: &TechnologyParams,
) -> usize {
    if !program_fits(design, config) {
        return 0;
    }
    bandwidth_limited_qubits(config, tech, opcode_bits(design))
}

/// The optimal 4 Kb configuration for a design/technology (Table 2):
/// the feasible configuration maximizing throughput.
pub fn optimal_config(design: &SyndromeDesign, tech: &TechnologyParams) -> MemoryConfig {
    // Fold instead of max_by_key so the nonempty sweep needs no expect;
    // `>=` keeps max_by_key's last-max-wins tie behavior (Table 2
    // depends on which tied configuration is reported).
    let sweep = MemoryConfig::four_kb_sweep();
    let first = sweep[0];
    sweep.into_iter().skip(1).fold(first, |best, c| {
        if unit_cell_throughput(design, &c, tech) >= unit_cell_throughput(design, &best, tech) {
            c
        } else {
            best
        }
    })
}

/// One row of the regenerated Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Syndrome design.
    pub design: SyndromeDesign,
    /// Optimal microcode configuration.
    pub config: MemoryConfig,
    /// JJ count of that configuration.
    pub jj_count: u64,
    /// Power dissipation in watts.
    pub power_w: f64,
    /// Qubits serviced per MCE at `Projected_F` technology.
    pub qubits_serviced: usize,
}

/// Regenerates Table 2 for all four syndrome designs.
pub fn table2(tech: &TechnologyParams) -> Vec<Table2Row> {
    SyndromeDesign::ALL
        .iter()
        .map(|design| {
            let config = optimal_config(design, tech);
            Table2Row {
                design: *design,
                config,
                jj_count: config.jj_count(),
                power_w: config.power_w(),
                qubits_serviced: unit_cell_throughput(design, &config, tech),
            }
        })
        .collect()
}

/// One point of Figure 11: qubits serviced per MCE at a fixed 4 Kb for a
/// microcode design and channel count (Steane syndrome, 4-bit opcodes).
pub fn figure11_point(
    mc_design: MicrocodeDesign,
    channels: usize,
    tech: &TechnologyParams,
) -> usize {
    let config = MemoryConfig::new(channels, 4096 / channels);
    let steane = SyndromeDesign::STEANE;
    crate::microcode::qubits_serviced(mc_design, &config, &steane, tech, 4.0)
}

/// One point of Figure 16: qubits per MCE for a technology × syndrome
/// design, at that design's optimal configuration.
pub fn figure16_point(design: &SyndromeDesign, tech: &TechnologyParams) -> usize {
    let config = optimal_config(design, tech);
    unit_cell_throughput(design, &config, tech)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_optimal_configurations_match_paper() {
        // Table 2: Steane → 4 ch, Shor → 2 ch, SC-17 → 8 ch, SC-13 → 4 ch.
        let tech = TechnologyParams::PROJECTED_F;
        let rows = table2(&tech);
        let channels: Vec<usize> = rows.iter().map(|r| r.config.channels()).collect();
        assert_eq!(channels, vec![4, 2, 8, 4]);
    }

    #[test]
    fn table2_jj_counts_match_paper() {
        let rows = table2(&TechnologyParams::PROJECTED_F);
        let jj: Vec<u64> = rows.iter().map(|r| r.jj_count).collect();
        assert_eq!(jj, vec![170_048, 168_264, 163_472, 170_048]);
    }

    #[test]
    fn table2_power_matches_paper() {
        let rows = table2(&TechnologyParams::PROJECTED_F);
        let p: Vec<f64> = rows.iter().map(|r| r.power_w * 1e6).collect();
        assert!((p[0] - 2.1).abs() < 1e-9);
        assert!((p[1] - 1.1).abs() < 1e-9);
        assert!((p[2] - 5.6).abs() < 1e-9);
        assert!((p[3] - 2.1).abs() < 1e-9);
    }

    #[test]
    fn figure11_unit_cell_scales_superlinearly() {
        let tech = TechnologyParams::PROJECTED_F;
        let one = figure11_point(MicrocodeDesign::UnitCell, 1, &tech);
        let two = figure11_point(MicrocodeDesign::UnitCell, 2, &tech);
        let four = figure11_point(MicrocodeDesign::UnitCell, 4, &tech);
        assert!(
            two as f64 / one as f64 > 2.0,
            "2ch/1ch = {}",
            two as f64 / one as f64
        );
        assert!((four as f64 / one as f64 - 6.0).abs() < 0.2, "4ch/1ch");
    }

    #[test]
    fn figure11_ram_and_fifo_are_capacity_bound() {
        // Adding channels must not increase RAM/FIFO serviced qubits.
        let tech = TechnologyParams::PROJECTED_F;
        for design in [MicrocodeDesign::Ram, MicrocodeDesign::Fifo] {
            let pts: Vec<usize> = [1, 2, 4]
                .into_iter()
                .map(|ch| figure11_point(design, ch, &tech))
                .collect();
            assert_eq!(pts[0], pts[1], "{design}");
            assert_eq!(pts[1], pts[2], "{design}");
        }
    }

    #[test]
    fn figure11_unit_cell_dominates_by_an_order_of_magnitude() {
        let tech = TechnologyParams::PROJECTED_F;
        let ram = figure11_point(MicrocodeDesign::Ram, 4, &tech);
        let uc = figure11_point(MicrocodeDesign::UnitCell, 4, &tech);
        assert!(uc > 30 * ram, "unit-cell {uc} vs RAM {ram}");
    }

    #[test]
    fn figure16_slower_qubits_mean_more_serviced_qubits() {
        // Experimental_S (25 ns slots) allows more streaming time than
        // Projected_D (5 ns slots).
        for design in &SyndromeDesign::ALL {
            let exp = figure16_point(design, &TechnologyParams::EXPERIMENTAL_S);
            let projd = figure16_point(design, &TechnologyParams::PROJECTED_D);
            assert!(exp > projd, "{}", design.name);
        }
    }

    #[test]
    fn shor_program_only_fits_two_channel_banks() {
        let shor = SyndromeDesign::SHOR;
        assert!(!program_fits(&shor, &MemoryConfig::new(8, 512)));
        assert!(!program_fits(&shor, &MemoryConfig::new(4, 1024)));
        assert!(program_fits(&shor, &MemoryConfig::new(2, 2048)));
    }

    #[test]
    fn sc17_compact_opcodes_fit_eight_channels() {
        let sc17 = SyndromeDesign::SC17;
        assert!(program_fits(&sc17, &MemoryConfig::new(8, 512)));
    }
}
