//! Packet-switched global interconnect between the master controller and
//! the MCE array.
//!
//! §4.2: "The master controller delivers logical instructions to MCE
//! using a packet switched network", and the shared global bus carries
//! logical instructions downstream and syndrome data upstream. This
//! module models that fabric: packets with a small routing header, a
//! tree topology (the master at the root, MCEs at the leaves), per-link
//! byte accounting and hop-latency estimates. It quantifies the
//! *secondary* claim behind QuEST: once QECC traffic is gone, the
//! network can be narrow and packet-switched instead of a wide
//! deterministic broadcast.

use std::fmt;

/// Bytes of routing/flow-control header per packet. The header carries
/// the route plus a CRC-16 over the packet's fields; the CRC is part of
/// these two bytes, so enabling integrity checking does not change the
/// wire byte accounting.
pub const HEADER_BYTES: u64 = 2;

/// Maximum payload per packet (two-byte instructions pack 32 per packet).
pub const MAX_PAYLOAD_BYTES: u64 = 64;

/// Direction of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Master → MCE: logical instructions / cache fills.
    Downstream,
    /// MCE → master: escalated syndrome data.
    Upstream,
}

/// One accounted packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Destination (downstream) or source (upstream) MCE.
    pub mce: usize,
    /// Payload size in bytes (≤ [`MAX_PAYLOAD_BYTES`]).
    pub payload_bytes: u64,
    /// Transfer direction.
    pub kind: PacketKind,
    /// CRC-16/CCITT over the routing fields, sealed at the sender.
    pub crc: u16,
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over `data`.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

impl Packet {
    /// Byte image of the checked fields (what the CRC covers).
    fn checked_bytes(&self) -> [u8; 17] {
        let mut buf = [0u8; 17];
        buf[..8].copy_from_slice(&(self.mce as u64).to_le_bytes());
        buf[8..16].copy_from_slice(&self.payload_bytes.to_le_bytes());
        buf[16] = match self.kind {
            PacketKind::Downstream => 0,
            PacketKind::Upstream => 1,
        };
        buf
    }

    /// Builds a packet with its CRC sealed by the sender.
    pub fn sealed(mce: usize, payload_bytes: u64, kind: PacketKind) -> Packet {
        let mut p = Packet {
            mce,
            payload_bytes,
            kind,
            crc: 0,
        };
        p.crc = crc16(&p.checked_bytes());
        p
    }

    /// Receiver-side integrity check: recompute the CRC over the fields
    /// as received and compare to the sealed value.
    pub fn verify(&self) -> bool {
        crc16(&self.checked_bytes()) == self.crc
    }

    /// A copy of this packet with one bit of its checked fields flipped
    /// in transit (`bit` is taken modulo the two 64-bit routing fields).
    /// Models wire corruption: the CRC still holds the sender's value,
    /// so [`verify`](Packet::verify) fails.
    pub fn with_bit_error(mut self, bit: u32) -> Packet {
        let bit = bit % (16 * 8);
        let mut buf = self.checked_bytes();
        buf[(bit / 8) as usize] ^= 1 << (bit % 8);
        // Little-endian reassembly, written out so no slice-length proof
        // (and hence no expect) is needed.
        let word = |at: usize| (0..8).fold(0u64, |w, i| w | u64::from(buf[at + i]) << (8 * i));
        self.mce = word(0) as usize;
        self.payload_bytes = word(8);
        self.kind = if buf[16] & 1 == 0 {
            PacketKind::Downstream
        } else {
            PacketKind::Upstream
        };
        self
    }
}

/// A `fanout`-ary tree interconnect over `mces` leaves.
///
/// # Example
///
/// ```
/// use quest_core::network::{Network, PacketKind};
///
/// let mut net = Network::new(64, 4);
/// net.send(7, 300, PacketKind::Downstream);
/// assert_eq!(net.packets_sent(), 5); // 300 B split into 64 B payloads
/// assert!(net.total_bytes() > 300); // headers included
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    mces: usize,
    fanout: usize,
    packets: u64,
    payload_bytes: u64,
    header_bytes: u64,
    /// Per-MCE downstream/upstream byte tallies.
    per_mce: Vec<[u64; 2]>,
}

impl Network {
    /// Builds the fabric for `mces` leaves with the given tree fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `mces` is zero or `fanout < 2`.
    pub fn new(mces: usize, fanout: usize) -> Network {
        assert!(mces > 0, "need at least one MCE");
        assert!(fanout >= 2, "tree fan-out must be at least 2");
        Network {
            mces,
            fanout,
            packets: 0,
            payload_bytes: 0,
            header_bytes: 0,
            per_mce: vec![[0, 0]; mces],
        }
    }

    /// Number of leaves.
    pub fn num_mces(&self) -> usize {
        self.mces
    }

    /// Router hops from the master to any MCE (tree depth).
    pub fn hops(&self) -> usize {
        let mut depth = 0usize;
        let mut reach = 1usize;
        while reach < self.mces {
            reach *= self.fanout;
            depth += 1;
        }
        depth.max(1)
    }

    /// Sends `bytes` of payload to/from an MCE, splitting into packets.
    /// Returns the number of packets used.
    ///
    /// # Panics
    ///
    /// Panics if `mce` is out of range.
    pub fn send(&mut self, mce: usize, bytes: u64, kind: PacketKind) -> u64 {
        assert!(mce < self.mces, "MCE {mce} out of range");
        if bytes == 0 {
            return 0;
        }
        let packets = bytes.div_ceil(MAX_PAYLOAD_BYTES);
        self.packets += packets;
        self.payload_bytes += bytes;
        self.header_bytes += packets * HEADER_BYTES;
        let slot = match kind {
            PacketKind::Downstream => 0,
            PacketKind::Upstream => 1,
        };
        self.per_mce[mce][slot] += bytes;
        packets
    }

    /// Packets accounted so far.
    pub fn packets_sent(&self) -> u64 {
        self.packets
    }

    /// Total bytes on the wire (payload + headers).
    pub fn total_bytes(&self) -> u64 {
        self.payload_bytes + self.header_bytes
    }

    /// Header overhead as a fraction of wire bytes.
    pub fn header_overhead(&self) -> f64 {
        if self.total_bytes() == 0 {
            0.0
        } else {
            self.header_bytes as f64 / self.total_bytes() as f64
        }
    }

    /// Downstream bytes delivered to one MCE.
    ///
    /// # Panics
    ///
    /// Panics if `mce` is out of range.
    pub fn downstream_bytes(&self, mce: usize) -> u64 {
        self.per_mce[mce][0]
    }

    /// Upstream bytes received from one MCE.
    ///
    /// # Panics
    ///
    /// Panics if `mce` is out of range.
    pub fn upstream_bytes(&self, mce: usize) -> u64 {
        self.per_mce[mce][1]
    }

    /// End-to-end latency of one packet in seconds, given a per-hop
    /// router latency.
    pub fn packet_latency_s(&self, hop_latency_s: f64) -> f64 {
        self.hops() as f64 * hop_latency_s
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "network[{} MCEs, {}-ary, {} hops, {} pkts, {} B]",
            self.mces,
            self.fanout,
            self.hops(),
            self.packets,
            self.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packetization_splits_and_counts_headers() {
        let mut net = Network::new(8, 2);
        let pkts = net.send(3, 130, PacketKind::Downstream);
        assert_eq!(pkts, 3); // 64 + 64 + 2
        assert_eq!(net.total_bytes(), 130 + 3 * HEADER_BYTES);
        assert_eq!(net.downstream_bytes(3), 130);
        assert_eq!(net.upstream_bytes(3), 0);
    }

    #[test]
    fn hops_grow_logarithmically() {
        assert_eq!(Network::new(4, 4).hops(), 1);
        assert_eq!(Network::new(16, 4).hops(), 2);
        assert_eq!(Network::new(17, 4).hops(), 3);
        assert_eq!(Network::new(1024, 4).hops(), 5);
    }

    #[test]
    fn zero_byte_sends_are_free() {
        let mut net = Network::new(2, 2);
        assert_eq!(net.send(0, 0, PacketKind::Upstream), 0);
        assert_eq!(net.total_bytes(), 0);
        assert_eq!(net.header_overhead(), 0.0);
    }

    #[test]
    fn header_overhead_small_for_full_packets() {
        let mut net = Network::new(2, 2);
        net.send(0, 64 * 100, PacketKind::Downstream);
        assert!(net.header_overhead() < 0.05);
    }

    #[test]
    fn latency_scales_with_depth() {
        let small = Network::new(4, 4);
        let large = Network::new(4096, 4);
        assert!(large.packet_latency_s(1e-9) > small.packet_latency_s(1e-9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_mce_panics() {
        Network::new(2, 2).send(2, 1, PacketKind::Downstream);
    }

    #[test]
    fn crc16_matches_check_value() {
        // CRC-16/CCITT-FALSE check value for "123456789".
        assert_eq!(crc16(b"123456789"), 0x29B1);
        assert_eq!(crc16(&[]), 0xFFFF);
    }

    #[test]
    fn sealed_packets_verify_until_corrupted() {
        let p = Packet::sealed(5, 48, PacketKind::Upstream);
        assert!(p.verify());
        for bit in 0..128 {
            assert!(!p.with_bit_error(bit).verify(), "bit {bit} undetected");
        }
        // A second flip of the same bit restores the packet.
        assert!(p.with_bit_error(3).with_bit_error(3).verify());
    }
}
