//! Josephson-junction (JJ) technology model for the microcode memory.
//!
//! §4.5: JJ logic is ~1000× more power-efficient than CMOS at 4 K but
//! offers very limited memory density, which caps the microcode capacity
//! per MCE. This module models channelized RQL-style pipelined storage:
//! JJ count, read latency in 10 GHz clock cycles, and power, calibrated to
//! the paper's anchor points (footnote 6 and Table 2, from Dorojevets et
//! al.).

use std::fmt;

/// JJ logic clock frequency (§2.2: JJ gates clocked at 10 GHz).
pub const JJ_CLOCK_HZ: f64 = 10e9;

/// Bits returned by one memory read on one channel (RQL pipelined storage
/// reads one 32-bit word per access).
pub const WORD_BITS: usize = 32;

/// A channelized microcode memory configuration: `channels` independent
/// banks of `bank_bits` each.
///
/// # Example
///
/// ```
/// use quest_core::jj::MemoryConfig;
///
/// let four_channel = MemoryConfig::new(4, 1024);
/// assert_eq!(four_channel.total_bits(), 4096);
/// assert_eq!(four_channel.read_latency_cycles(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryConfig {
    channels: usize,
    bank_bits: usize,
}

impl MemoryConfig {
    /// Builds a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `bank_bits` is zero.
    pub fn new(channels: usize, bank_bits: usize) -> MemoryConfig {
        assert!(channels > 0, "need at least one channel");
        assert!(bank_bits > 0, "banks must have nonzero capacity");
        MemoryConfig {
            channels,
            bank_bits,
        }
    }

    /// The four 4 Kb configurations evaluated in §4.5 and Table 2.
    pub fn four_kb_sweep() -> [MemoryConfig; 4] {
        [
            MemoryConfig::new(1, 4096),
            MemoryConfig::new(2, 2048),
            MemoryConfig::new(4, 1024),
            MemoryConfig::new(8, 512),
        ]
    }

    /// Number of independent channels (banks with one read port each).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Capacity of one bank in bits.
    pub fn bank_bits(&self) -> usize {
        self.bank_bits
    }

    /// Total capacity in bits.
    pub fn total_bits(&self) -> usize {
        self.channels * self.bank_bits
    }

    /// Read latency in JJ clock cycles. Anchors from §4.5: a 1-channel 4 Kb
    /// array reads in three cycles; a 1 Kb bank in two; small 512 b banks
    /// in one.
    pub fn read_latency_cycles(&self) -> usize {
        match self.bank_bits {
            0..=512 => 1,
            513..=2048 => 2,
            _ => 3,
        }
    }

    /// Aggregate read bandwidth in bits/second: every channel streams one
    /// word per `read_latency` cycles.
    pub fn bandwidth_bits_per_s(&self) -> f64 {
        self.channels as f64 * WORD_BITS as f64 * JJ_CLOCK_HZ / self.read_latency_cycles() as f64
    }

    /// JJ count for the configuration. The four paper configurations use
    /// the exact Table-2 / footnote-6 values; other configurations use a
    /// documented linear approximation (≈41.5 JJ/bit plus per-bank
    /// peripheral overhead) consistent with those anchors.
    pub fn jj_count(&self) -> u64 {
        match (self.channels, self.bank_bits) {
            (1, 4096) => 170_000, // footnote 6
            (2, 2048) => 168_264, // Table 2 (Shor row)
            (4, 1024) => 170_048, // Table 2 (Steane / SC-13 rows)
            (8, 512) => 163_472,  // Table 2 (SC-17 row)
            _ => (self.total_bits() as f64 * 41.0 + self.channels as f64 * 500.0) as u64,
        }
    }

    /// Power dissipation in watts. Paper anchor points for the 4 Kb
    /// configurations; other configurations scale with access rate.
    pub fn power_w(&self) -> f64 {
        match (self.channels, self.bank_bits) {
            (1, 4096) => 10e-6, // footnote 6
            (2, 2048) => 1.1e-6,
            (4, 1024) => 2.1e-6,
            (8, 512) => 5.6e-6,
            _ => {
                // Access-rate-proportional dynamic power.
                let accesses_per_s =
                    self.channels as f64 * JJ_CLOCK_HZ / self.read_latency_cycles() as f64;
                accesses_per_s * 1.1e-16 + self.total_bits() as f64 * 5e-11
            }
        }
    }
}

impl fmt::Display for MemoryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bank = if self.bank_bits.is_multiple_of(1024) {
            format!("{}Kb", self.bank_bits / 1024)
        } else {
            format!("{}b", self.bank_bits)
        };
        write!(
            f,
            "{} Channel = {} x {}",
            self.channels, bank, self.channels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_configs_total_4kb() {
        for c in MemoryConfig::four_kb_sweep() {
            assert_eq!(c.total_bits(), 4096);
        }
    }

    #[test]
    fn latency_anchors_from_paper() {
        // §4.5: one-channel 4 Kb reads in 3 cycles; four-channel 1 Kb in 2.
        assert_eq!(MemoryConfig::new(1, 4096).read_latency_cycles(), 3);
        assert_eq!(MemoryConfig::new(4, 1024).read_latency_cycles(), 2);
        assert_eq!(MemoryConfig::new(8, 512).read_latency_cycles(), 1);
    }

    #[test]
    fn four_channel_bandwidth_is_6x_one_channel() {
        // §4.5: "the bandwidth improves by 6x".
        let one = MemoryConfig::new(1, 4096).bandwidth_bits_per_s();
        let four = MemoryConfig::new(4, 1024).bandwidth_bits_per_s();
        assert!((four / one - 6.0).abs() < 1e-9, "ratio = {}", four / one);
    }

    #[test]
    fn table2_jj_counts() {
        assert_eq!(MemoryConfig::new(4, 1024).jj_count(), 170_048);
        assert_eq!(MemoryConfig::new(2, 2048).jj_count(), 168_264);
        assert_eq!(MemoryConfig::new(8, 512).jj_count(), 163_472);
    }

    #[test]
    fn table2_power() {
        assert_eq!(MemoryConfig::new(4, 1024).power_w(), 2.1e-6);
        assert_eq!(MemoryConfig::new(2, 2048).power_w(), 1.1e-6);
        assert_eq!(MemoryConfig::new(8, 512).power_w(), 5.6e-6);
    }

    #[test]
    fn approximate_model_is_sane_for_other_configs() {
        let c = MemoryConfig::new(2, 1024);
        assert!(c.jj_count() > 50_000 && c.jj_count() < 200_000);
        assert!(c.power_w() > 0.0 && c.power_w() < 20e-6);
    }

    #[test]
    fn display_matches_table2_style() {
        assert_eq!(
            MemoryConfig::new(4, 1024).to_string(),
            "4 Channel = 1Kb x 4"
        );
        assert_eq!(
            MemoryConfig::new(8, 512).to_string(),
            "8 Channel = 512b x 8"
        );
    }
}
