//! Master controller (§4.2, footnote 3).
//!
//! The master controller sits in the 77 K domain, dispatches logical
//! instructions to MCEs over the packet-switched global bus, runs the
//! *global* error decoder for syndrome patterns the MCEs' local lookup
//! decoders escalate, and issues synchronization tokens. Every byte it
//! moves is tallied in [`BusCounters`], because the bus traffic *is* the
//! experiment.

use crate::bus::{BusCounters, Traffic};
use crate::decoder_pipeline::Escalation;
use crate::error::ReplayError;
use crate::instruction_pipeline::traffic_class;
use crate::mce::Mce;
use quest_isa::{InstrClass, LogicalInstr};
use quest_surface::decoder::{CostReport, DecoderBackend, DecoderChoice};
use quest_surface::{DecodingGraph, StabKind};

/// Bytes of syndrome data per escalated detection event (check id + round
/// tag in the upstream packet format).
pub const SYNDROME_EVENT_BYTES: u64 = 2;

/// Bytes per synchronization token.
pub const SYNC_TOKEN_BYTES: u64 = 2;

/// Statistics for the master controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Logical instructions dispatched.
    pub dispatched: u64,
    /// Escalations resolved by the global decoder.
    pub global_decodes: u64,
    /// Sync tokens issued.
    pub sync_tokens: u64,
}

/// The master controller of a QuEST control processor.
#[derive(Debug, Clone)]
pub struct MasterController {
    bus: BusCounters,
    stats: MasterStats,
    decoder: Box<dyn DecoderBackend>,
}

impl Default for MasterController {
    fn default() -> MasterController {
        MasterController::with_decoder(DecoderChoice::default())
    }
}

impl MasterController {
    /// Creates a master controller with zeroed counters and the default
    /// (software union-find) global decoder backend.
    pub fn new() -> MasterController {
        MasterController::default()
    }

    /// Creates a master controller whose global decoder is the backend
    /// selected by `choice`.
    pub fn with_decoder(choice: DecoderChoice) -> MasterController {
        MasterController {
            bus: BusCounters::default(),
            stats: MasterStats::default(),
            decoder: choice.backend(),
        }
    }

    /// Name of the global decoder backend in use.
    pub fn decoder_name(&self) -> &'static str {
        self.decoder.name()
    }

    /// Accumulated decode-cost counters of the global decoder backend.
    pub fn decoder_cost(&self) -> CostReport {
        self.decoder.cost()
    }

    /// Global-bus traffic counters.
    pub fn bus(&self) -> &BusCounters {
        &self.bus
    }

    /// Crate-internal accounting hook: the system model records traffic
    /// (e.g. baseline QECC streams) that does not flow through a public
    /// dispatch method. Kept out of the public API so external users
    /// cannot forge counters.
    pub(crate) fn record_traffic(&mut self, class: Traffic, bytes: u64) {
        self.bus.record(class, bytes);
    }

    /// Accounts `bytes` resent on the bus after a drop or CRC failure.
    /// Retransmissions are the one traffic class a fault-recovery layer
    /// outside this crate legitimately generates, so this hook is public
    /// where the general `record_traffic` hook is not.
    pub fn note_retransmission(&mut self, bytes: u64) {
        self.bus.record(Traffic::Retransmit, bytes);
    }

    /// Statistics so far.
    pub fn stats(&self) -> MasterStats {
        self.stats
    }

    /// Dispatches one logical instruction to an MCE (downstream bus
    /// traffic + instruction-pipeline delivery).
    pub fn dispatch(&mut self, mce: &mut Mce, i: LogicalInstr, class: InstrClass) {
        self.dispatch_remote(class);
        mce.instruction_pipeline_mut().deliver(i);
    }

    /// Accounts the dispatch of one logical instruction to an MCE the
    /// master does not hold a reference to (message-driven use: the
    /// concurrent runtime ships the instruction to the owning shard,
    /// which delivers it to the tile's pipeline). Identical bus
    /// accounting to [`MasterController::dispatch`].
    pub fn dispatch_remote(&mut self, class: InstrClass) {
        self.bus
            .record(traffic_class(class), LogicalInstr::ENCODED_BYTES as u64);
        self.stats.dispatched += 1;
    }

    /// Dispatches one logical instruction *and executes it* on the tile:
    /// bus accounting plus the instruction pipeline's decode/expand step
    /// (`Mce::execute_logical`). Use this when the tile's logical content
    /// matters; [`MasterController::dispatch`] models delivery-only
    /// traffic shaping.
    pub fn dispatch_execute(&mut self, mce: &mut Mce, i: LogicalInstr, class: InstrClass) {
        self.dispatch(mce, i, class);
        mce.execute_logical(i);
    }

    /// Fills an MCE's instruction cache with a block (bus traffic once).
    pub fn dispatch_cache_fill(&mut self, mce: &mut Mce, block: u8, instrs: &[LogicalInstr]) {
        let bytes = mce.instruction_pipeline_mut().cache_fill(block, instrs);
        self.bus.record(Traffic::CacheFill, bytes);
        self.stats.dispatched += instrs.len() as u64;
    }

    /// Accounts a cache fill of `instr_count` instructions on a remote
    /// MCE (the owning shard performs the fill itself). Identical bus
    /// accounting to [`MasterController::dispatch_cache_fill`].
    pub fn cache_fill_remote(&mut self, instr_count: u64) {
        self.bus.record(
            Traffic::CacheFill,
            instr_count * LogicalInstr::ENCODED_BYTES as u64,
        );
        self.stats.dispatched += instr_count;
    }

    /// Accounts a replay command for a remote cached block of
    /// `instr_count` instructions (one two-byte command downstream; the
    /// shard replays the block locally). Identical bus accounting to
    /// [`MasterController::dispatch_cache_replay`].
    pub fn cache_replay_remote(&mut self, instr_count: u64) {
        self.bus
            .record(Traffic::Sync, LogicalInstr::ENCODED_BYTES as u64);
        self.stats.dispatched += instr_count;
    }

    /// Requests a cached-block replay (one two-byte command downstream;
    /// the block's instructions issue locally at the MCE). Returns the
    /// number of instructions replayed.
    ///
    /// # Errors
    ///
    /// [`ReplayError`] if the block is not resident — replaying an
    /// unfilled block is a schedule bug, and nothing (including bus
    /// accounting) happens for the rejected command.
    pub fn dispatch_cache_replay(&mut self, mce: &mut Mce, block: u8) -> Result<u64, ReplayError> {
        let replayed = mce
            .instruction_pipeline_mut()
            .cache_replay(block)
            .ok_or(ReplayError { block })?;
        self.bus
            .record(Traffic::Sync, LogicalInstr::ENCODED_BYTES as u64);
        let count = replayed.len() as u64;
        self.stats.dispatched += count;
        Ok(count)
    }

    /// Issues a synchronization token to an MCE.
    pub fn sync(&mut self, _mce: &mut Mce, token: u8) {
        self.sync_remote(token);
    }

    /// Accounts a synchronization token sent to an MCE the master does not
    /// hold a reference to (message-driven use: the concurrent runtime's
    /// master thread owns channels to its shards, not the MCEs
    /// themselves). Identical bus accounting to
    /// [`MasterController::sync`].
    pub fn sync_remote(&mut self, _token: u8) {
        self.bus.record(Traffic::Sync, SYNC_TOKEN_BYTES);
        self.stats.sync_tokens += 1;
    }

    /// Accounts one escalation arriving over the bus (`event_count`
    /// detection events upstream) and its global decode, without
    /// performing the decode. The message-driven runtime uses this: the
    /// decode itself happens in a worker pool against the batching API
    /// (`quest_surface::decoder::batch`), while the traffic and decode
    /// counts stay on the master's ledger exactly as in
    /// [`MasterController::service_escalations`].
    pub fn note_escalation(&mut self, event_count: u64) {
        self.bus
            .record(Traffic::Syndrome, event_count * SYNDROME_EVENT_BYTES);
        self.stats.global_decodes += 1;
    }

    /// Accounts the residual syndrome of a destructive logical readout
    /// (`event_count` detection events upstream). Unlike
    /// [`MasterController::note_escalation`] this is not a global decode
    /// — the final perfect round is resolved at readout, the master only
    /// carries its bytes.
    pub fn note_readout_syndrome(&mut self, event_count: u64) {
        self.bus
            .record(Traffic::Syndrome, event_count * SYNDROME_EVENT_BYTES);
    }

    /// Collects an MCE's escalated syndromes (upstream traffic), resolves
    /// them with the global decoder, and pushes the corrections back into
    /// the MCE's Pauli frames.
    pub fn service_escalations(&mut self, mce: &mut Mce) {
        let escalations = mce.take_escalations();
        for (kind, esc) in escalations {
            self.resolve_escalation(mce, kind, &esc);
        }
    }

    /// Windowed variant of [`MasterController::service_escalations`]: all
    /// escalations currently pending at the MCE are decoded *jointly* over
    /// a multi-round space-time graph (Appendix A.2: the decoder observes
    /// "changes in syndrome over a window of space and time"), so
    /// diagonal error/measurement-error chains that span rounds are
    /// matched through temporal edges instead of being forced into
    /// per-round data corrections.
    ///
    /// Call this at window boundaries (the MCE keeps buffering escalations
    /// in between).
    pub fn service_escalations_windowed(&mut self, mce: &mut Mce) {
        let escalations = mce.take_escalations();
        if escalations.is_empty() {
            return;
        }
        // Bucket by stabilizer kind in a fixed order (X then Z) so the
        // decode order — and with it every downstream counter — is
        // independent of arrival order and of any hash state.
        let mut x_escs: Vec<Escalation> = Vec::new();
        let mut z_escs: Vec<Escalation> = Vec::new();
        for (kind, esc) in escalations {
            match kind {
                StabKind::X => x_escs.push(esc),
                StabKind::Z => z_escs.push(esc),
            }
        }
        for (kind, escs) in [(StabKind::X, x_escs), (StabKind::Z, z_escs)] {
            if escs.is_empty() {
                continue;
            }
            let (mut first, mut last) = (usize::MAX, 0);
            for e in &escs {
                first = first.min(e.round);
                last = last.max(e.round);
            }
            let rounds = last - first + 1;
            let graph = DecodingGraph::new(mce.lattice(), kind, rounds);
            let mut events = Vec::new();
            let mut event_count = 0u64;
            for esc in &escs {
                for &check in &esc.events {
                    // Per-round escalations carry single-round node ids,
                    // which equal the check index.
                    events.push(graph.node(esc.round - first, check));
                    event_count += 1;
                }
            }
            self.bus
                .record(Traffic::Syndrome, event_count * SYNDROME_EVENT_BYTES);
            self.stats.global_decodes += 1;
            let correction = self.decoder.decode(&graph, &events);
            mce.decoder_mut(kind)
                .apply_global_correction(correction.data_flips.iter().copied());
        }
    }

    fn resolve_escalation(&mut self, mce: &mut Mce, kind: StabKind, esc: &Escalation) {
        self.note_escalation(esc.events.len() as u64);
        // Single-round graph: the MCE escalates per round. The global
        // decoder sees the same node numbering the escalation used.
        let graph = DecodingGraph::new(mce.lattice(), kind, 1);
        let correction = self.decoder.decode(&graph, &esc.events);
        mce.decoder_mut(kind)
            .apply_global_correction(correction.data_flips.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_isa::LogicalQubit;
    use quest_stabilizer::{SeedableRng, StdRng, Tableau};
    use quest_surface::RotatedLattice;

    fn setup() -> (MasterController, Mce, Tableau, StdRng) {
        let lat = RotatedLattice::new(3);
        (
            MasterController::new(),
            Mce::new(&lat, 4096),
            Tableau::new(lat.num_qubits()),
            StdRng::seed_from_u64(17),
        )
    }

    #[test]
    fn dispatch_counts_bytes_by_class() {
        let (mut master, mut mce, _, _) = setup();
        master.dispatch(
            &mut mce,
            LogicalInstr::H(LogicalQubit(0)),
            InstrClass::Algorithmic,
        );
        master.dispatch(
            &mut mce,
            LogicalInstr::T(LogicalQubit(0)),
            InstrClass::Distillation,
        );
        assert_eq!(master.bus().bytes(Traffic::LogicalInstructions), 2);
        assert_eq!(master.bus().bytes(Traffic::Distillation), 2);
        assert_eq!(master.stats().dispatched, 2);
        assert_eq!(mce.instruction_pipeline().stats().issued, 2);
    }

    #[test]
    fn cache_replay_costs_one_command() {
        let (mut master, mut mce, _, _) = setup();
        let kernel = vec![LogicalInstr::H(LogicalQubit(0)); 150];
        master.dispatch_cache_fill(&mut mce, 0, &kernel);
        let fill_bytes = master.bus().bytes(Traffic::CacheFill);
        assert_eq!(fill_bytes, 300);
        for _ in 0..100 {
            assert_eq!(master.dispatch_cache_replay(&mut mce, 0), Ok(150));
        }
        // 100 replays of a 150-instruction kernel cost 200 bytes of
        // commands instead of 30 000 bytes of instructions.
        assert_eq!(master.bus().bytes(Traffic::Sync), 200);
        assert_eq!(
            mce.instruction_pipeline().stats().cached_instructions,
            15_000
        );
    }

    #[test]
    fn replay_of_non_resident_block_is_rejected_without_accounting() {
        let (mut master, mut mce, _, _) = setup();
        assert_eq!(
            master.dispatch_cache_replay(&mut mce, 3),
            Err(ReplayError { block: 3 })
        );
        assert_eq!(master.bus().bytes(Traffic::Sync), 0);
        assert_eq!(master.stats().dispatched, 0);
    }

    #[test]
    fn escalations_reach_global_decoder_and_fix_frame() {
        let (mut master, mut mce, mut t, mut rng) = setup();
        mce.run_qecc_cycle(&mut t, &mut rng); // project
                                              // Inject a two-qubit X chain: adjacent data qubits sharing a Z
                                              // check produce a pattern the LUT may escalate.
        let a = mce.lattice().data_index(1, 1);
        let b = mce.lattice().data_index(1, 2);
        t.x(a);
        t.x(b);
        mce.run_qecc_cycle(&mut t, &mut rng);
        master.service_escalations(&mut mce);
        // Whether locally or globally decoded, the frame must now cancel
        // the injected error up to a stabilizer: syndrome quiet next round.
        mce.run_qecc_cycle(&mut t, &mut rng);
        let stats = mce.decode_stats(StabKind::Z);
        assert_eq!(
            stats.escalations as usize,
            master.stats().global_decodes as usize
        );
        // No unexplained events remain pending.
        assert!(mce.decoder(StabKind::Z).pending_escalations().is_empty());
    }

    #[test]
    fn windowed_decode_resolves_multi_round_patterns() {
        // Inject a two-qubit chain each round for three rounds, letting
        // escalations pile up, then flush the whole window at once.
        let (mut master, mut mce, mut t, mut rng) = setup();
        mce.run_qecc_cycle(&mut t, &mut rng); // project
        for _ in 0..3 {
            let a = mce.lattice().data_index(1, 1);
            let b = mce.lattice().data_index(1, 2);
            t.x(a);
            t.x(b);
            mce.run_qecc_cycle(&mut t, &mut rng);
        }
        let pending = mce
            .decoder(quest_surface::StabKind::Z)
            .pending_escalations()
            .len();
        master.service_escalations_windowed(&mut mce);
        assert!(mce
            .decoder(quest_surface::StabKind::Z)
            .pending_escalations()
            .is_empty());
        if pending > 0 {
            assert!(master.stats().global_decodes >= 1);
            assert!(master.bus().bytes(Traffic::Syndrome) > 0);
        }
        // After the window, the substrate + frame must be syndrome-quiet.
        mce.run_qecc_cycle(&mut t, &mut rng);
        master.service_escalations_windowed(&mut mce);
        let readout = mce.measure_logical_z(&mut t, &mut rng);
        // Six X flips total on (1,1)/(1,2): net identity on the data, so
        // logical |0> must read 0 once decoding settles.
        assert!(!readout, "windowed decoding corrupted the logical state");
    }

    #[test]
    fn dispatch_execute_interleaves_logical_work_with_qecc() {
        // §5.1: logical instructions interleave with the continuous QECC
        // stream. Dispatch-execute a logical X mid-run; the tile's Pauli
        // frame carries it and the final decoded readout reports 1.
        use quest_isa::LogicalQubit;
        let (mut master, mut mce, mut t, mut rng) = setup();
        mce.run_qecc_cycle(&mut t, &mut rng); // project |0_L>
        master.dispatch_execute(
            &mut mce,
            LogicalInstr::X(LogicalQubit(0)),
            InstrClass::Algorithmic,
        );
        // QECC keeps running with zero extra instruction traffic.
        for _ in 0..3 {
            mce.run_qecc_cycle(&mut t, &mut rng);
        }
        assert_eq!(master.bus().total(), 2, "one two-byte instruction");
        assert!(mce.measure_logical_z(&mut t, &mut rng), "logical X lost");
    }

    #[test]
    fn dispatch_execute_mask_writes_take_effect() {
        use quest_isa::MaskRegion;
        let (mut master, mut mce, _, _) = setup();
        master.dispatch_execute(
            &mut mce,
            LogicalInstr::MaskOn(MaskRegion(0)),
            InstrClass::Algorithmic,
        );
        assert!(mce.mask().region_masked(0));
        assert_eq!(mce.instruction_pipeline().stats().issued, 1);
    }

    #[test]
    fn windowed_decode_of_nothing_is_free() {
        let (mut master, mut mce, _, _) = setup();
        master.service_escalations_windowed(&mut mce);
        assert_eq!(master.stats().global_decodes, 0);
        assert_eq!(master.bus().total(), 0);
    }

    #[test]
    fn sync_tokens_are_cheap() {
        let (mut master, mut mce, _, _) = setup();
        for tok in 0..10 {
            master.sync(&mut mce, tok);
        }
        assert_eq!(master.bus().bytes(Traffic::Sync), 20);
        assert_eq!(master.stats().sync_tokens, 10);
    }
}
