//! Mode-parameterized instruction delivery: the one engine behind all
//! three Figure-14 architectures.
//!
//! [`DeliveryMode`] selects which bytes cross the global bus for the same
//! logical workload; [`DeliveryEngine`] applies that policy per tile. The
//! single-tile [`QuestSystem`](crate::QuestSystem), the multi-tile
//! reference ([`MultiTileSystem`](crate::MultiTileSystem)) and the
//! concurrent `quest-runtime` shards all account instruction delivery
//! through this module, so the three execution paths cannot drift apart.
//!
//! The engine splits each operation into two halves that the concurrent
//! runtime performs on different threads:
//!
//! * **accounting** — bus-byte and dispatch-counter updates on a
//!   [`MasterController`] (`*_remote` methods; the master thread's side);
//! * **local execution** — instruction-pipeline delivery, cache fills and
//!   replays on an [`Mce`] (`*_local` methods; the shard's side).
//!
//! The single-threaded systems call the combined methods, which perform
//! both halves back to back. Totals are identical either way.

use crate::instruction_pipeline::traffic_class;
use crate::master::MasterController;
use crate::mce::Mce;
use quest_isa::{InstrClass, LogicalInstr};

/// Instruction-delivery architecture being accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryMode {
    /// Software-managed QECC: all µops cross the global bus (§3.3).
    SoftwareBaseline,
    /// QuEST with hardware-managed QECC (§4).
    QuestMce,
    /// QuEST plus the software-managed logical instruction cache (§5.3).
    QuestMceCache,
}

impl DeliveryMode {
    /// All modes, Figure-14 order.
    pub const ALL: [DeliveryMode; 3] = [
        DeliveryMode::SoftwareBaseline,
        DeliveryMode::QuestMce,
        DeliveryMode::QuestMceCache,
    ];
}

/// The cache block id used for distillation kernels.
const KERNEL_BLOCK: u8 = 0;

/// Applies one [`DeliveryMode`]'s bus-accounting policy to a tile.
///
/// # Example
///
/// ```
/// use quest_core::{DeliveryEngine, DeliveryMode, MasterController, Mce, Traffic};
/// use quest_isa::{InstrClass, LogicalInstr, LogicalQubit};
/// use quest_surface::RotatedLattice;
///
/// let lattice = RotatedLattice::new(3);
/// let mut master = MasterController::new();
/// let mut mce = Mce::new(&lattice, 4096);
/// let engine = DeliveryEngine::new(DeliveryMode::QuestMceCache);
/// // A 10-instruction kernel replayed 100 times: one fill, 100 commands.
/// let kernel = vec![LogicalInstr::H(LogicalQubit(0)); 10];
/// engine.kernel(&mut master, &mut mce, &kernel, 100);
/// assert_eq!(master.bus().bytes(Traffic::CacheFill), 20);
/// assert_eq!(master.bus().bytes(Traffic::Sync), 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryEngine {
    mode: DeliveryMode,
}

impl DeliveryEngine {
    /// An engine accounting in `mode`.
    pub fn new(mode: DeliveryMode) -> DeliveryEngine {
        DeliveryEngine { mode }
    }

    /// The mode being accounted.
    pub fn mode(&self) -> DeliveryMode {
        self.mode
    }

    /// Dispatches one logical instruction to a tile: bus accounting plus
    /// instruction-pipeline delivery. Identical in every mode — single
    /// logical instructions always cross the bus.
    pub fn dispatch(
        &self,
        master: &mut MasterController,
        mce: &mut Mce,
        i: LogicalInstr,
        class: InstrClass,
    ) {
        master.dispatch(mce, i, class);
    }

    /// Master-side half of [`DeliveryEngine::dispatch`] for a remote tile
    /// (the concurrent runtime ships the instruction to the owning shard,
    /// which performs [`DeliveryEngine::dispatch_local`]).
    pub fn dispatch_remote(&self, master: &mut MasterController, class: InstrClass) {
        master.dispatch_remote(class);
    }

    /// Tile-side half of [`DeliveryEngine::dispatch`]: pipeline delivery
    /// with no bus accounting (the master already accounted it).
    pub fn dispatch_local(&self, mce: &mut Mce, i: LogicalInstr) {
        mce.instruction_pipeline_mut().deliver(i);
    }

    /// Runs a distillation kernel `replays` times on a tile under this
    /// mode's policy:
    ///
    /// * `SoftwareBaseline` / `QuestMce` — every instruction of every
    ///   replay crosses the bus individually;
    /// * `QuestMceCache` — the kernel crosses the bus once (cache fill,
    ///   skipped if the block is already resident) and each replay costs
    ///   one two-byte command.
    ///
    /// An empty kernel or a zero replay count is a no-op (nothing is
    /// filled, nothing crosses the bus).
    pub fn kernel(
        &self,
        master: &mut MasterController,
        mce: &mut Mce,
        kernel: &[LogicalInstr],
        replays: u64,
    ) {
        if kernel.is_empty() || replays == 0 {
            return;
        }
        match self.mode {
            DeliveryMode::SoftwareBaseline | DeliveryMode::QuestMce => {
                for _ in 0..replays {
                    for &i in kernel {
                        master.dispatch(mce, i, InstrClass::Distillation);
                    }
                }
            }
            DeliveryMode::QuestMceCache => {
                if !mce.instruction_pipeline().cache_contains(KERNEL_BLOCK) {
                    master.dispatch_cache_fill(mce, KERNEL_BLOCK, kernel);
                }
                for _ in 0..replays {
                    if master.dispatch_cache_replay(mce, KERNEL_BLOCK).is_err() {
                        // The fill above makes a miss unreachable; refill
                        // so a schedule bug degrades to extra fill
                        // traffic instead of a lost replay.
                        master.dispatch_cache_fill(mce, KERNEL_BLOCK, kernel);
                        let _ = master.dispatch_cache_replay(mce, KERNEL_BLOCK);
                    }
                }
            }
        }
    }

    /// Master-side half of [`DeliveryEngine::kernel`] for a remote tile.
    /// `filled` says whether the tile's kernel block is already resident
    /// (the caller tracks this per tile); returns `true` when a cache fill
    /// was accounted, so the caller can mark the block resident.
    pub fn kernel_remote(
        &self,
        master: &mut MasterController,
        kernel_len: usize,
        replays: u64,
        filled: bool,
    ) -> bool {
        if kernel_len == 0 || replays == 0 {
            return false;
        }
        match self.mode {
            DeliveryMode::SoftwareBaseline | DeliveryMode::QuestMce => {
                for _ in 0..replays * kernel_len as u64 {
                    master.dispatch_remote(InstrClass::Distillation);
                }
                false
            }
            DeliveryMode::QuestMceCache => {
                if !filled {
                    master.cache_fill_remote(kernel_len as u64);
                }
                for _ in 0..replays {
                    master.cache_replay_remote(kernel_len as u64);
                }
                !filled
            }
        }
    }

    /// Tile-side half of [`DeliveryEngine::kernel`]: pipeline delivery /
    /// cache fill and replay with no bus accounting.
    pub fn kernel_local(&self, mce: &mut Mce, kernel: &[LogicalInstr], replays: u64) {
        if kernel.is_empty() || replays == 0 {
            return;
        }
        match self.mode {
            DeliveryMode::SoftwareBaseline | DeliveryMode::QuestMce => {
                for _ in 0..replays {
                    for &i in kernel {
                        mce.instruction_pipeline_mut().deliver(i);
                    }
                }
            }
            DeliveryMode::QuestMceCache => {
                let pipeline = mce.instruction_pipeline_mut();
                if !pipeline.cache_contains(KERNEL_BLOCK) {
                    pipeline.cache_fill(KERNEL_BLOCK, kernel);
                }
                for _ in 0..replays {
                    if pipeline.cache_replay(KERNEL_BLOCK).is_none() {
                        // Unreachable after the fill above; refill rather
                        // than lose the replay.
                        pipeline.cache_fill(KERNEL_BLOCK, kernel);
                        let _ = pipeline.cache_replay(KERNEL_BLOCK);
                    }
                }
            }
        }
    }

    /// Accounts one QECC cycle on a tile of `num_qubits` qubits whose
    /// microcode cycle is `cycle_len` words: under the software baseline
    /// the whole cycle crosses the bus (one byte per qubit per word,
    /// §3.3); under QuEST the MCE replays it locally for free.
    pub fn account_cycle(
        &self,
        master: &mut MasterController,
        num_qubits: usize,
        cycle_len: usize,
    ) {
        if self.mode == DeliveryMode::SoftwareBaseline {
            master.record_traffic(
                crate::bus::Traffic::QeccInstructions,
                (num_qubits * cycle_len) as u64,
            );
        }
    }

    /// Bytes one dispatched instruction adds to the bus in this mode
    /// (mode-independent today; kept on the engine so callers never
    /// hard-code it).
    pub fn instr_bytes(&self) -> u64 {
        LogicalInstr::ENCODED_BYTES as u64
    }

    /// The bus [`Traffic`](crate::bus::Traffic) class of a dispatched
    /// instruction class.
    pub fn traffic_of(&self, class: InstrClass) -> crate::bus::Traffic {
        traffic_class(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Traffic;
    use quest_isa::LogicalQubit;
    use quest_surface::RotatedLattice;

    fn setup() -> (MasterController, Mce) {
        let lat = RotatedLattice::new(3);
        (MasterController::new(), Mce::new(&lat, 65_536))
    }

    fn kernel(n: usize) -> Vec<LogicalInstr> {
        vec![LogicalInstr::H(LogicalQubit(0)); n]
    }

    #[test]
    fn uncached_kernel_pays_per_replay() {
        let (mut master, mut mce) = setup();
        let engine = DeliveryEngine::new(DeliveryMode::QuestMce);
        engine.kernel(&mut master, &mut mce, &kernel(10), 5);
        assert_eq!(master.bus().bytes(Traffic::Distillation), 10 * 5 * 2);
        assert_eq!(master.stats().dispatched, 50);
        assert_eq!(mce.instruction_pipeline().stats().issued, 50);
    }

    #[test]
    fn cached_kernel_pays_fill_once_plus_commands() {
        let (mut master, mut mce) = setup();
        let engine = DeliveryEngine::new(DeliveryMode::QuestMceCache);
        engine.kernel(&mut master, &mut mce, &kernel(10), 5);
        assert_eq!(master.bus().bytes(Traffic::CacheFill), 20);
        assert_eq!(master.bus().bytes(Traffic::Sync), 10);
        assert_eq!(master.bus().bytes(Traffic::Distillation), 0);
        assert_eq!(mce.instruction_pipeline().stats().issued, 50);
        // A second batch of replays reuses the resident block: no refill.
        engine.kernel(&mut master, &mut mce, &kernel(10), 2);
        assert_eq!(master.bus().bytes(Traffic::CacheFill), 20);
    }

    #[test]
    fn empty_kernel_and_zero_replays_are_free() {
        for mode in DeliveryMode::ALL {
            let (mut master, mut mce) = setup();
            let engine = DeliveryEngine::new(mode);
            engine.kernel(&mut master, &mut mce, &[], 100);
            engine.kernel(&mut master, &mut mce, &kernel(10), 0);
            assert_eq!(master.bus().total(), 0, "{mode:?}");
        }
    }

    #[test]
    fn remote_halves_match_combined_accounting() {
        for mode in DeliveryMode::ALL {
            let engine = DeliveryEngine::new(mode);
            let (mut combined, mut mce_combined) = setup();
            engine.dispatch(
                &mut combined,
                &mut mce_combined,
                LogicalInstr::H(LogicalQubit(0)),
                InstrClass::Algorithmic,
            );
            engine.kernel(&mut combined, &mut mce_combined, &kernel(7), 3);

            let (mut remote, mut mce_remote) = setup();
            engine.dispatch_remote(&mut remote, InstrClass::Algorithmic);
            engine.dispatch_local(&mut mce_remote, LogicalInstr::H(LogicalQubit(0)));
            let filled = engine.kernel_remote(&mut remote, 7, 3, false);
            engine.kernel_local(&mut mce_remote, &kernel(7), 3);
            if mode == DeliveryMode::QuestMceCache {
                assert!(filled, "first cache use must fill");
            }

            assert_eq!(combined.bus(), remote.bus(), "{mode:?}");
            assert_eq!(combined.stats(), remote.stats(), "{mode:?}");
            assert_eq!(
                mce_combined.instruction_pipeline().stats(),
                mce_remote.instruction_pipeline().stats(),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn only_the_baseline_pays_for_cycles() {
        let (mut master, _) = setup();
        DeliveryEngine::new(DeliveryMode::SoftwareBaseline).account_cycle(&mut master, 17, 6);
        assert_eq!(master.bus().bytes(Traffic::QeccInstructions), 17 * 6);
        let (mut master, _) = setup();
        DeliveryEngine::new(DeliveryMode::QuestMce).account_cycle(&mut master, 17, 6);
        DeliveryEngine::new(DeliveryMode::QuestMceCache).account_cycle(&mut master, 17, 6);
        assert_eq!(master.bus().total(), 0);
    }
}
