//! Technology parameters (Table 1 of the paper).
//!
//! Three superconducting-qubit parameter sets are evaluated:
//! `Experimental_S` (measured devices, Tomita & Svore), `Projected_F`
//! (Fowler's projections) and `Projected_D` (DiVincenzo's projections).

use std::fmt;

/// Qubit-technology timing parameters in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyParams {
    /// Parameter-set name.
    pub name: &'static str,
    /// State-preparation latency.
    pub t_prep: f64,
    /// Single-qubit gate latency.
    pub t_single: f64,
    /// Measurement latency.
    pub t_meas: f64,
    /// CNOT latency.
    pub t_cnot: f64,
    /// One full error-correction round.
    pub t_ecc_round: f64,
}

impl TechnologyParams {
    /// Measured superconducting devices (Table 1, `Experimental_S`).
    pub const EXPERIMENTAL_S: TechnologyParams = TechnologyParams {
        name: "Experimental_S",
        t_prep: 1e-6,
        t_single: 25e-9,
        t_meas: 1e-6,
        t_cnot: 100e-9,
        t_ecc_round: 2.42e-6,
    };

    /// Fowler projections (Table 1, `Projected_F`).
    pub const PROJECTED_F: TechnologyParams = TechnologyParams {
        name: "Projected_F",
        t_prep: 40e-9,
        t_single: 10e-9,
        t_meas: 35e-9,
        t_cnot: 80e-9,
        t_ecc_round: 405e-9,
    };

    /// DiVincenzo projections (Table 1, `Projected_D`).
    pub const PROJECTED_D: TechnologyParams = TechnologyParams {
        name: "Projected_D",
        t_prep: 40e-9,
        t_single: 5e-9,
        t_meas: 35e-9,
        t_cnot: 20e-9,
        t_ecc_round: 165e-9,
    };

    /// The three parameter sets in Table-1 order.
    pub const ALL: [TechnologyParams; 3] = [
        TechnologyParams::EXPERIMENTAL_S,
        TechnologyParams::PROJECTED_F,
        TechnologyParams::PROJECTED_D,
    ];

    /// The shortest instruction slot in the QECC cycle — the window within
    /// which the microcode pipeline must re-latch every qubit's µop (§4.5).
    pub fn min_slot(&self) -> f64 {
        self.t_single
            .min(self.t_cnot)
            .min(self.t_prep)
            .min(self.t_meas)
    }
}

impl fmt::Display for TechnologyParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Substrate operating rate assumed throughout the paper (§2.2, §3.3):
/// superconducting qubits operated at 100 MHz, i.e. one byte-sized physical
/// instruction per qubit per 10 ns.
pub const QUBIT_OP_RATE_HZ: f64 = 100e6;

/// Bytes per physical instruction (§3.3: "byte sized quantum
/// instructions").
pub const PHYS_INSTR_BYTES: f64 = 1.0;

/// Bytes per logical instruction (§5.3, after Balensiefer et al.).
pub const LOGICAL_INSTR_BYTES: f64 = 2.0;

/// Baseline software-managed instruction bandwidth for `n` physical qubits
/// in bytes/second: every qubit receives a byte-sized instruction at the
/// substrate operating rate (100 MB/s per qubit).
pub fn baseline_bandwidth_bytes_per_s(n_physical_qubits: f64) -> f64 {
    n_physical_qubits * QUBIT_OP_RATE_HZ * PHYS_INSTR_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let e = TechnologyParams::EXPERIMENTAL_S;
        assert_eq!(e.t_single, 25e-9);
        assert_eq!(e.t_cnot, 100e-9);
        assert_eq!(e.t_ecc_round, 2.42e-6);
        let d = TechnologyParams::PROJECTED_D;
        assert_eq!(d.t_single, 5e-9);
        assert_eq!(d.t_cnot, 20e-9);
        assert_eq!(d.t_ecc_round, 165e-9);
    }

    #[test]
    fn min_slot_is_single_qubit_gate_for_all_sets() {
        for t in TechnologyParams::ALL {
            assert_eq!(t.min_slot(), t.t_single, "{t}");
        }
    }

    #[test]
    fn paper_headline_bandwidth_examples() {
        // §3.3: one qubit at 100 MHz needs 100 MB/s.
        assert_eq!(baseline_bandwidth_bytes_per_s(1.0), 100e6);
        // §3.3: 100,000 qubits need 10 TB/s.
        assert_eq!(baseline_bandwidth_bytes_per_s(1e5), 1e13);
    }
}
