//! Property tests of the microarchitecture models: monotonicity and
//! consistency laws the paper's arguments rely on.

use proptest::prelude::*;
use quest_core::jj::MemoryConfig;
use quest_core::mask::MaskTable;
use quest_core::microcode::{bandwidth_limited_qubits, MicrocodeDesign};
use quest_core::TechnologyParams;
use quest_surface::SyndromeDesign;

fn syndrome_strategy() -> impl Strategy<Value = SyndromeDesign> {
    prop_oneof![
        Just(SyndromeDesign::STEANE),
        Just(SyndromeDesign::SHOR),
        Just(SyndromeDesign::SC17),
        Just(SyndromeDesign::SC13),
    ]
}

proptest! {
    /// RAM capacity is always at least FIFO capacity (address bits never
    /// help), and FIFO at least unit-cell beyond the unit-cell size.
    #[test]
    fn capacity_ordering(n in 32usize..100_000, syn in syndrome_strategy()) {
        let ram = MicrocodeDesign::Ram.capacity_bits(n, &syn, 4.0);
        let fifo = MicrocodeDesign::Fifo.capacity_bits(n, &syn, 4.0);
        let uc = MicrocodeDesign::UnitCell.capacity_bits(n, &syn, 4.0);
        prop_assert!(ram > fifo);
        if n * syn.cycle_depth > syn.microcode_uops {
            prop_assert!(fifo >= uc);
        }
    }

    /// Capacity-limited qubit counts are monotone in the memory size.
    #[test]
    fn capacity_limit_monotone_in_memory(
        bits_a in 1024usize..32_768,
        bits_b in 1024usize..32_768,
        syn in syndrome_strategy(),
    ) {
        let (lo, hi) = (bits_a.min(bits_b), bits_a.max(bits_b));
        for design in [MicrocodeDesign::Ram, MicrocodeDesign::Fifo] {
            let a = design.capacity_limited_qubits(lo, &syn, 4.0);
            let b = design.capacity_limited_qubits(hi, &syn, 4.0);
            prop_assert!(a <= b, "{design}: {a} qubits at {lo}b vs {b} at {hi}b");
        }
    }

    /// The capacity-limited count is exact: the reported count fits, one
    /// more does not.
    #[test]
    fn capacity_limit_is_tight(bits in 2048usize..65_536, syn in syndrome_strategy()) {
        for design in [MicrocodeDesign::Ram, MicrocodeDesign::Fifo] {
            let n = design.capacity_limited_qubits(bits, &syn, 4.0);
            prop_assert!(design.capacity_bits(n, &syn, 4.0) <= bits as f64);
            prop_assert!(design.capacity_bits(n + 1, &syn, 4.0) > bits as f64);
        }
    }

    /// Memory bandwidth grows with channel count at fixed total capacity,
    /// and the serviced-qubit count follows.
    #[test]
    fn bandwidth_monotone_in_channels(total_kb in 1usize..8) {
        let total = total_kb * 1024;
        let tech = TechnologyParams::PROJECTED_F;
        let mut last = 0;
        for channels in [1usize, 2, 4, 8] {
            if total % channels != 0 {
                continue;
            }
            let cfg = MemoryConfig::new(channels, total / channels);
            let n = bandwidth_limited_qubits(&cfg, &tech, 4.0);
            prop_assert!(n >= last, "{channels} channels served {n} < {last}");
            last = n;
        }
    }

    /// Mask coalescing always stores exactly ceil(N / region) bits and
    /// region masking covers exactly its members.
    #[test]
    fn mask_coalescing_laws(n in 1usize..10_000, region in 1usize..200) {
        let mut m = MaskTable::coalesced(n, region);
        prop_assert_eq!(m.storage_bits(), n.div_ceil(region));
        if m.num_regions() > 0 {
            let r = m.num_regions() - 1;
            m.set_region(r, true);
            let expected: usize = (0..n).filter(|&q| q / region == r).count();
            prop_assert_eq!(m.masked_count(), expected);
        }
    }

    /// JJ counts and power are positive and monotone-ish in capacity for
    /// the approximate model (non-anchor configurations).
    #[test]
    fn jj_model_sane(channels in 1usize..16, bank_kb in 1usize..8) {
        let cfg = MemoryConfig::new(channels, bank_kb * 1024 + 8);
        prop_assert!(cfg.jj_count() > 0);
        prop_assert!(cfg.power_w() > 0.0);
        let bigger = MemoryConfig::new(channels, bank_kb * 2048 + 8);
        prop_assert!(bigger.jj_count() >= cfg.jj_count());
    }

    /// Faster qubit technologies never increase the serviced-qubit count
    /// (less streaming time per slot).
    #[test]
    fn throughput_monotone_in_slot_time(syn in syndrome_strategy()) {
        use quest_core::throughput::figure16_point;
        let exp = figure16_point(&syn, &TechnologyParams::EXPERIMENTAL_S);
        let f = figure16_point(&syn, &TechnologyParams::PROJECTED_F);
        let d = figure16_point(&syn, &TechnologyParams::PROJECTED_D);
        prop_assert!(exp >= f && f >= d);
    }
}
