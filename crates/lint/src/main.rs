//! The `quest-lint` binary: `cargo run --release -p quest-lint`.
//!
//! Walks the workspace (the current directory, or `--root <path>`)
//! under the policy in `lint.toml` (or `--policy <path>`) and prints
//! one `file:line: RULE: message` diagnostic per finding. Exit code 0
//! means clean, 1 means findings, 2 means the tool itself could not run.

#![forbid(unsafe_code)]

use quest_lint::{run, Policy};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    policy: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut policy: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(argv.next().ok_or("--root needs a path")?);
            }
            "--policy" => {
                policy = Some(PathBuf::from(argv.next().ok_or("--policy needs a path")?));
            }
            "--help" | "-h" => {
                return Err("usage: quest-lint [--root <dir>] [--policy <lint.toml>]".to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let policy = policy.unwrap_or_else(|| root.join("lint.toml"));
    Ok(Args { root, policy })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let policy = match Policy::load(&args.policy) {
        Ok(policy) => policy,
        Err(e) => {
            eprintln!("quest-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&args.root, &policy) {
        Ok(diags) if diags.is_empty() => {
            println!("quest-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("quest-lint: {} diagnostic(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("quest-lint: {e}");
            ExitCode::from(2)
        }
    }
}
