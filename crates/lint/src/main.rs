//! The `quest-lint` binary: `cargo run --release -p quest-lint`.
//!
//! Walks the workspace (the current directory, or `--root <path>`)
//! under the policy in `lint.toml` (or `--policy <path>`) and reports
//! findings, `file:line: RULE: message` by default or machine-readable
//! JSON with `--format json`. With `--baseline <file>`, committed
//! findings are subtracted and only *new* ones are reported
//! (`--write-baseline` refreshes the file from the current findings).
//! `--timing` prints per-pass wall times to stderr. Exit code 0 means
//! clean (no non-baselined findings), 1 means findings, 2 means the
//! tool itself could not run.

#![forbid(unsafe_code)]

use quest_lint::{baseline, diag, run_timed, Policy};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    policy: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    timing: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

const USAGE: &str = "usage: quest-lint [--root <dir>] [--policy <lint.toml>] \
                     [--format text|json] [--baseline <file>] [--write-baseline] [--timing]";

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut policy: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut timing = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(argv.next().ok_or("--root needs a path")?);
            }
            "--policy" => {
                policy = Some(PathBuf::from(argv.next().ok_or("--policy needs a path")?));
            }
            "--format" => {
                format = match argv.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!("--format expects text|json, got {other:?}"));
                    }
                };
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(argv.next().ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => write_baseline = true,
            "--timing" => timing = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if write_baseline && baseline.is_none() {
        return Err("--write-baseline needs --baseline <file>".to_string());
    }
    let policy = policy.unwrap_or_else(|| root.join("lint.toml"));
    Ok(Args {
        root,
        policy,
        format,
        baseline,
        write_baseline,
        timing,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let policy = match Policy::load(&args.policy) {
        Ok(policy) => policy,
        Err(e) => {
            eprintln!("quest-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let (diags, timings) = match run_timed(&args.root, &policy) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("quest-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.timing {
        for t in &timings {
            eprintln!("quest-lint: pass {:<8} {:>9.3?}", t.name, t.elapsed);
        }
    }
    if args.write_baseline {
        let path = args.baseline.as_deref().expect("checked in parse_args");
        if let Err(e) = std::fs::write(path, diag::to_json(&diags)) {
            eprintln!("quest-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "quest-lint: wrote {} finding(s) to baseline {}",
            diags.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline_keys: BTreeSet<String> = match args.baseline.as_deref() {
        Some(path) => match baseline::load(path) {
            Ok(keys) => keys,
            Err(e) => {
                eprintln!("quest-lint: {e}");
                return ExitCode::from(2);
            }
        },
        None => BTreeSet::new(),
    };
    let (fresh, suppressed) = baseline::filter(diags, &baseline_keys);
    match args.format {
        Format::Json => print!("{}", diag::to_json(&fresh)),
        Format::Text => {
            for d in &fresh {
                println!("{d}");
            }
            if fresh.is_empty() {
                if suppressed > 0 {
                    println!("quest-lint: clean ({suppressed} baselined finding(s) suppressed)");
                } else {
                    println!("quest-lint: clean");
                }
            } else {
                println!("quest-lint: {} diagnostic(s)", fresh.len());
            }
        }
    }
    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
