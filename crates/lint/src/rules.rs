//! The rule implementations, plus the allow-comment escape hatch.
//!
//! Every rule works on the token stream of [`crate::lexer`], with test
//! code stripped (`#[cfg(test)]` items and `#[test]` functions are out
//! of scope by definition — the invariants protect the *production*
//! control plane). A site can opt out with
//!
//! ```text
//! // quest-lint: allow(QL01) -- deliberate fault injection drill
//! ```
//!
//! on the offending line or the comment line(s) directly above it. The
//! `-- reason` is mandatory; an allow without a justification is itself
//! a diagnostic (QL00).

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// Identifiers whose macro invocation QL01 bans (`name!`).
const QL01_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
/// Method names QL01 bans (`.name(`).
const QL01_METHODS: [&str; 2] = ["unwrap", "expect"];
/// Container type names QL02 bans on the report/decode/fault path.
const QL02_CONTAINERS: [&str; 2] = ["HashMap", "HashSet"];
/// Wall-clock / ambient-randomness identifiers QL02 bans outside the
/// allow-listed stats module.
const QL02_CLOCKS: [&str; 5] = [
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "thread_rng",
    "ThreadRng",
];
/// Narrowing cast targets QL03 bans in wire-format files (`as u8` …).
const QL03_NARROW: [&str; 3] = ["u8", "u16", "u32"];

/// Allow-comments parsed out of one file.
#[derive(Debug, Default)]
pub struct Allows {
    /// line → rules allowed on that line (and on the line below, through
    /// a contiguous run of allow comments).
    by_line: BTreeMap<u32, BTreeSet<RuleId>>,
    /// Lines that are allow comments (for the contiguous-run walk).
    comment_lines: BTreeSet<u32>,
}

impl Allows {
    /// True when `rule` is allowed at `line`: an allow on the same line
    /// (trailing comment) or in the unbroken run of allow-comment lines
    /// directly above.
    pub fn covers(&self, rule: RuleId, line: u32) -> bool {
        if self.by_line.get(&line).is_some_and(|r| r.contains(&rule)) {
            return true;
        }
        let mut l = line;
        while l > 1 && self.comment_lines.contains(&(l - 1)) {
            l -= 1;
            if self.by_line.get(&l).is_some_and(|r| r.contains(&rule)) {
                return true;
            }
        }
        false
    }
}

/// Scans comment tokens for `quest-lint:` control comments. Returns the
/// parsed allows and a QL00 diagnostic for every malformed one.
pub fn parse_allows(tokens: &[Token], path: &str) -> (Allows, Vec<Diagnostic>) {
    let mut allows = Allows::default();
    let mut diags = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        let Some(rest) = tok.text.split("quest-lint:").nth(1) else {
            continue;
        };
        match parse_allow_body(rest) {
            Ok(rule) => {
                allows.by_line.entry(tok.line).or_default().insert(rule);
                allows.comment_lines.insert(tok.line);
            }
            Err(msg) => diags.push(Diagnostic {
                rule: RuleId::QL00,
                path: path.to_string(),
                line: tok.line,
                message: msg,
            }),
        }
    }
    (allows, diags)
}

/// Parses `allow(QLxx) -- reason` (the text after `quest-lint:`).
fn parse_allow_body(rest: &str) -> Result<RuleId, String> {
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "unrecognized quest-lint control comment `{}` (expected `allow(<rule>) -- <reason>`)",
            rest.trim()
        ));
    };
    let Some((name, tail)) = args.split_once(')') else {
        return Err("unterminated allow(…)".to_string());
    };
    let Some(rule) = RuleId::from_name(name.trim()) else {
        return Err(format!("unknown rule `{}` in allow(…)", name.trim()));
    };
    let tail = tail.trim_start();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "allow({rule}) requires a justification: `allow({rule}) -- <reason>`"
        ));
    }
    Ok(rule)
}

fn diag(rule: RuleId, path: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: path.to_string(),
        line,
        message,
    }
}

/// Next non-comment token at or after `i`.
fn next_code(tokens: &[Token], mut i: usize) -> Option<&Token> {
    while let Some(t) = tokens.get(i) {
        if t.kind != TokenKind::Comment {
            return Some(t);
        }
        i += 1;
    }
    None
}

/// Previous non-comment token at or before `i` (or `None`).
fn prev_code(tokens: &[Token], i: usize) -> Option<&Token> {
    tokens[..i]
        .iter()
        .rev()
        .find(|t| t.kind != TokenKind::Comment)
}

/// Checks one file against the token-level rules the policy puts it in
/// scope for. `code` must already be comment-free and test-stripped
/// (the orchestrator in [`crate::run`] lexes and strips each file once
/// for all passes); `allows` comes from [`parse_allows`] over the full
/// stream.
pub fn check_tokens(
    code: &[Token],
    allows: &Allows,
    path: &str,
    ql01: bool,
    ql02_containers: bool,
    ql02_clocks: bool,
    ql03: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        let mut report = |rule: RuleId, message: String| {
            if !allows.covers(rule, tok.line) {
                diags.push(diag(rule, path, tok.line, message));
            }
        };
        if ql01 {
            if QL01_METHODS.contains(&name)
                && prev_code(code, i).is_some_and(|t| t.is_punct('.'))
                && next_code(code, i + 1).is_some_and(|t| t.is_punct('('))
            {
                report(
                    RuleId::QL01,
                    format!(".{name}( in panic-free code — return a typed error instead"),
                );
            }
            if QL01_MACROS.contains(&name)
                && next_code(code, i + 1).is_some_and(|t| t.is_punct('!'))
            {
                report(
                    RuleId::QL01,
                    format!("{name}! in panic-free code — return a typed error instead"),
                );
            }
        }
        if ql02_containers && QL02_CONTAINERS.contains(&name) {
            report(
                RuleId::QL02,
                format!(
                    "{name} on the report/decode/fault path leaks iteration order — \
                     use BTreeMap/BTreeSet or sort before draining"
                ),
            );
        }
        if ql02_clocks && QL02_CLOCKS.contains(&name) {
            report(
                RuleId::QL02,
                format!(
                    "{name} outside the wall-clock stats module breaks run \
                     reproducibility — route timing through quest_runtime::stats"
                ),
            );
        }
        if ql03
            && name == "as"
            && next_code(code, i + 1).is_some_and(|t| {
                t.kind == TokenKind::Ident && QL03_NARROW.contains(&t.text.as_str())
            })
        {
            let target = next_code(code, i + 1).map_or("?", |t| t.text.as_str());
            report(
                RuleId::QL03,
                format!(
                    "bare `as {target}` narrowing cast in a wire-format file can \
                     silently truncate a CRC-sealed field — use try_from with a typed error"
                ),
            );
        }
    }
    diags
}

/// QL04 for one crate directory: the manifest must opt into
/// `[workspace.lints]` and every crate root must `#![forbid(unsafe_code)]`.
pub fn check_crate_hygiene(root: &std::path::Path, crate_rel: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let dir = root.join(crate_rel);
    let manifest_rel = join_rel(crate_rel, "Cargo.toml");
    match std::fs::read_to_string(dir.join("Cargo.toml")) {
        Ok(manifest) => {
            if !manifest_inherits_workspace_lints(&manifest) {
                diags.push(diag(
                    RuleId::QL04,
                    &manifest_rel,
                    0,
                    "crate does not inherit [workspace.lints] (add `[lints]\\nworkspace = true`)"
                        .to_string(),
                ));
            }
        }
        Err(e) => diags.push(diag(
            RuleId::QL04,
            &manifest_rel,
            0,
            format!("cannot read manifest: {e}"),
        )),
    }
    for crate_root in crate_roots(&dir) {
        let rel = join_rel(crate_rel, &crate_root);
        match std::fs::read_to_string(dir.join(&crate_root)) {
            Ok(src) => {
                if !has_forbid_unsafe(&crate::lexer::lex(&src)) {
                    diags.push(diag(
                        RuleId::QL04,
                        &rel,
                        1,
                        "crate root lacks #![forbid(unsafe_code)]".to_string(),
                    ));
                }
            }
            Err(e) => diags.push(diag(RuleId::QL04, &rel, 0, format!("cannot read: {e}"))),
        }
    }
    diags
}

fn join_rel(base: &str, tail: &str) -> String {
    if base == "." {
        tail.to_string()
    } else {
        format!("{base}/{tail}")
    }
}

/// The crate-root source files of a crate directory (relative to it).
fn crate_roots(dir: &std::path::Path) -> Vec<String> {
    let mut roots = Vec::new();
    for candidate in ["src/lib.rs", "src/main.rs"] {
        if dir.join(candidate).is_file() {
            roots.push(candidate.to_string());
        }
    }
    if let Ok(entries) = std::fs::read_dir(dir.join("src/bin")) {
        let mut bins: Vec<String> = entries
            .filter_map(Result::ok)
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".rs"))
            .map(|n| format!("src/bin/{n}"))
            .collect();
        bins.sort();
        roots.append(&mut bins);
    }
    roots
}

/// Minimal manifest check: a `[lints]` section containing
/// `workspace = true` before the next section header.
fn manifest_inherits_workspace_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
            continue;
        }
        if in_lints {
            let mut parts = line.splitn(2, '=');
            let key = parts.next().unwrap_or("").trim();
            let value = parts.next().unwrap_or("").trim();
            if key == "workspace" && value == "true" {
                return true;
            }
        }
    }
    false
}

/// Looks for the inner attribute `#![forbid(… unsafe_code …)]`.
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    for i in 0..code.len().saturating_sub(4) {
        if code[i].is_punct('#')
            && code[i + 1].is_punct('!')
            && code[i + 2].is_punct('[')
            && code[i + 3].is_ident("forbid")
            && code[i + 4].is_punct('(')
        {
            // Scan the forbid(…) argument list for unsafe_code.
            for t in &code[i + 4..] {
                if t.is_ident("unsafe_code") {
                    return true;
                }
                if t.is_punct(']') {
                    break;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};

    /// Lexes, strips, and checks like the orchestrator does, merging
    /// QL00 diagnostics from the allow parse.
    fn check_src(
        src: &str,
        ql01: bool,
        ql02_containers: bool,
        ql02_clocks: bool,
        ql03: bool,
    ) -> Vec<Diagnostic> {
        let tokens = lex(src);
        let (allows, mut diags) = parse_allows(&tokens, "f.rs");
        let code: Vec<Token> = strip_test_code(&tokens)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        diags.extend(check_tokens(
            &code,
            &allows,
            "f.rs",
            ql01,
            ql02_containers,
            ql02_clocks,
            ql03,
        ));
        diags
    }

    fn check_ql01(src: &str) -> Vec<Diagnostic> {
        check_src(src, true, false, false, false)
    }

    #[test]
    fn ql01_flags_unwrap_expect_and_panic_macros() {
        let diags = check_ql01("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); }");
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.rule == RuleId::QL01));
    }

    #[test]
    fn ql01_ignores_lookalikes() {
        // unwrap_or / attribute expect / panic path / assert are fine.
        let src = "fn f() { x.unwrap_or(0); std::panic::catch_unwind(g); assert!(true); }\n\
                   #[expect(dead_code)]\nfn g() {}";
        assert!(check_ql01(src).is_empty());
    }

    #[test]
    fn ql01_skips_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); panic!(); }\n}";
        assert!(check_ql01(src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f() {\n // quest-lint: allow(QL01) -- drill\n panic!(\"injected\");\n}";
        assert!(check_ql01(src).is_empty());
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = "fn f() { panic!(); } // quest-lint: allow(QL01) -- drill";
        assert!(check_ql01(src).is_empty());
    }

    #[test]
    fn stacked_allows_reach_through_each_other() {
        let src = "fn f() {\n\
                   // quest-lint: allow(QL01) -- drill\n\
                   // quest-lint: allow(QL02) -- order-independent\n\
                   panic!();\n}";
        assert!(check_ql01(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_ql00_and_does_not_suppress() {
        let src = "fn f() {\n // quest-lint: allow(QL01)\n panic!();\n}";
        let diags = check_ql01(src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == RuleId::QL00));
        assert!(diags.iter().any(|d| d.rule == RuleId::QL01));
    }

    #[test]
    fn allow_for_the_wrong_rule_does_not_suppress() {
        let src = "fn f() {\n // quest-lint: allow(QL02) -- wrong rule\n panic!();\n}";
        let diags = check_ql01(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::QL01);
    }

    #[test]
    fn ql02_flags_containers_and_clocks() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }";
        let diags = check_src(src, false, true, true, false);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == RuleId::QL02));
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 2);
    }

    #[test]
    fn ql03_flags_only_narrowing_casts() {
        let src = "fn f(x: u64) { let a = x as u16; let b = x as u64; let c = x as usize; }";
        let diags = check_src(src, false, false, false, true);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::QL03);
        assert!(diags[0].message.contains("as u16"));
    }

    #[test]
    fn manifest_lints_detection() {
        assert!(manifest_inherits_workspace_lints(
            "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n"
        ));
        assert!(!manifest_inherits_workspace_lints(
            "[package]\nname = \"x\"\n"
        ));
        assert!(!manifest_inherits_workspace_lints(
            "[lints]\n# workspace = true\n"
        ));
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(has_forbid_unsafe(&lex(
            "#![forbid(unsafe_code)]\nfn f() {}"
        )));
        assert!(has_forbid_unsafe(&lex(
            "//! Docs.\n#![forbid(missing_docs, unsafe_code)]"
        )));
        assert!(!has_forbid_unsafe(&lex("#![deny(unsafe_code)]")));
        assert!(!has_forbid_unsafe(&lex("#![forbid(missing_docs)]")));
        assert!(!has_forbid_unsafe(&lex("// #![forbid(unsafe_code)]")));
    }
}
