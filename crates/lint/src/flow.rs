//! Per-function control-flow summaries over the item AST.
//!
//! Three analyses live here, all feeding the flow-aware passes:
//!
//! * **Guard scopes** ([`analyze_fn`]) — where each Mutex/Condvar guard
//!   is acquired and how far it lives. A let-bound guard is held to the
//!   end of its enclosing block (or an explicit `drop(name)`); a
//!   temporary guard is held to the end of its statement, including the
//!   extended scope of an `if let`/`match` scrutinee.
//! * **Call sites** — the plain `name(…)`/`recv.name(…)` calls of a
//!   body, the raw material for the cross-crate call graph QL05 closes
//!   transitively.
//! * **Pattern masks** ([`pattern_mask`]) — which identifier tokens sit
//!   in *pattern* position (match arms, `let`/`if let`/`while let`
//!   bindings, `for` bindings, `matches!` second arguments). A
//!   `Enum::Variant` path in pattern position is a receive-side match;
//!   anywhere else it is a construction. QL06/QL08 are built on exactly
//!   this distinction.

use crate::ast::find_matching;
use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One lock-acquisition signature from `[ql05] locks`, written
/// `class @ scope :: recv.method`: a call `recv.method(…)` in a file
/// under `scope` acquires a lock of `class`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSig {
    /// Lock class the acquisition belongs to (`queue`, `ledger`, …).
    pub class: String,
    /// Path prefix (workspace-relative) the signature applies in.
    pub scope: String,
    /// Receiver identifier directly before the method (`inner`, `self`).
    pub recv: String,
    /// Method identifier (`lock`, or a locking helper like `quotas`).
    pub method: String,
}

/// Parses the `[ql05] locks` signature list.
pub fn parse_lock_sigs(raw: &[String]) -> Result<Vec<LockSig>, String> {
    let mut sigs = Vec::new();
    for entry in raw {
        let bad = || {
            format!("malformed [ql05] lock signature `{entry}` (expected `class @ scope :: recv.method`)")
        };
        let (class, rest) = entry.split_once('@').ok_or_else(bad)?;
        let (scope, call) = rest.split_once("::").ok_or_else(bad)?;
        let (recv, method) = call.split_once('.').ok_or_else(bad)?;
        let sig = LockSig {
            class: class.trim().to_string(),
            scope: scope.trim().to_string(),
            recv: recv.trim().to_string(),
            method: method.trim().to_string(),
        };
        if sig.class.is_empty()
            || sig.scope.is_empty()
            || sig.recv.is_empty()
            || sig.method.is_empty()
        {
            return Err(bad());
        }
        sigs.push(sig);
    }
    Ok(sigs)
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquisition {
    /// Lock class acquired.
    pub class: String,
    /// Token index of the matched method identifier.
    pub token: usize,
    /// 1-indexed source line.
    pub line: u32,
    /// Token index bounding the guard's life: acquisitions and calls
    /// with `token < t <= scope_end` happen while this guard is held.
    pub scope_end: usize,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Called name (`push`, `admit`, …) — resolution happens later
    /// against the cross-crate index.
    pub name: String,
    /// Token index of the name.
    pub token: usize,
    /// 1-indexed source line.
    pub line: u32,
}

/// The flow summary of one function body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnFlow {
    /// Lock acquisitions with their guard scopes, in token order.
    pub acqs: Vec<Acquisition>,
    /// Call sites in token order, acquisition sites excluded (a locking
    /// helper call is an acquisition, not a call edge — counting it as
    /// both would fabricate self-edges).
    pub calls: Vec<CallSite>,
}

/// Identifiers that look like calls (`kw (…)`) but are control flow.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "else", "while", "match", "for", "loop", "return", "in", "as", "move", "mut", "let",
    "fn", "await",
];

/// Summarizes one function body: acquisitions (per the file-applicable
/// signatures) with guard scopes, plus call sites.
pub fn analyze_fn(code: &[Token], body: (usize, usize), sigs: &[&LockSig]) -> FnFlow {
    let (open, close) = body;
    let mut flow = FnFlow::default();
    let mut acq_tokens = BTreeSet::new();
    for i in open + 1..close {
        if code[i].kind != TokenKind::Ident {
            continue;
        }
        let is_acq = sigs.iter().any(|s| {
            code[i].text == s.method
                && code.get(i + 1).is_some_and(|t| t.is_punct('('))
                && i >= 2
                && code[i - 1].is_punct('.')
                && code[i - 2].is_ident(&s.recv)
        });
        if !is_acq {
            continue;
        }
        let class = sigs
            .iter()
            .find(|s| code[i].text == s.method && code[i - 2].is_ident(&s.recv))
            .map(|s| s.class.clone())
            .unwrap_or_default();
        let scope_end = guard_scope_end(code, open, close, i);
        acq_tokens.insert(i);
        flow.acqs.push(Acquisition {
            class,
            token: i,
            line: code[i].line,
            scope_end,
        });
    }
    for i in open + 1..close {
        if code[i].kind != TokenKind::Ident
            || acq_tokens.contains(&i)
            || NON_CALL_KEYWORDS.contains(&code[i].text.as_str())
        {
            continue;
        }
        // A call is `name(` — macros are `name!(` and never match.
        if code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            flow.calls.push(CallSite {
                name: code[i].text.clone(),
                token: i,
                line: code[i].line,
            });
        }
    }
    flow
}

/// The last token index at which the guard acquired at `acq` (the
/// method-identifier token) is still held.
fn guard_scope_end(code: &[Token], open: usize, close: usize, acq: usize) -> usize {
    // Walk the receiver chain left: `self.shared.inner.lock` starts the
    // expression at `self`.
    let mut j = acq - 2;
    while j >= open + 3 && code[j - 1].is_punct('.') && code[j - 2].kind == TokenKind::Ident {
        j -= 2;
    }
    // A let-bound guard: `let [mut] name = <chain>` lives to the end of
    // the enclosing block, or to an explicit `drop(name)`.
    if j >= open + 3 && code[j - 1].is_punct('=') && !code[j - 2].kind_is_punct() {
        let name_idx = j - 2;
        let mut k = name_idx.saturating_sub(1);
        if code[k].is_ident("mut") && k > open {
            k -= 1;
        }
        if code[k].is_ident("let") {
            let name = code[name_idx].text.as_str();
            let mut stack = vec![open];
            for (idx, t) in code.iter().enumerate().take(j).skip(open + 1) {
                if t.is_punct('{') {
                    stack.push(idx);
                } else if t.is_punct('}') {
                    stack.pop();
                }
            }
            let encl = *stack.last().unwrap_or(&open);
            let mut end = find_matching(code, encl, close + 1).min(close);
            for s in acq..end.saturating_sub(3) {
                if code[s].is_ident("drop")
                    && code[s + 1].is_punct('(')
                    && code[s + 2].is_ident(name)
                    && code[s + 3].is_punct(')')
                {
                    end = s;
                    break;
                }
            }
            return end;
        }
    }
    // A temporary guard: held to the end of the statement — the first
    // `;` back at the acquisition's brace depth, or the `}` that closes
    // either the enclosing block or a block entered at that depth (the
    // `if let`/`match` scrutinee temporary-scope extension).
    let mut depth = 0i32;
    for (s, t) in code.iter().enumerate().take(close).skip(acq + 1) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                if depth <= 1 {
                    return s;
                }
                depth -= 1;
            }
            TokenKind::Punct(';') if depth == 0 => return s,
            _ => {}
        }
    }
    close
}

impl Token {
    /// True when the token is any punctuation (used to tell a let
    /// binding `name =` from compound operators like `+=`/`==`).
    fn kind_is_punct(&self) -> bool {
        matches!(self.kind, TokenKind::Punct(_))
    }
}

/// Marks which identifier tokens sit in pattern position. See the
/// module docs for the grammar subset covered.
pub fn pattern_mask(code: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    scan_region(code, 0, code.len(), &mut mask);
    mask
}

/// Processes an expression/statement region, recursing into the
/// pattern-introducing constructs.
fn scan_region(code: &[Token], start: usize, end: usize, mask: &mut [bool]) {
    let mut i = start;
    while i < end {
        let t = &code[i];
        if t.is_ident("match") {
            // Scrutinee up to the body `{` at paren/bracket depth 0 (a
            // bare struct literal is not legal in a scrutinee).
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < end {
                match code[j].kind {
                    TokenKind::Punct('(' | '[') => depth += 1,
                    TokenKind::Punct(')' | ']') => depth -= 1,
                    TokenKind::Punct('{') if depth == 0 => break,
                    TokenKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= end || !code[j].is_punct('{') {
                i = j;
                continue;
            }
            scan_region(code, i + 1, j, mask);
            i = scan_match_body(code, j, end, mask);
        } else if t.is_ident("let") {
            // `let PAT = …` / `if let PAT = …` / `while let PAT = …`:
            // pattern until the `=` (or `;` for `let x;`).
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < end {
                match code[j].kind {
                    TokenKind::Punct('(' | '[' | '{') => depth += 1,
                    TokenKind::Punct(')' | ']' | '}') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    TokenKind::Punct('=' | ';') if depth == 0 => break,
                    TokenKind::Ident => mask[j] = true,
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
        } else if t.is_ident("impl") || t.is_ident("trait") {
            // Item headers contain `for` (`impl Display for T`) and
            // bound keywords that must not be mistaken for loop
            // patterns: skip the header, then keep scanning inside the
            // body normally.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < end {
                match code[j].kind {
                    TokenKind::Punct('(' | '[') => depth += 1,
                    TokenKind::Punct(')' | ']') => depth -= 1,
                    TokenKind::Punct('{' | ';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
        } else if t.is_ident("for") {
            // `for PAT in …` — but `for<'a>` bounds introduce no pattern.
            if code.get(i + 1).is_some_and(|n| n.is_punct('<')) {
                i += 1;
                continue;
            }
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < end {
                match code[j].kind {
                    TokenKind::Punct('(' | '[' | '{') => depth += 1,
                    TokenKind::Punct(')' | ']' | '}') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    // `;` bounds a runaway scan: a loop pattern never
                    // contains a statement boundary.
                    TokenKind::Punct(';') if depth == 0 => break,
                    TokenKind::Ident if code[j].text == "in" && depth == 0 => break,
                    TokenKind::Ident => mask[j] = true,
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
        } else if t.is_ident("matches")
            && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && code.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let open = i + 2;
            let close = find_matching(code, open, end);
            // First `,` at depth 1 separates scrutinee from pattern.
            let mut depth = 0i32;
            let mut comma = None;
            for (k, t) in code.iter().enumerate().take(close).skip(open) {
                match t.kind {
                    TokenKind::Punct('(' | '[' | '{') => depth += 1,
                    TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                    TokenKind::Punct(',') if depth == 1 => {
                        comma = Some(k);
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(c) = comma {
                scan_region(code, open + 1, c, mask);
                let mut depth = 0i32;
                let mut k = c + 1;
                while k < close {
                    match code[k].kind {
                        TokenKind::Punct('(' | '[' | '{') => depth += 1,
                        TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                        TokenKind::Ident if code[k].text == "if" && depth == 0 => {
                            // Guard: the rest is an expression.
                            scan_region(code, k + 1, close, mask);
                            break;
                        }
                        TokenKind::Ident => mask[k] = true,
                        _ => {}
                    }
                    k += 1;
                }
            }
            i = close + 1;
        } else {
            i += 1;
        }
    }
}

/// Processes a `match` body starting at its `{`, marking arm patterns
/// and recursing into guards and arm bodies. Returns the index past the
/// closing `}`.
fn scan_match_body(code: &[Token], open: usize, end: usize, mask: &mut [bool]) -> usize {
    let close = find_matching(code, open, end);
    let mut i = open + 1;
    while i < close {
        // Pattern section: mark until `=>` (or an `if` guard) at depth 0.
        let mut depth = 0i32;
        let mut arrow = None;
        while i < close {
            match code[i].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                TokenKind::Punct('=')
                    if depth == 0 && code.get(i + 1).is_some_and(|n| n.is_punct('>')) =>
                {
                    arrow = Some(i);
                    break;
                }
                TokenKind::Ident if code[i].text == "if" && depth == 0 => {
                    // Guard expression runs to the arrow.
                    let guard_start = i + 1;
                    let mut d = 0i32;
                    let mut k = guard_start;
                    while k < close {
                        match code[k].kind {
                            TokenKind::Punct('(' | '[' | '{') => d += 1,
                            TokenKind::Punct(')' | ']' | '}') => d -= 1,
                            TokenKind::Punct('=')
                                if d == 0 && code.get(k + 1).is_some_and(|n| n.is_punct('>')) =>
                            {
                                break;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    scan_region(code, guard_start, k, mask);
                    if k < close {
                        arrow = Some(k);
                    }
                    break;
                }
                TokenKind::Ident => mask[i] = true,
                _ => {}
            }
            i += 1;
        }
        let Some(a) = arrow else {
            break;
        };
        let body_start = a + 2;
        if body_start >= close {
            break;
        }
        if code[body_start].is_punct('{') {
            let body_close = find_matching(code, body_start, close);
            scan_region(code, body_start + 1, body_close, mask);
            i = body_close + 1;
            if i < close && code[i].is_punct(',') {
                i += 1;
            }
        } else {
            // Expression body runs to the `,` at depth 0 (or the match
            // close).
            let mut d = 0i32;
            let mut k = body_start;
            while k < close {
                match code[k].kind {
                    TokenKind::Punct('(' | '[' | '{') => d += 1,
                    TokenKind::Punct(')' | ']' | '}') => d -= 1,
                    TokenKind::Punct(',') if d == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            scan_region(code, body_start, k, mask);
            i = k + 1;
        }
    }
    close + 1
}

/// One qualified `Enum::Variant` occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantUse {
    /// Enum name.
    pub enum_name: String,
    /// Variant name.
    pub variant: String,
    /// Token index of the variant identifier.
    pub token: usize,
    /// 1-indexed source line.
    pub line: u32,
    /// True when the occurrence sits in pattern position (a receive-side
    /// match); false for a construction.
    pub is_pattern: bool,
}

/// Finds every qualified `Enum::Variant` path for the given enums and
/// classifies it via the pattern mask.
pub fn variant_uses(
    code: &[Token],
    mask: &[bool],
    enums: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<VariantUse> {
    let mut uses = Vec::new();
    for i in 0..code.len().saturating_sub(3) {
        if code[i].kind != TokenKind::Ident {
            continue;
        }
        let Some(variants) = enums.get(&code[i].text) else {
            continue;
        };
        if code[i + 1].is_punct(':')
            && code[i + 2].is_punct(':')
            && code[i + 3].kind == TokenKind::Ident
            && variants.contains(&code[i + 3].text)
        {
            uses.push(VariantUse {
                enum_name: code[i].text.clone(),
                variant: code[i + 3].text.clone(),
                token: i + 3,
                line: code[i + 3].line,
                is_pattern: mask[i] || mask[i + 3],
            });
        }
    }
    uses
}

/// One bare arithmetic op on a listed counter field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterOp {
    /// Field name.
    pub field: String,
    /// The operator as written (`+=`, `+`, `-`, `*`, …).
    pub op: String,
    /// 1-indexed source line.
    pub line: u32,
}

/// Finds `.field +`/`.field +=`/`.field -`/`.field *` patterns on the
/// listed counter fields — bare arithmetic a saturating/checked helper
/// should replace. Left-hand-side occurrences only: `a + x.field` with
/// no flagged token before the op is out of reach of a token-local scan
/// (documented limitation).
pub fn counter_ops(code: &[Token], fields: &BTreeSet<String>) -> Vec<CounterOp> {
    let mut ops = Vec::new();
    for i in 1..code.len().saturating_sub(1) {
        if code[i].kind != TokenKind::Ident
            || !fields.contains(&code[i].text)
            || !code[i - 1].is_punct('.')
        {
            continue;
        }
        let op_char = match code[i + 1].kind {
            TokenKind::Punct(c @ ('+' | '-' | '*')) => c,
            _ => continue,
        };
        let compound = code.get(i + 2).is_some_and(|t| t.is_punct('='));
        let op = if compound {
            format!("{op_char}=")
        } else {
            op_char.to_string()
        };
        ops.push(CounterOp {
            field: code[i].text.clone(),
            op,
            line: code[i].line,
        });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code_of(src: &str) -> Vec<Token> {
        crate::lexer::strip_test_code(&lex(src))
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect()
    }

    fn flow_of(src: &str, sigs: &[LockSig]) -> FnFlow {
        let code = code_of(src);
        let ast = crate::ast::parse(&code);
        let refs: Vec<&LockSig> = sigs.iter().collect();
        analyze_fn(&code, ast.fns[0].body.expect("body"), &refs)
    }

    fn sig(class: &str, recv: &str, method: &str) -> LockSig {
        LockSig {
            class: class.into(),
            scope: ".".into(),
            recv: recv.into(),
            method: method.into(),
        }
    }

    #[test]
    fn let_bound_guard_lives_to_block_end() {
        let src = "fn f(&self) {\n    let inner = self.inner.lock();\n    use_it(inner);\n}\n";
        let flow = flow_of(src, &[sig("queue", "inner", "lock")]);
        assert_eq!(flow.acqs.len(), 1);
        let code = code_of(src);
        // Scope runs to the fn's closing brace.
        assert!(code[flow.acqs[0].scope_end].is_punct('}'));
    }

    #[test]
    fn explicit_drop_ends_a_guard_scope() {
        let src = "fn f(&self) {\n    let g = self.inner.lock();\n    g.touch();\n    drop(g);\n    self.other.lock();\n}\n";
        let sigs = [sig("a", "inner", "lock"), sig("b", "other", "lock")];
        let flow = flow_of(src, &sigs);
        assert_eq!(flow.acqs.len(), 2);
        let (a, b) = (&flow.acqs[0], &flow.acqs[1]);
        assert!(b.token > a.scope_end, "drop releases before second lock");
    }

    #[test]
    fn temporary_guard_ends_at_statement() {
        let src =
            "fn f(&self) {\n    self.inner.lock().closed = true;\n    self.other.lock();\n}\n";
        let sigs = [sig("a", "inner", "lock"), sig("b", "other", "lock")];
        let flow = flow_of(src, &sigs);
        assert!(flow.acqs[1].token > flow.acqs[0].scope_end);
    }

    #[test]
    fn if_let_temporary_guard_covers_the_block() {
        let src = "fn f(&self) {\n    if let Err(e) = self.quotas().admit(1) {\n        self.ledger.lock();\n    }\n    self.after.lock();\n}\n";
        let sigs = [
            sig("quotas", "self", "quotas"),
            sig("ledger", "ledger", "lock"),
            sig("after", "after", "lock"),
        ];
        let flow = flow_of(src, &sigs);
        assert_eq!(flow.acqs.len(), 3);
        let q = &flow.acqs[0];
        assert!(
            flow.acqs[1].token < q.scope_end,
            "ledger lock inside if-let scope"
        );
        assert!(flow.acqs[2].token > q.scope_end, "after lock outside it");
    }

    #[test]
    fn acquisition_sites_are_not_call_sites() {
        let src = "fn f(&self) {\n    let g = self.inner.lock();\n    helper(g);\n}\n";
        let flow = flow_of(src, &[sig("a", "inner", "lock")]);
        assert!(flow.calls.iter().all(|c| c.name != "lock"));
        assert!(flow.calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn pattern_mask_separates_matches_from_constructions() {
        let src = "fn f(m: Msg) -> Msg {\n    match m {\n        Msg::Ping => Msg::Pong,\n        Msg::Pong { code } if code > 0 => make(Msg::Ping),\n        _ => m,\n    }\n}\n";
        let code = code_of(src);
        let mask = pattern_mask(&code);
        let mut enums = BTreeMap::new();
        enums.insert(
            "Msg".to_string(),
            ["Ping", "Pong"].iter().map(ToString::to_string).collect(),
        );
        let uses = variant_uses(&code, &mask, &enums);
        let pat: Vec<&str> = uses
            .iter()
            .filter(|u| u.is_pattern)
            .map(|u| u.variant.as_str())
            .collect();
        let con: Vec<&str> = uses
            .iter()
            .filter(|u| !u.is_pattern)
            .map(|u| u.variant.as_str())
            .collect();
        assert_eq!(pat, vec!["Ping", "Pong"]);
        assert_eq!(con, vec!["Pong", "Ping"]);
    }

    #[test]
    fn let_and_matches_patterns_are_masked() {
        let src = "fn f(x: E) -> bool {\n    if let E::A(v) = x { return v; }\n    while let E::B = x {}\n    matches!(x, E::C | E::D if flag(E::A))\n}\n";
        let code = code_of(src);
        let mask = pattern_mask(&code);
        let mut enums = BTreeMap::new();
        enums.insert(
            "E".to_string(),
            ["A", "B", "C", "D"]
                .iter()
                .map(ToString::to_string)
                .collect(),
        );
        let uses = variant_uses(&code, &mask, &enums);
        let pats: Vec<(&str, bool)> = uses
            .iter()
            .map(|u| (u.variant.as_str(), u.is_pattern))
            .collect();
        assert_eq!(
            pats,
            vec![
                ("A", true),
                ("B", true),
                ("C", true),
                ("D", true),
                ("A", false),
            ]
        );
    }

    #[test]
    fn impl_for_headers_do_not_poison_the_pattern_mask() {
        // `for` in an impl header is not a loop: nothing after it may be
        // masked as a pattern, or every later construction would look
        // like a match arm.
        let src = "impl fmt::Display for S {\n    fn fmt(&self) {}\n}\nfn g() -> Msg {\n    Msg::Ping\n}\n";
        let code = code_of(src);
        let mask = pattern_mask(&code);
        let mut enums = BTreeMap::new();
        enums.insert(
            "Msg".to_string(),
            ["Ping"].iter().map(ToString::to_string).collect(),
        );
        let uses = variant_uses(&code, &mask, &enums);
        assert_eq!(uses.len(), 1);
        assert!(!uses[0].is_pattern, "construction after impl-for header");
    }

    #[test]
    fn counter_ops_flag_bare_arithmetic_only() {
        let src = "fn f(&mut self, n: u64) {\n    self.pops += 1;\n    self.cycles = self.cycles + n;\n    self.safe = self.safe.saturating_add(n);\n    self.pops.cmp(&n);\n}\n";
        let code = code_of(src);
        let fields: BTreeSet<String> = ["pops", "cycles"].iter().map(ToString::to_string).collect();
        let ops = counter_ops(&code, &fields);
        let got: Vec<(&str, &str)> = ops
            .iter()
            .map(|o| (o.field.as_str(), o.op.as_str()))
            .collect();
        assert_eq!(got, vec![("pops", "+="), ("cycles", "+")]);
    }
}
