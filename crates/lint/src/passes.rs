//! The flow-aware passes QL05–QL08, built on the per-file AST
//! ([`crate::ast`]), the cross-crate symbol index assembled here, and
//! the per-fn flow summaries ([`crate::flow`]).

use crate::diag::{Diagnostic, RuleId};
use crate::flow::{self, LockSig};
use crate::policy::Policy;
use crate::FileData;
use std::collections::{BTreeMap, BTreeSet};

fn diag(rule: RuleId, path: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: path.to_string(),
        line,
        message,
    }
}

/// One acquisition-graph edge: `to` was acquired while `from` was held.
struct EdgeSite {
    file: usize,
    line: u32,
    detail: String,
}

/// QL05: builds the lock-acquisition graph across the scoped files and
/// reports cycles (potential deadlocks) and inversions of the canonical
/// `[ql05] order`.
pub fn ql05(files: &[FileData], policy: &Policy) -> Result<Vec<Diagnostic>, String> {
    let sigs = flow::parse_lock_sigs(&policy.ql05_locks)?;
    let excluded: BTreeSet<&str> = policy
        .ql05_resolve_exclude
        .iter()
        .map(String::as_str)
        .collect();

    // Flow summaries for every scoped fn, plus the cross-crate index.
    struct FnNode {
        file: usize,
        name: String,
        flow: flow::FnFlow,
    }
    let mut fns: Vec<FnNode> = Vec::new();
    let mut index: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.scopes.ql05 {
            continue;
        }
        let file_sigs: Vec<&LockSig> = sigs
            .iter()
            .filter(|s| Policy::in_scope(&f.rel, std::slice::from_ref(&s.scope)))
            .collect();
        for item in &f.ast.fns {
            let Some(body) = item.body else { continue };
            fns.push(FnNode {
                file: fi,
                name: item.name.clone(),
                flow: flow::analyze_fn(&f.code, body, &file_sigs),
            });
        }
    }
    for (i, node) in fns.iter().enumerate() {
        if !excluded.contains(node.name.as_str()) {
            index.entry(&node.name).or_default().push(i);
        }
    }

    // Transitive acquisition sets: the classes a call to each fn may
    // acquire, closed over the name-resolved call graph.
    let mut trans: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|n| n.flow.acqs.iter().map(|a| a.class.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            for call in &fns[i].flow.calls {
                if excluded.contains(call.name.as_str()) {
                    continue;
                }
                let Some(callees) = index.get(call.name.as_str()) else {
                    continue;
                };
                for &c in callees {
                    if c == i {
                        continue;
                    }
                    let extra: Vec<String> = trans[c].difference(&trans[i]).cloned().collect();
                    if !extra.is_empty() {
                        trans[i].extend(extra);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: a nested direct acquisition, or a call whose transitive set
    // acquires, while a guard is held.
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    let mut record = |from: &str, to: &str, site: EdgeSite| {
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert(site);
    };
    for node in &fns {
        for a in &node.flow.acqs {
            for b in &node.flow.acqs {
                if b.token > a.token && b.token <= a.scope_end && b.class != a.class {
                    record(
                        &a.class,
                        &b.class,
                        EdgeSite {
                            file: node.file,
                            line: b.line,
                            detail: format!("direct acquisition in `{}`", node.name),
                        },
                    );
                }
            }
            for call in &node.flow.calls {
                if call.token <= a.token
                    || call.token > a.scope_end
                    || excluded.contains(call.name.as_str())
                {
                    continue;
                }
                let Some(callees) = index.get(call.name.as_str()) else {
                    continue;
                };
                let mut reached: BTreeSet<&str> = BTreeSet::new();
                for &c in callees {
                    reached.extend(trans[c].iter().map(String::as_str));
                }
                for class in reached {
                    if class != a.class {
                        record(
                            &a.class,
                            class,
                            EdgeSite {
                                file: node.file,
                                line: call.line,
                                detail: format!("call to `{}` from `{}`", call.name, node.name),
                            },
                        );
                    }
                }
            }
        }
    }

    // Reachability over the class graph, for cycle detection.
    let mut reach: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys().map(|(a, b)| (a.as_str(), b.as_str())) {
        reach.entry(from).or_default().insert(to);
    }
    loop {
        let mut changed = false;
        let keys: Vec<&str> = reach.keys().copied().collect();
        for from in keys {
            let nexts: Vec<&str> = reach[from].iter().copied().collect();
            for mid in nexts {
                let extra: Vec<&str> = reach
                    .get(mid)
                    .map(|s| {
                        s.iter()
                            .copied()
                            .filter(|t| !reach[from].contains(t))
                            .collect()
                    })
                    .unwrap_or_default();
                if !extra.is_empty() {
                    reach.get_mut(from).expect("key present").extend(extra);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let pos: BTreeMap<&str, usize> = policy
        .ql05_order
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_str(), i))
        .collect();
    let mut diags = Vec::new();
    let mut unknown_reported: BTreeSet<&str> = BTreeSet::new();
    for ((from, to), site) in &edges {
        let rel = &files[site.file].rel;
        if files[site.file].allows.covers(RuleId::QL05, site.line) {
            continue;
        }
        let closes_cycle = from == to
            || reach
                .get(to.as_str())
                .is_some_and(|r| r.contains(from.as_str()));
        if closes_cycle {
            diags.push(diag(
                RuleId::QL05,
                rel,
                site.line,
                format!(
                    "lock-order cycle: `{to}` acquired while holding `{from}` ({}), and \
                     `{to}` can already reach `{from}` — potential deadlock",
                    site.detail
                ),
            ));
            continue;
        }
        match (pos.get(from.as_str()), pos.get(to.as_str())) {
            (Some(pf), Some(pt)) if pf > pt => {
                diags.push(diag(
                    RuleId::QL05,
                    rel,
                    site.line,
                    format!(
                        "lock-order inversion: `{to}` acquired while holding `{from}` ({}), \
                         but [ql05] order puts `{to}` before `{from}` — release `{from}` \
                         first or update the canonical order",
                        site.detail
                    ),
                ));
            }
            (Some(_), Some(_)) => {}
            _ => {
                for class in [from.as_str(), to.as_str()] {
                    if !pos.contains_key(class) && unknown_reported.insert(class) {
                        diags.push(diag(
                            RuleId::QL05,
                            rel,
                            site.line,
                            format!(
                                "lock class `{class}` participates in acquisition edges but \
                                 is missing from the canonical [ql05] order"
                            ),
                        ));
                    }
                }
            }
        }
    }
    Ok(diags)
}

/// QL06: every channel-protocol enum variant is both constructed (a
/// send path exists) and matched outside a wildcard arm (a receive path
/// exists).
pub fn ql06(files: &[FileData], policy: &Policy) -> Vec<Diagnostic> {
    variant_liveness(
        files,
        |f| f.scopes.ql06,
        &policy.ql06_enums,
        RuleId::QL06,
        "protocol",
        "no send path builds it — a silently dead protocol state",
        "no receive-side arm handles it (wildcard arms do not count) — an unhandled \
         protocol state",
    )
}

/// QL08: every error enum variant is constructed somewhere and matched
/// somewhere outside a `_` arm.
pub fn ql08(files: &[FileData], policy: &Policy) -> Vec<Diagnostic> {
    variant_liveness(
        files,
        |f| f.scopes.ql08,
        &policy.ql08_enums,
        RuleId::QL08,
        "error",
        "nothing raises it — dead error surface",
        "no caller can react to it specifically (wildcard arms do not count)",
    )
}

fn variant_liveness(
    files: &[FileData],
    in_scope: impl Fn(&FileData) -> bool,
    enum_names: &[String],
    rule: RuleId,
    kind: &str,
    unconstructed_hint: &str,
    unmatched_hint: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Definitions: first scoped definition of each configured enum wins.
    let mut defs: BTreeMap<&str, (usize, &crate::ast::EnumDef)> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        if !in_scope(f) {
            continue;
        }
        for e in &f.ast.enums {
            if enum_names.iter().any(|n| n == &e.name) {
                defs.entry(&e.name).or_insert((fi, e));
            }
        }
    }
    for name in enum_names {
        if !defs.contains_key(name.as_str()) {
            diags.push(diag(
                rule,
                "lint.toml",
                0,
                format!("configured {kind} enum `{name}` was not found in any scoped file"),
            ));
        }
    }

    let variant_sets: BTreeMap<String, BTreeSet<String>> = defs
        .iter()
        .map(|(name, (_, e))| {
            (
                (*name).to_string(),
                e.variants.iter().map(|v| v.name.clone()).collect(),
            )
        })
        .collect();

    // (enum, variant) → (constructed, matched).
    let mut live: BTreeMap<(String, String), (bool, bool)> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        if !in_scope(f) {
            continue;
        }
        let mask = flow::pattern_mask(&f.code);
        for u in flow::variant_uses(&f.code, &mask, &variant_sets) {
            let inside_def = defs
                .get(u.enum_name.as_str())
                .is_some_and(|(dfi, e)| *dfi == fi && u.token > e.body.0 && u.token < e.body.1);
            if inside_def {
                continue;
            }
            let entry = live
                .entry((u.enum_name.clone(), u.variant.clone()))
                .or_insert((false, false));
            if u.is_pattern {
                entry.1 = true;
            } else {
                entry.0 = true;
            }
        }
    }

    for (name, (fi, e)) in &defs {
        let f = &files[*fi];
        for v in &e.variants {
            let (constructed, matched) = live
                .get(&((*name).to_string(), v.name.clone()))
                .copied()
                .unwrap_or((false, false));
            if !constructed && !f.allows.covers(rule, v.line) {
                diags.push(diag(
                    rule,
                    &f.rel,
                    v.line,
                    format!(
                        "{kind} variant `{name}::{}` is never constructed: {unconstructed_hint}",
                        v.name
                    ),
                ));
            }
            if !matched && !f.allows.covers(rule, v.line) {
                diags.push(diag(
                    rule,
                    &f.rel,
                    v.line,
                    format!(
                        "{kind} variant `{name}::{}` is never matched: {unmatched_hint}",
                        v.name
                    ),
                ));
            }
        }
    }
    diags
}

/// QL07: bare `+`/`-`/`*` arithmetic on the configured counter fields.
pub fn ql07(files: &[FileData], policy: &Policy) -> Vec<Diagnostic> {
    let fields: BTreeSet<String> = policy.ql07_fields.iter().cloned().collect();
    let mut diags = Vec::new();
    for f in files {
        if !f.scopes.ql07 {
            continue;
        }
        for op in flow::counter_ops(&f.code, &fields) {
            if f.allows.covers(RuleId::QL07, op.line) {
                continue;
            }
            diags.push(diag(
                RuleId::QL07,
                &f.rel,
                op.line,
                format!(
                    "bare `{}` on counter field `{}` can wrap silently — use \
                     checked/saturating arithmetic or carry a `quest-lint: allow(QL07)` \
                     justification",
                    op.op, op.field
                ),
            ));
        }
    }
    diags
}
