//! Diagnostics: stable rule identifiers and `file:line` reports.

use std::fmt;

/// Stable rule identifiers. New rules append; numbers are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Malformed `quest-lint:` control comment (an allow without its
    /// mandatory `-- reason` justification, or an unknown rule name).
    QL00,
    /// Panic-freedom: no `unwrap()`/`expect(`/`panic!`/`unreachable!`/
    /// `todo!` in the policy-scoped non-test code.
    QL01,
    /// Determinism hygiene: no `HashMap`/`HashSet` on the report/decode/
    /// fault path; no wall-clock or ambient randomness outside the stats
    /// module.
    QL02,
    /// Wire-format cast safety: no bare `as u8`/`as u16`/`as u32`
    /// narrowing casts in the packet-codec files.
    QL03,
    /// Lint-table hygiene: every first-party crate inherits
    /// `[workspace.lints]` and carries `#![forbid(unsafe_code)]`.
    QL04,
}

impl RuleId {
    /// The identifier as written in allow comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::QL00 => "QL00",
            RuleId::QL01 => "QL01",
            RuleId::QL02 => "QL02",
            RuleId::QL03 => "QL03",
            RuleId::QL04 => "QL04",
        }
    }

    /// Parses an identifier from an allow comment.
    pub fn from_name(name: &str) -> Option<RuleId> {
        match name {
            "QL00" => Some(RuleId::QL00),
            "QL01" => Some(RuleId::QL01),
            "QL02" => Some(RuleId::QL02),
            "QL03" => Some(RuleId::QL03),
            "QL04" => Some(RuleId::QL04),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: rule, location, and what was seen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-indexed line (0 for file-level findings like a missing
    /// `[lints]` table).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}
