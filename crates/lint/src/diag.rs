//! Diagnostics: stable rule identifiers and `file:line` reports.

use std::fmt;

/// Stable rule identifiers. New rules append; numbers are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Malformed `quest-lint:` control comment (an allow without its
    /// mandatory `-- reason` justification, or an unknown rule name).
    QL00,
    /// Panic-freedom: no `unwrap()`/`expect(`/`panic!`/`unreachable!`/
    /// `todo!` in the policy-scoped non-test code.
    QL01,
    /// Determinism hygiene: no `HashMap`/`HashSet` on the report/decode/
    /// fault path; no wall-clock or ambient randomness outside the stats
    /// module.
    QL02,
    /// Wire-format cast safety: no bare `as u8`/`as u16`/`as u32`
    /// narrowing casts in the packet-codec files.
    QL03,
    /// Lint-table hygiene: every first-party crate inherits
    /// `[workspace.lints]` and carries `#![forbid(unsafe_code)]`.
    QL04,
    /// Lock-order safety: the cross-crate Mutex/Condvar acquisition
    /// graph must be acyclic and respect the canonical total order
    /// declared in `[ql05] order`.
    QL05,
    /// Message-protocol exhaustiveness: every channel-protocol enum
    /// variant is both constructed on a send path and matched on a
    /// receive path (no silently dead or unhandled protocol states).
    QL06,
    /// Counter-arithmetic safety: cost/ledger/quota counters use
    /// checked/saturating ops; bare `+`/`+=`/`-`/`-=`/`*` on a listed
    /// counter field is a finding.
    QL07,
    /// Error-variant liveness: every error enum variant is constructed
    /// somewhere and matched somewhere outside a `_` arm.
    QL08,
}

impl RuleId {
    /// The identifier as written in allow comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::QL00 => "QL00",
            RuleId::QL01 => "QL01",
            RuleId::QL02 => "QL02",
            RuleId::QL03 => "QL03",
            RuleId::QL04 => "QL04",
            RuleId::QL05 => "QL05",
            RuleId::QL06 => "QL06",
            RuleId::QL07 => "QL07",
            RuleId::QL08 => "QL08",
        }
    }

    /// Parses an identifier from an allow comment.
    pub fn from_name(name: &str) -> Option<RuleId> {
        match name {
            "QL00" => Some(RuleId::QL00),
            "QL01" => Some(RuleId::QL01),
            "QL02" => Some(RuleId::QL02),
            "QL03" => Some(RuleId::QL03),
            "QL04" => Some(RuleId::QL04),
            "QL05" => Some(RuleId::QL05),
            "QL06" => Some(RuleId::QL06),
            "QL07" => Some(RuleId::QL07),
            "QL08" => Some(RuleId::QL08),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: rule, location, and what was seen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-indexed line (0 for file-level findings like a missing
    /// `[lints]` table).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders diagnostics as machine-readable JSON — the format CI uploads
/// as an artifact and the baseline file stores. Stable shape:
/// `{"findings": [{"rule", "path", "line", "message"}, …]}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", d.rule));
        out.push_str(&format!("\"path\": \"{}\", ", json_escape(&d.path)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"message\": \"{}\"", json_escape(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
