//! Item-level parsing: a per-file AST over the comment-free token
//! stream.
//!
//! The lexer stays the single source of truth for what is and is not
//! code; this module recovers the *item structure* on top of it — which
//! functions exist (with their owning `impl`/`trait` type and body token
//! range) and which enums exist (with their variants). That is exactly
//! the shape the flow-aware passes (QL05–QL08) need: a symbol index maps
//! call names to [`FnItem`]s, and enum definitions anchor the
//! variant-liveness findings to their declaration lines.
//!
//! The parser is deliberately tolerant: Rust it does not understand is
//! skipped with brace matching rather than rejected, so a new syntax
//! form degrades to "no items found here", never to a crash or a
//! spurious finding.

use crate::lexer::{Token, TokenKind};

/// A parsed function item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// The `impl`/`trait` type the function is defined on, if any —
    /// `JobQueue` for `impl JobQueue { fn push(…) }`.
    pub owner: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Token range `(open_brace, close_brace)` of the body in the file's
    /// code stream, or `None` for a bodyless trait-method signature.
    pub body: Option<(usize, usize)>,
}

/// One enum variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantDef {
    /// Variant name.
    pub name: String,
    /// 1-indexed line of the variant.
    pub line: u32,
}

/// A parsed enum definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    /// Bare enum name.
    pub name: String,
    /// 1-indexed line of the `enum` keyword.
    pub line: u32,
    /// Token range `(open_brace, close_brace)` of the body.
    pub body: (usize, usize),
    /// The variants, in declaration order.
    pub variants: Vec<VariantDef>,
}

/// The item structure of one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileAst {
    /// Every function with a body, including trait default methods and
    /// functions nested in inline modules.
    pub fns: Vec<FnItem>,
    /// Every enum definition.
    pub enums: Vec<EnumDef>,
}

/// Parses the item structure of a comment-free, test-stripped token
/// stream (see [`crate::lexer::strip_test_code`]).
pub fn parse(code: &[Token]) -> FileAst {
    let mut ast = FileAst::default();
    parse_items(code, 0, code.len(), None, &mut ast);
    ast
}

/// Index of the token matching the `{` (or `(`/`[`) at `open`, or `end`
/// when the stream is unbalanced.
pub fn find_matching(code: &[Token], open: usize, end: usize) -> usize {
    let (o, c) = match code[open].kind {
        TokenKind::Punct('{') => ('{', '}'),
        TokenKind::Punct('(') => ('(', ')'),
        TokenKind::Punct('[') => ('[', ']'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in code.iter().enumerate().take(end).skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    end
}

/// Modifier keywords that may precede an item keyword.
const MODIFIERS: [&str; 4] = ["unsafe", "async", "extern", "default"];

fn parse_items(code: &[Token], start: usize, end: usize, owner: Option<&str>, out: &mut FileAst) {
    let mut i = start;
    while i < end {
        match &code[i].kind {
            // Outer or inner attribute: skip the bracket group.
            TokenKind::Punct('#') => {
                let mut j = i + 1;
                if code.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if code.get(j).is_some_and(|t| t.is_punct('[')) {
                    i = find_matching(code, j, end) + 1;
                } else {
                    i += 1;
                }
            }
            TokenKind::Ident => {
                let name = code[i].text.as_str();
                match name {
                    "pub" => {
                        // `pub` / `pub(crate)` / `pub(in path)`.
                        i += 1;
                        if code.get(i).is_some_and(|t| t.is_punct('(')) {
                            i = find_matching(code, i, end) + 1;
                        }
                    }
                    m if MODIFIERS.contains(&m) => i += 1,
                    "const" => {
                        // `const fn` is a modifier; a `const ITEM: T = …;`
                        // is skipped like any other non-fn item.
                        if code.get(i + 1).is_some_and(|t| t.is_ident("fn")) {
                            i += 1;
                        } else {
                            i = skip_generic_item(code, i, end);
                        }
                    }
                    "fn" => i = parse_fn(code, i, end, owner, out),
                    "enum" => i = parse_enum(code, i, end, out),
                    "impl" => i = parse_impl(code, i, end, out),
                    "trait" => i = parse_braced_scope(code, i, end, out),
                    "mod" => {
                        // Inline module: recurse with no owner; `mod x;`
                        // declarations are just skipped.
                        i = parse_mod(code, i, end, out);
                    }
                    _ => i = skip_generic_item(code, i, end),
                }
            }
            _ => i += 1,
        }
    }
}

/// At the `fn` keyword: records the item and returns the index past it.
fn parse_fn(
    code: &[Token],
    at: usize,
    end: usize,
    owner: Option<&str>,
    out: &mut FileAst,
) -> usize {
    let line = code[at].line;
    let Some(name_tok) = code.get(at + 1) else {
        return end;
    };
    if name_tok.kind != TokenKind::Ident {
        return at + 1;
    }
    // Find the body `{` at paren/bracket depth 0, stopping at a `;`
    // (bodyless trait-method signature). `where` clauses and return
    // types contain no top-level braces.
    let mut depth = 0i32;
    let mut j = at + 2;
    let mut body = None;
    while j < end {
        match code[j].kind {
            TokenKind::Punct('(' | '[') => depth += 1,
            TokenKind::Punct(')' | ']') => depth -= 1,
            TokenKind::Punct('{') if depth == 0 => {
                let close = find_matching(code, j, end);
                body = Some((j, close));
                j = close + 1;
                break;
            }
            TokenKind::Punct(';') if depth == 0 => {
                j += 1;
                break;
            }
            _ => {}
        }
        j += 1;
    }
    out.fns.push(FnItem {
        name: name_tok.text.clone(),
        owner: owner.map(String::from),
        line,
        body,
    });
    j
}

/// At the `enum` keyword: records the definition and returns the index
/// past it.
fn parse_enum(code: &[Token], at: usize, end: usize, out: &mut FileAst) -> usize {
    let line = code[at].line;
    let Some(name_tok) = code.get(at + 1) else {
        return end;
    };
    if name_tok.kind != TokenKind::Ident {
        return at + 1;
    }
    // Body `{` at paren/bracket depth 0 (generics carry no braces).
    let mut j = at + 2;
    while j < end && !code[j].is_punct('{') {
        if code[j].is_punct(';') {
            return j + 1;
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    let close = find_matching(code, j, end);
    let mut variants = Vec::new();
    let mut k = j + 1;
    let mut expecting = true;
    let mut depth = 0i32;
    while k < close {
        match &code[k].kind {
            // Variant attribute.
            TokenKind::Punct('#')
                if depth == 0 && code.get(k + 1).is_some_and(|t| t.is_punct('[')) =>
            {
                k = find_matching(code, k + 1, close) + 1;
                continue;
            }
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => depth -= 1,
            TokenKind::Punct(',') if depth == 0 => expecting = true,
            TokenKind::Ident if expecting && depth == 0 => {
                variants.push(VariantDef {
                    name: code[k].text.clone(),
                    line: code[k].line,
                });
                expecting = false;
            }
            _ => {}
        }
        k += 1;
    }
    out.enums.push(EnumDef {
        name: name_tok.text.clone(),
        line,
        body: (j, close),
        variants,
    });
    close + 1
}

/// At the `impl` keyword: extracts the implemented-on type and recurses
/// into the body for methods.
fn parse_impl(code: &[Token], at: usize, end: usize, out: &mut FileAst) -> usize {
    // Body `{` at paren/bracket depth 0. Bounds like `Fn() -> R` hide
    // their parens at depth > 0; `where` clauses carry no braces.
    let mut j = at + 1;
    let mut depth = 0i32;
    while j < end {
        match code[j].kind {
            TokenKind::Punct('(' | '[') => depth += 1,
            TokenKind::Punct(')' | ']') => depth -= 1,
            TokenKind::Punct('{') if depth == 0 => break,
            TokenKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    let owner = impl_owner(&code[at + 1..j]);
    let close = find_matching(code, j, end);
    parse_items(code, j + 1, close, owner.as_deref(), out);
    close + 1
}

/// The implemented-on type of an `impl` header: the last path segment of
/// the type after `for` (trait impls) or of the first path at angle
/// depth 0 (inherent impls), generics stripped.
fn impl_owner(header: &[Token]) -> Option<String> {
    let mut angle = 0i32;
    let mut for_at = None;
    for (i, t) in header.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') if angle > 0 => angle -= 1,
            TokenKind::Ident if t.text == "for" && angle == 0 => {
                for_at = Some(i);
                break;
            }
            _ => {}
        }
    }
    let search = match for_at {
        Some(i) => &header[i + 1..],
        None => header,
    };
    // Last segment of the leading path: `quest_core::Thing` → `Thing`.
    let mut angle = 0i32;
    let mut owner = None;
    let mut i = 0;
    while i < search.len() {
        match &search[i].kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') if angle > 0 => angle -= 1,
            TokenKind::Ident if angle == 0 => {
                owner = Some(search[i].text.clone());
                // Keep going only across `::` path separators.
                if !(search.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && search.get(i + 2).is_some_and(|t| t.is_punct(':')))
                {
                    break;
                }
                i += 2;
            }
            _ => {}
        }
        i += 1;
    }
    owner
}

/// At a `trait` keyword: the trait name becomes the owner of its default
/// methods.
fn parse_braced_scope(code: &[Token], at: usize, end: usize, out: &mut FileAst) -> usize {
    let owner = code
        .get(at + 1)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone());
    let mut j = at + 1;
    let mut depth = 0i32;
    while j < end {
        match code[j].kind {
            TokenKind::Punct('(' | '[') => depth += 1,
            TokenKind::Punct(')' | ']') => depth -= 1,
            TokenKind::Punct('{') if depth == 0 => break,
            TokenKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    let close = find_matching(code, j, end);
    parse_items(code, j + 1, close, owner.as_deref(), out);
    close + 1
}

/// At a `mod` keyword: recurses into an inline module body.
fn parse_mod(code: &[Token], at: usize, end: usize, out: &mut FileAst) -> usize {
    let mut j = at + 1;
    while j < end {
        if code[j].is_punct(';') {
            return j + 1;
        }
        if code[j].is_punct('{') {
            let close = find_matching(code, j, end);
            parse_items(code, j + 1, close, None, out);
            return close + 1;
        }
        j += 1;
    }
    end
}

/// Skips a non-fn item (`struct`/`use`/`static`/`type`/`macro_rules!`/…):
/// everything to the first top-level `;` or past the first brace group.
fn skip_generic_item(code: &[Token], at: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = at;
    while j < end {
        match code[j].kind {
            TokenKind::Punct('(' | '[') => depth += 1,
            TokenKind::Punct(')' | ']') => depth -= 1,
            TokenKind::Punct('{') if depth == 0 => {
                return find_matching(code, j, end) + 1;
            }
            TokenKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast_of(src: &str) -> FileAst {
        let tokens = lex(src);
        let code: Vec<Token> = crate::lexer::strip_test_code(&tokens)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        parse(&code)
    }

    #[test]
    fn free_and_impl_fns_are_found_with_owners() {
        let src = "fn free() {}\n\
                   pub(crate) struct S { x: u32 }\n\
                   impl S {\n    pub fn method(&self) -> u32 { self.x }\n}\n\
                   impl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n";
        let ast = ast_of(src);
        let names: Vec<(String, Option<String>)> = ast
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("S".into())),
                ("fmt".into(), Some("S".into())),
            ]
        );
    }

    #[test]
    fn generic_impls_and_paths_resolve_to_the_type() {
        let src = "impl<T: Clone> Queue<T> {\n    fn push(&mut self, t: T) {}\n}\n\
                   impl fmt::Display for error::Kind {\n    fn fmt(&self) {}\n}\n";
        let ast = ast_of(src);
        assert_eq!(ast.fns[0].owner.as_deref(), Some("Queue"));
        assert_eq!(ast.fns[1].owner.as_deref(), Some("Kind"));
    }

    #[test]
    fn enum_variants_are_collected_past_payloads_and_attrs() {
        let src = "#[derive(Debug)]\npub enum Msg {\n\
                   Ping,\n\
                   #[allow(dead_code)]\n\
                   Data { bytes: Vec<u8>, crc: u32 },\n\
                   Pair(u8, u8),\n\
                   Halt = 3,\n}\n";
        let ast = ast_of(src);
        assert_eq!(ast.enums.len(), 1);
        let e = &ast.enums[0];
        assert_eq!(e.name, "Msg");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Ping", "Data", "Pair", "Halt"]);
    }

    #[test]
    fn fn_bodies_span_their_braces_and_sigs_have_none() {
        let src = "trait T {\n    fn sig(&self);\n    fn dflt(&self) { loop {} }\n}\n";
        let ast = ast_of(src);
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].body, None);
        assert!(ast.fns[1].body.is_some());
        assert_eq!(ast.fns[1].owner.as_deref(), Some("T"));
    }

    #[test]
    fn inline_modules_and_const_fns_are_traversed() {
        let src = "mod inner {\n    pub const fn helper() -> u32 { 1 }\n}\n\
                   const LIMIT: usize = 4;\n\
                   fn after() {}\n";
        let ast = ast_of(src);
        let names: Vec<&str> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["helper", "after"]);
    }

    #[test]
    fn where_clauses_and_fn_pointer_args_do_not_derail_body_detection() {
        let src = "fn apply<F>(f: F) -> u32 where F: Fn(u32) -> u32 { f(1) }\n";
        let ast = ast_of(src);
        assert_eq!(ast.fns.len(), 1);
        assert!(ast.fns[0].body.is_some());
    }
}
