//! The `lint.toml` policy: which rules apply where.
//!
//! The build is offline, so the file is parsed with a hand-rolled reader
//! covering the TOML subset the policy needs: `[section]` headers,
//! `key = "string"`, `key = true|false`, and single- or multi-line
//! string arrays. Unknown sections or keys are an error — a typo in the
//! policy must not silently widen or narrow a rule's scope.

use std::fmt;
use std::path::Path;

/// Scope configuration for every rule, with paths relative to the
/// workspace root (forward slashes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Policy {
    /// QL01 (panic-freedom): path prefixes whose non-test code must be
    /// free of `unwrap()`/`expect(`/`panic!`/`unreachable!`/`todo!`.
    pub ql01_paths: Vec<String>,
    /// QL02 (determinism): path prefixes on the report/decode/fault path
    /// where `HashMap`/`HashSet` are banned.
    pub ql02_container_paths: Vec<String>,
    /// QL02 (determinism): path prefixes where wall-clock and ambient
    /// randomness (`Instant`, `SystemTime`, `thread_rng`) are banned…
    pub ql02_clock_paths: Vec<String>,
    /// …except in these allow-listed files (the wall-clock stats module).
    pub ql02_clock_allow: Vec<String>,
    /// QL03 (cast safety): files forming the wire format, where bare
    /// `as u8`/`as u16`/`as u32` narrowing casts are banned.
    pub ql03_paths: Vec<String>,
    /// QL04 (lint-table hygiene): crate directories that must inherit
    /// `[workspace.lints]` and carry `#![forbid(unsafe_code)]`.
    pub ql04_crates: Vec<String>,
    /// QL05 (lock order): path prefixes whose functions join the
    /// acquisition graph.
    pub ql05_paths: Vec<String>,
    /// QL05: the canonical total order of lock classes. Any acquisition
    /// edge that runs against this order (or any cycle) is a finding.
    pub ql05_order: Vec<String>,
    /// QL05: acquisition signatures, each `class @ scope :: recv.method`
    /// — a call `recv.method(…)` in a file under `scope` acquires a lock
    /// of `class` (see [`crate::flow::LockSig`]).
    pub ql05_locks: Vec<String>,
    /// QL05: method names excluded from call-graph resolution because
    /// std types shadow them (`len`, `push`, `lock`, …) — resolving them
    /// to first-party functions would fabricate acquisition edges.
    pub ql05_resolve_exclude: Vec<String>,
    /// QL06 (protocol exhaustiveness): path prefixes scanned for
    /// constructions and matches of the protocol enums.
    pub ql06_paths: Vec<String>,
    /// QL06: the channel-protocol enums (by bare name) whose variants
    /// must all be both constructed and matched.
    pub ql06_enums: Vec<String>,
    /// QL07 (counter arithmetic): path prefixes where the counter fields
    /// are checked.
    pub ql07_paths: Vec<String>,
    /// QL07: counter field names that must not see bare `+`/`-`/`*`.
    pub ql07_fields: Vec<String>,
    /// QL08 (error-variant liveness): path prefixes scanned for
    /// constructions and matches of the error enums.
    pub ql08_paths: Vec<String>,
    /// QL08: the error enums (by bare name) whose variants must all be
    /// live.
    pub ql08_enums: Vec<String>,
    /// Directories never walked (vendored stand-ins, build output, the
    /// checker's own bad-code fixtures).
    pub exclude: Vec<String>,
}

/// A policy-file problem (I/O or syntax).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyError {
    /// 1-indexed line of `lint.toml`, or 0 for file-level problems.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyError {}

fn err(line: u32, message: impl Into<String>) -> PolicyError {
    PolicyError {
        line,
        message: message.into(),
    }
}

impl Policy {
    /// Reads and parses a policy file.
    pub fn load(path: &Path) -> Result<Policy, PolicyError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        Policy::parse(&text)
    }

    /// Parses policy text.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        let mut policy = Policy::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| err(lineno, "unterminated section header"))?;
                section = name.trim().to_string();
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
            // Multi-line arrays: keep consuming until the bracket closes.
            if value.starts_with('[') {
                while !value.trim_end().ends_with(']') {
                    let (_, next) = lines
                        .next()
                        .ok_or_else(|| err(lineno, "unterminated array"))?;
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
            }
            policy.assign(&section, &key, &value, lineno)?;
        }
        Ok(policy)
    }

    fn assign(
        &mut self,
        section: &str,
        key: &str,
        value: &str,
        line: u32,
    ) -> Result<(), PolicyError> {
        let slot = match (section, key) {
            ("ql01", "paths") => &mut self.ql01_paths,
            ("ql02", "container_paths") => &mut self.ql02_container_paths,
            ("ql02", "clock_paths") => &mut self.ql02_clock_paths,
            ("ql02", "clock_allow") => &mut self.ql02_clock_allow,
            ("ql03", "paths") => &mut self.ql03_paths,
            ("ql04", "crates") => &mut self.ql04_crates,
            ("ql05", "paths") => &mut self.ql05_paths,
            ("ql05", "order") => &mut self.ql05_order,
            ("ql05", "locks") => &mut self.ql05_locks,
            ("ql05", "resolve_exclude") => &mut self.ql05_resolve_exclude,
            ("ql06", "paths") => &mut self.ql06_paths,
            ("ql06", "enums") => &mut self.ql06_enums,
            ("ql07", "paths") => &mut self.ql07_paths,
            ("ql07", "fields") => &mut self.ql07_fields,
            ("ql08", "paths") => &mut self.ql08_paths,
            ("ql08", "enums") => &mut self.ql08_enums,
            ("global", "exclude") => &mut self.exclude,
            _ => return Err(err(line, format!("unknown policy key `[{section}] {key}`"))),
        };
        *slot = parse_string_array(value, line)?;
        Ok(())
    }

    /// True when `rel` (a `/`-separated path relative to the workspace
    /// root) falls under any prefix in `scopes`. Prefixes match whole
    /// path components: `crates/core/src` covers `crates/core/src/bus.rs`
    /// but not `crates/core/src-other`.
    pub fn in_scope(rel: &str, scopes: &[String]) -> bool {
        scopes.iter().any(|s| {
            rel == s
                || rel
                    .strip_prefix(s.as_str())
                    .is_some_and(|r| r.starts_with('/'))
        })
    }
}

/// Drops a `#` comment, respecting (double-quoted) strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn parse_string_array(value: &str, line: u32) -> Result<Vec<String>, PolicyError> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.trim_end().strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected a string array, got `{value}`")))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        let unquoted = item
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| err(line, format!("expected a quoted string, got `{item}`")))?;
        out.push(unquoted.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let text = r#"
# top comment
[ql01]
paths = ["crates/core/src", "crates/runtime/src"] # trailing comment

[ql03]
paths = [
    "crates/core/src/bus.rs",
    "crates/core/src/network.rs",
]
"#;
        let p = Policy::parse(text).expect("parses");
        assert_eq!(p.ql01_paths, vec!["crates/core/src", "crates/runtime/src"]);
        assert_eq!(
            p.ql03_paths,
            vec!["crates/core/src/bus.rs", "crates/core/src/network.rs"]
        );
        assert!(p.ql02_container_paths.is_empty());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let e = Policy::parse("[ql01]\npathz = []\n").expect_err("typo must fail");
        assert!(e.message.contains("pathz"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let p = Policy::parse("[global]\nexclude = [\"weird#dir\"]\n").expect("parses");
        assert_eq!(p.exclude, vec!["weird#dir"]);
    }

    #[test]
    fn scope_matching_respects_component_boundaries() {
        let scopes = vec!["crates/core/src".to_string()];
        assert!(Policy::in_scope("crates/core/src/bus.rs", &scopes));
        assert!(Policy::in_scope("crates/core/src", &scopes));
        assert!(!Policy::in_scope("crates/core/src-other/bus.rs", &scopes));
        assert!(!Policy::in_scope("crates/runtime/src/lib.rs", &scopes));
    }
}
