//! A small hand-rolled Rust lexer.
//!
//! The build is offline, so the checker cannot lean on `syn` or `proc
//! macro2`; instead this module tokenizes just enough Rust to make the
//! rules sound: comments (line, doc, and *nested* block comments),
//! string/char/byte literals, raw strings with arbitrary hash fences,
//! raw identifiers, and the lifetime-versus-char-literal ambiguity.
//! Everything a rule matches on is therefore real code — a `panic!`
//! inside a string or a doc comment never trips QL01.

/// What a token is. Only the shapes the rules need are distinguished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) or loop label.
    Lifetime,
    /// String/char/byte/numeric literal. Content is opaque to the rules.
    Literal,
    /// A single punctuation character.
    Punct(char),
    /// Line or block comment, text retained (allow-comments live here).
    Comment,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text (kept for identifiers and comments; literals keep
    /// their text too, purely for diagnostics).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    /// Consumes `//…` to end of line (the newline itself stays).
    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.push(TokenKind::Comment, text, line);
    }

    /// Consumes `/* … */` honouring nesting.
    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '/' && self.peek(0) == Some('*') {
                text.push('*');
                self.bump();
                depth += 1;
            } else if c == '*' && self.peek(0) == Some('/') {
                text.push('/');
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        self.push(TokenKind::Comment, text, line);
    }

    /// Consumes a `"…"` string body (opening quote already consumed).
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw string `r##"…"##` (the `r` is consumed; `hashes`
    /// and the opening quote are not).
    fn raw_string_body(&mut self, hashes: usize) {
        for _ in 0..hashes {
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// Consumes an identifier run, returning its text.
    fn ident_run(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        text
    }

    /// `'` was just consumed: decide lifetime vs. char literal.
    fn quote(&mut self) {
        let line = self.line;
        match self.peek(0) {
            // Escaped char literal: '\n', '\'', '\u{…}'.
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped char (or the u of \u)
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Literal, "'…'".to_string(), line);
            }
            // Non-identifier char: '(' ' ' '.' — always a char literal.
            Some(c) if !is_ident_continue(c) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Literal, format!("'{c}'"), line);
            }
            Some(_) => {
                let run = self.ident_run();
                if self.peek(0) == Some('\'') {
                    // 'a' or '_' — a char literal.
                    self.bump();
                    self.push(TokenKind::Literal, format!("'{run}'"), line);
                } else {
                    self.push(TokenKind::Lifetime, format!("'{run}"), line);
                }
            }
            None => {}
        }
    }

    /// Number literal: digits with `_`, radix prefixes, suffixes, and a
    /// fractional part only when a digit follows the dot (so `0..n`
    /// leaves `..` alone).
    fn number(&mut self) {
        let line = self.line;
        let mut text = self.ident_run(); // digits, 0x…, suffixes
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.pos += 1;
            text.push_str(&self.ident_run());
        }
        self.push(TokenKind::Literal, text, line);
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                '\n' | ' ' | '\t' | '\r' => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Literal, "\"…\"".to_string(), line);
                }
                '\'' => {
                    self.bump();
                    self.quote();
                }
                'r' | 'b' if self.looks_like_raw_or_byte() => self.raw_or_byte(),
                c if is_ident_start(c) => {
                    let text = self.ident_run();
                    self.push(TokenKind::Ident, text, line);
                }
                c if c.is_ascii_digit() => self.number(),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// At `r` or `b`: is this a raw string, byte string, byte char, or
    /// raw identifier rather than a plain identifier?
    fn looks_like_raw_or_byte(&self) -> bool {
        match (self.peek(0), self.peek(1)) {
            (Some('r'), Some('"' | '#')) => true,
            (Some('b'), Some('"' | '\'')) => true,
            (Some('b'), Some('r')) => matches!(self.peek(2), Some('"' | '#')),
            _ => false,
        }
    }

    fn raw_or_byte(&mut self) {
        let line = self.line;
        let first = self.peek(0);
        if first == Some('b') {
            match self.peek(1) {
                Some('\'') => {
                    // Byte char b'x'.
                    self.bump();
                    self.bump();
                    self.quote();
                    // quote() pushed a Literal/Lifetime; either way the
                    // bytes are consumed.
                    return;
                }
                Some('"') => {
                    self.bump();
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Literal, "b\"…\"".to_string(), line);
                    return;
                }
                Some('r') => {
                    self.bump(); // b; fall through to the raw-string path
                }
                _ => {}
            }
        }
        // At `r`: raw string r"…", r#"…"#, or raw identifier r#ident.
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) == Some('"') {
            self.raw_string_body(hashes);
            self.push(TokenKind::Literal, "r\"…\"".to_string(), line);
        } else if hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
            // Raw identifier r#fn.
            self.bump(); // #
            let text = self.ident_run();
            self.push(TokenKind::Ident, text, line);
        } else {
            self.push(TokenKind::Ident, "r".to_string(), line);
        }
    }
}

/// Tokenizes Rust source. Never fails: unknown shapes degrade to
/// punctuation tokens, which the rules simply ignore.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

/// Returns the tokens with test-only code removed: any item annotated
/// `#[cfg(test)]`, `#[test]`, or any attribute mentioning the identifier
/// `test` is dropped together with its body (brace-matched), so QL01–QL03
/// never fire on test code. Comments are preserved.
pub fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                i = skip_item(tokens, attr_end);
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// From the `[` at `open`, returns (index past the matching `]`, whether
/// the attribute marks test-only code). An attribute is test-marking when
/// it mentions the identifier `test` or `should_panic` — except under a
/// `not(…)`, so `#[cfg(not(test))]` production code stays checked.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut negated = false;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, is_test && !negated);
                }
            }
            TokenKind::Ident if tokens[i].text == "test" || tokens[i].text == "should_panic" => {
                is_test = true;
            }
            TokenKind::Ident if tokens[i].text == "not" => negated = true,
            _ => {}
        }
        i += 1;
    }
    (i, is_test && !negated)
}

/// From just past a test attribute, skips any further attributes and the
/// annotated item (to its matching `}` or a top-level `;`). Returns the
/// index of the first token after the item.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let (end, _) = scan_attribute(tokens, i + 1);
        i = end;
    }
    // The item itself: everything to the first top-level `{…}` or `;`.
    let mut brace_depth = 0usize;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct('{') => brace_depth += 1,
            TokenKind::Punct('}') => {
                brace_depth = brace_depth.saturating_sub(1);
                if brace_depth == 0 {
                    return i + 1;
                }
            }
            TokenKind::Punct(';') if brace_depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn line_comments_are_comment_tokens() {
        let toks = lex("let x = 1; // call unwrap() later\nlet y = 2;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Comment && t.text.contains("unwrap")));
        // The unwrap inside the comment is not an identifier token.
        assert!(!idents("// unwrap()\n").contains(&"unwrap".to_string()));
    }

    #[test]
    fn doc_comments_do_not_leak_identifiers() {
        let src = "/// ip.cache_replay(0).unwrap();\nfn f() {}\n";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let src = "/* outer /* inner panic!() */ still comment */ fn g() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::Comment);
        assert!(toks[0].text.contains("inner"));
        assert!(toks[0].text.contains("still comment"));
        assert_eq!(idents(src), vec!["fn", "g"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "don't unwrap() or panic!";"#;
        assert_eq!(idents(src), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hash_fences() {
        let src = r###"let s = r#"quote " and unwrap() inside"#; let t = 1;"###;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'static str { loop {} }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    }

    #[test]
    fn char_literals_are_literals_not_lifetimes() {
        for src in ["'x'", "'_'", "'\\n'", "'\\''", "'('"] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, TokenKind::Literal, "{src}");
        }
    }

    #[test]
    fn byte_and_raw_identifier_shapes() {
        assert_eq!(
            idents("let b = b\"bytes\"; let c = b'x';"),
            vec!["let", "b", "let", "c"]
        );
        assert_eq!(idents("let r#fn = 1;"), vec!["let", "fn"]);
        // A bare `r` variable stays an identifier.
        assert_eq!(idents("let r = 1;"), vec!["let", "r"]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("for i in 0..n { let f = 1.5; }");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the two dots of `..`");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "1.5"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* one\ntwo */\nfn f() {\n    panic!()\n}\n";
        let toks = lex(src);
        let panic_tok = toks
            .iter()
            .find(|t| t.is_ident("panic"))
            .expect("panic token");
        assert_eq!(panic_tok.line, 4);
    }

    #[test]
    fn strip_removes_cfg_test_modules() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let stripped = strip_test_code(&lex(src));
        let names: Vec<&str> = stripped
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(names.contains(&"live"));
        assert!(names.contains(&"live2"));
        assert!(!names.contains(&"tests"));
        assert!(!names.contains(&"t"));
        // Exactly one unwrap survives (the live one).
        assert_eq!(names.iter().filter(|n| **n == "unwrap").count(), 1);
    }

    #[test]
    fn strip_removes_test_fns_with_extra_attributes() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { panic!(\"boom\") }\nfn keep() {}\n";
        let stripped = strip_test_code(&lex(src));
        assert!(!stripped.iter().any(|t| t.is_ident("panic")));
        assert!(stripped.iter().any(|t| t.is_ident("keep")));
    }

    #[test]
    fn strip_keeps_non_test_attributes() {
        let src = "#[derive(Debug)]\nstruct S;\n#[inline]\nfn f() {}\n";
        let stripped = strip_test_code(&lex(src));
        assert!(stripped.iter().any(|t| t.is_ident("S")));
        assert!(stripped.iter().any(|t| t.is_ident("f")));
    }
}
