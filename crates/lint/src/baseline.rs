//! The committed-findings baseline: CI fails on *new* findings only.
//!
//! A baseline file is the JSON emitted by `--format json` (see
//! [`crate::diag::to_json`]), committed at the workspace root. Findings
//! are keyed `rule|path|message` — deliberately line-independent, so an
//! unrelated edit shifting a baselined site does not resurface it,
//! while any change to what the finding *says* (a new field, a new
//! variant) does.

use crate::diag::Diagnostic;
use std::collections::BTreeSet;
use std::path::Path;

/// The baseline key of a finding.
pub fn key(d: &Diagnostic) -> String {
    format!("{}|{}|{}", d.rule, d.path, d.message)
}

/// Splits findings into (fresh, baselined-count).
pub fn filter(diags: Vec<Diagnostic>, baseline: &BTreeSet<String>) -> (Vec<Diagnostic>, usize) {
    let total = diags.len();
    let fresh: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| !baseline.contains(&key(d)))
        .collect();
    let suppressed = total - fresh.len();
    (fresh, suppressed)
}

/// Loads the baseline keys from a JSON findings file.
pub fn load(path: &Path) -> Result<BTreeSet<String>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))
}

/// Parses baseline keys out of findings-file JSON text.
pub fn parse(text: &str) -> Result<BTreeSet<String>, String> {
    let value = Json::parse(text)?;
    let findings = value
        .get("findings")
        .and_then(Json::as_array)
        .ok_or("expected a top-level `findings` array")?;
    let mut keys = BTreeSet::new();
    for f in findings {
        let field = |name: &str| {
            f.get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("finding missing string field `{name}`"))
        };
        keys.insert(format!(
            "{}|{}|{}",
            field("rule")?,
            field("path")?,
            field("message")?
        ));
    }
    Ok(keys)
}

/// A minimal JSON value — just enough to read baseline files, which may
/// be hand-edited (so the parser accepts any valid JSON, not only the
/// exact shape the emitter produces).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let chars: Vec<char> = text.chars().collect();
        let mut pos = 0usize;
        let value = parse_value(&chars, &mut pos)?;
        skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err(format!("trailing content at offset {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars
        .get(*pos)
        .is_some_and(|c| matches!(c, ' ' | '\t' | '\n' | '\r'))
    {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if chars.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => parse_object(chars, pos),
        Some('[') => parse_array(chars, pos),
        Some('"') => parse_string(chars, pos).map(Json::Str),
        Some('t') => parse_literal(chars, pos, "true", Json::Bool(true)),
        Some('f') => parse_literal(chars, pos, "false", Json::Bool(false)),
        Some('n') => parse_literal(chars, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(chars, pos),
        other => Err(format!("unexpected {other:?} at offset {pos}", pos = *pos)),
    }
}

fn parse_literal(chars: &[char], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    for c in word.chars() {
        expect(chars, pos, c)?;
    }
    Ok(value)
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while chars
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        *pos += 1;
    }
    let text: String = chars[start..*pos].iter().collect();
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    expect(chars, pos, '"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = chars.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let Some(&esc) = chars.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    '"' | '\\' | '/' => out.push(esc),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some(d) = chars.get(*pos).and_then(|c| c.to_digit(16)) else {
                                return Err("bad \\u escape".to_string());
                            };
                            code = code * 16 + d;
                            *pos += 1;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{other}`")),
                }
            }
            _ => out.push(c),
        }
    }
}

fn parse_array(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    expect(chars, pos, '[')?;
    let mut items = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(chars, pos)?);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    expect(chars, pos, '{')?;
    let mut entries = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Object(entries));
    }
    loop {
        skip_ws(chars, pos);
        let key = parse_string(chars, pos)?;
        skip_ws(chars, pos);
        expect(chars, pos, ':')?;
        let value = parse_value(chars, pos)?;
        entries.push((key, value));
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(Json::Object(entries));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{to_json, RuleId};

    fn d(rule: RuleId, path: &str, line: u32, message: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: message.to_string(),
        }
    }

    #[test]
    fn emitted_json_round_trips_to_the_same_keys() {
        let diags = vec![
            d(
                RuleId::QL07,
                "a.rs",
                3,
                "bare `+=` with \"quotes\" and\nnewline",
            ),
            d(RuleId::QL05, "b.rs", 9, "cycle"),
        ];
        let keys = parse(&to_json(&diags)).expect("parses");
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&key(&diags[0])));
        assert!(keys.contains(&key(&diags[1])));
    }

    #[test]
    fn empty_findings_parse_to_an_empty_baseline() {
        let keys = parse(&to_json(&[])).expect("parses");
        assert!(keys.is_empty());
    }

    #[test]
    fn filter_is_line_independent() {
        let baselined = d(RuleId::QL07, "a.rs", 3, "msg");
        let baseline: std::collections::BTreeSet<String> = [key(&baselined)].into();
        let moved = d(RuleId::QL07, "a.rs", 99, "msg");
        let fresh_one = d(RuleId::QL07, "a.rs", 99, "other msg");
        let (fresh, suppressed) = filter(vec![moved, fresh_one.clone()], &baseline);
        assert_eq!(fresh, vec![fresh_one]);
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse("{").is_err());
        assert!(parse("{\"findings\": 3}").is_err());
        assert!(parse("{\"findings\": [{\"rule\": \"QL05\"}]}").is_err());
    }
}
