//! `quest-lint`: the workspace's in-tree invariant checker.
//!
//! PRs 2–3 made two structural promises — the control plane is
//! *panic-free* (every failure is a typed error) and every run is
//! *bit-identical* at every shard count, including faulty runs. This
//! crate turns those promises, plus the CRC-sealed wire format, into
//! machine-checked rules:
//!
//! * **QL01 panic-freedom** — no `unwrap()`/`expect(`/`panic!`/
//!   `unreachable!`/`todo!` in the non-test code of the policy-scoped
//!   crates.
//! * **QL02 determinism hygiene** — no `HashMap`/`HashSet` on the
//!   report/decode/fault path (iteration order leaks into results), and
//!   no `Instant::now`/`SystemTime`/`thread_rng` outside the allow-listed
//!   wall-clock stats module.
//! * **QL03 wire-format cast safety** — no bare `as u8`/`as u16`/`as u32`
//!   narrowing casts in the packet-codec files.
//! * **QL04 lint-table hygiene** — every first-party crate inherits
//!   `[workspace.lints]` and carries `#![forbid(unsafe_code)]`.
//!
//! Scopes come from `lint.toml` at the workspace root. A site opts out
//! with `// quest-lint: allow(<rule>) -- <reason>`; the reason is
//! mandatory (QL00 otherwise). The analysis is a hand-rolled lexer pass
//! ([`lexer`]) — the build is offline, so no `syn`/`proc-macro2` — which
//! also leaves a reusable frame for future rules (e.g. a
//! no-alloc-in-decode-loop pass over the same token stream).

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod policy;
pub mod rules;

pub use diag::{Diagnostic, RuleId};
pub use policy::{Policy, PolicyError};

use std::path::{Path, PathBuf};

/// Runs every rule over the workspace at `root` under `policy`.
/// Diagnostics come back sorted by path, then line, then rule.
pub fn run(root: &Path, policy: &Policy) -> Result<Vec<Diagnostic>, PolicyError> {
    let mut diags = Vec::new();
    for rel in rust_files(root, &policy.exclude) {
        let ql01 = Policy::in_scope(&rel, &policy.ql01_paths);
        let ql02_containers = Policy::in_scope(&rel, &policy.ql02_container_paths);
        let ql02_clocks = Policy::in_scope(&rel, &policy.ql02_clock_paths)
            && !Policy::in_scope(&rel, &policy.ql02_clock_allow);
        let ql03 = Policy::in_scope(&rel, &policy.ql03_paths);
        if !(ql01 || ql02_containers || ql02_clocks || ql03) {
            continue;
        }
        let src = std::fs::read_to_string(root.join(&rel)).map_err(|e| PolicyError {
            line: 0,
            message: format!("cannot read {rel}: {e}"),
        })?;
        let tokens = lexer::lex(&src);
        diags.extend(rules::check_tokens(
            &tokens,
            &rel,
            ql01,
            ql02_containers,
            ql02_clocks,
            ql03,
        ));
    }
    for crate_rel in &policy.ql04_crates {
        diags.extend(rules::check_crate_hygiene(root, crate_rel));
    }
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(diags)
}

/// All `.rs` files under `root`, as `/`-separated paths relative to it,
/// sorted. Directories named in `exclude` (plus `target` and dot-dirs)
/// are never entered.
pub fn rust_files(root: &Path, exclude: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel_dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(root.join(&rel_dir)) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            let rel = if rel_dir.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel_dir.join(&name)
            };
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let Ok(kind) = entry.file_type() else {
                continue;
            };
            if kind.is_dir() {
                let skip = name.starts_with('.')
                    || name == "target"
                    || exclude.iter().any(|x| *x == rel_str || *x == name);
                if !skip {
                    stack.push(rel);
                }
            } else if name.ends_with(".rs") && !Policy::in_scope(&rel_str, exclude) {
                out.push(rel_str);
            }
        }
    }
    out.sort();
    out
}
