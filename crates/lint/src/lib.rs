//! `quest-lint`: the workspace's in-tree invariant checker.
//!
//! PRs 2–3 made two structural promises — the control plane is
//! *panic-free* (every failure is a typed error) and every run is
//! *bit-identical* at every shard count, including faulty runs. PRs 6–8
//! added a serving layer whose correctness rests on deadlock-free lock
//! usage, a closed message protocol, and overflow-safe accounting. This
//! crate turns all of those promises into machine-checked rules:
//!
//! * **QL01 panic-freedom** — no `unwrap()`/`expect(`/`panic!`/
//!   `unreachable!`/`todo!` in the non-test code of the policy-scoped
//!   crates.
//! * **QL02 determinism hygiene** — no `HashMap`/`HashSet` on the
//!   report/decode/fault path (iteration order leaks into results), and
//!   no `Instant::now`/`SystemTime`/`thread_rng` outside the allow-listed
//!   wall-clock stats module.
//! * **QL03 wire-format cast safety** — no bare `as u8`/`as u16`/`as u32`
//!   narrowing casts in the packet-codec files.
//! * **QL04 lint-table hygiene** — every first-party crate inherits
//!   `[workspace.lints]` and carries `#![forbid(unsafe_code)]`.
//! * **QL05 lock-order safety** — the cross-crate Mutex/Condvar
//!   acquisition graph (guard-scope nesting plus the name-resolved call
//!   graph) is acyclic and respects the canonical `[ql05] order`.
//! * **QL06 protocol exhaustiveness** — every channel-protocol enum
//!   variant is constructed on a send path *and* matched on a receive
//!   path.
//! * **QL07 counter-arithmetic safety** — cost/ledger/quota counters use
//!   checked/saturating arithmetic, never bare `+`/`+=`/`*`.
//! * **QL08 error-variant liveness** — every error enum variant is
//!   constructed somewhere and matched outside a `_` arm.
//!
//! Scopes come from `lint.toml` at the workspace root. A site opts out
//! with `// quest-lint: allow(<rule>) -- <reason>`; the reason is
//! mandatory (QL00 otherwise). The analysis is hand-rolled end to end —
//! the build is offline, so no `syn`/`proc-macro2`: a lexer ([`lexer`]),
//! an item-level parser ([`ast`]), per-fn flow summaries ([`flow`]), and
//! the flow-aware passes ([`passes`]). Each file is read, lexed,
//! test-stripped, and parsed exactly once; every pass works off that
//! shared [`FileData`].
//!
//! Machine-readable output and the committed-baseline workflow live in
//! [`diag::to_json`] and [`baseline`]: CI runs with
//! `--format json --baseline lint-baseline.json`, so only *new* findings
//! fail the build.

#![forbid(unsafe_code)]

pub mod ast;
pub mod baseline;
pub mod diag;
pub mod flow;
pub mod lexer;
pub mod passes;
pub mod policy;
pub mod rules;

pub use diag::{Diagnostic, RuleId};
pub use policy::{Policy, PolicyError};

use lexer::TokenKind;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Which rules a file is in scope for, compiled once per file from the
/// policy's scope globs (previously each pass re-matched per file).
#[derive(Debug, Clone, Copy, Default)]
pub struct Scopes {
    /// QL01 panic-freedom.
    pub ql01: bool,
    /// QL02 container hygiene.
    pub ql02_containers: bool,
    /// QL02 clock hygiene (net of the allow-list).
    pub ql02_clocks: bool,
    /// QL03 cast safety.
    pub ql03: bool,
    /// QL05 lock order.
    pub ql05: bool,
    /// QL06 protocol exhaustiveness.
    pub ql06: bool,
    /// QL07 counter arithmetic.
    pub ql07: bool,
    /// QL08 error-variant liveness.
    pub ql08: bool,
}

impl Scopes {
    /// Compiles the scope set for one file.
    pub fn compile(policy: &Policy, rel: &str) -> Scopes {
        Scopes {
            ql01: Policy::in_scope(rel, &policy.ql01_paths),
            ql02_containers: Policy::in_scope(rel, &policy.ql02_container_paths),
            ql02_clocks: Policy::in_scope(rel, &policy.ql02_clock_paths)
                && !Policy::in_scope(rel, &policy.ql02_clock_allow),
            ql03: Policy::in_scope(rel, &policy.ql03_paths),
            ql05: Policy::in_scope(rel, &policy.ql05_paths),
            ql06: Policy::in_scope(rel, &policy.ql06_paths),
            ql07: Policy::in_scope(rel, &policy.ql07_paths),
            ql08: Policy::in_scope(rel, &policy.ql08_paths),
        }
    }

    /// True when any rule applies, i.e. the file is worth lexing.
    pub fn any(&self) -> bool {
        self.ql01
            || self.ql02_containers
            || self.ql02_clocks
            || self.ql03
            || self.ql05
            || self.ql06
            || self.ql07
            || self.ql08
    }

    /// True when a pass needs the item AST.
    fn needs_ast(&self) -> bool {
        self.ql05 || self.ql06 || self.ql08
    }
}

/// One file, loaded and analyzed exactly once for every pass.
pub struct FileData {
    /// `/`-separated path relative to the workspace root.
    pub rel: String,
    /// Comment-free, test-stripped token stream.
    pub code: Vec<lexer::Token>,
    /// Parsed allow-comments (from the full stream, comments included).
    pub allows: rules::Allows,
    /// Item structure (empty unless an AST pass covers the file).
    pub ast: ast::FileAst,
    /// Compiled rule scopes.
    pub scopes: Scopes,
}

/// Wall time of one pass, for `--timing`.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Pass label.
    pub name: &'static str,
    /// Elapsed wall time.
    pub elapsed: Duration,
}

/// Runs every rule over the workspace at `root` under `policy`.
/// Diagnostics come back sorted by path, then line, then rule.
pub fn run(root: &Path, policy: &Policy) -> Result<Vec<Diagnostic>, PolicyError> {
    run_timed(root, policy).map(|(diags, _)| diags)
}

fn pass_err(message: String) -> PolicyError {
    PolicyError { line: 0, message }
}

/// [`run`], also returning per-pass wall times.
pub fn run_timed(
    root: &Path,
    policy: &Policy,
) -> Result<(Vec<Diagnostic>, Vec<Timing>), PolicyError> {
    let mut timings = Vec::new();
    let timed = |name: &'static str, timings: &mut Vec<Timing>, start: Instant| {
        timings.push(Timing {
            name,
            elapsed: start.elapsed(),
        });
    };

    // Load: walk, lex, strip, and parse each scoped file once.
    let start = Instant::now();
    let mut diags = Vec::new();
    let mut files = Vec::new();
    for rel in rust_files(root, &policy.exclude) {
        let scopes = Scopes::compile(policy, &rel);
        if !scopes.any() {
            continue;
        }
        let src = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| pass_err(format!("cannot read {rel}: {e}")))?;
        let tokens = lexer::lex(&src);
        let (allows, ql00) = rules::parse_allows(&tokens, &rel);
        diags.extend(ql00);
        let code: Vec<lexer::Token> = lexer::strip_test_code(&tokens)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        let ast = if scopes.needs_ast() {
            ast::parse(&code)
        } else {
            ast::FileAst::default()
        };
        files.push(FileData {
            rel,
            code,
            allows,
            ast,
            scopes,
        });
    }
    timed("load", &mut timings, start);

    let start = Instant::now();
    for f in &files {
        if f.scopes.ql01 || f.scopes.ql02_containers || f.scopes.ql02_clocks || f.scopes.ql03 {
            diags.extend(rules::check_tokens(
                &f.code,
                &f.allows,
                &f.rel,
                f.scopes.ql01,
                f.scopes.ql02_containers,
                f.scopes.ql02_clocks,
                f.scopes.ql03,
            ));
        }
    }
    timed("ql01-03", &mut timings, start);

    let start = Instant::now();
    for crate_rel in &policy.ql04_crates {
        diags.extend(rules::check_crate_hygiene(root, crate_rel));
    }
    timed("ql04", &mut timings, start);

    let start = Instant::now();
    if !policy.ql05_locks.is_empty() {
        diags.extend(passes::ql05(&files, policy).map_err(pass_err)?);
    }
    timed("ql05", &mut timings, start);

    let start = Instant::now();
    if !policy.ql06_enums.is_empty() {
        diags.extend(passes::ql06(&files, policy));
    }
    timed("ql06", &mut timings, start);

    let start = Instant::now();
    if !policy.ql07_fields.is_empty() {
        diags.extend(passes::ql07(&files, policy));
    }
    timed("ql07", &mut timings, start);

    let start = Instant::now();
    if !policy.ql08_enums.is_empty() {
        diags.extend(passes::ql08(&files, policy));
    }
    timed("ql08", &mut timings, start);

    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok((diags, timings))
}

/// All `.rs` files under `root`, as `/`-separated paths relative to it,
/// sorted. Directories named in `exclude` (plus `target` and dot-dirs)
/// are never entered.
pub fn rust_files(root: &Path, exclude: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel_dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(root.join(&rel_dir)) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            let rel = if rel_dir.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel_dir.join(&name)
            };
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let Ok(kind) = entry.file_type() else {
                continue;
            };
            if kind.is_dir() {
                let skip = name.starts_with('.')
                    || name == "target"
                    || exclude.iter().any(|x| *x == rel_str || *x == name);
                if !skip {
                    stack.push(rel);
                }
            } else if name.ends_with(".rs") && !Policy::in_scope(&rel_str, exclude) {
                out.push(rel_str);
            }
        }
    }
    out.sort();
    out
}
