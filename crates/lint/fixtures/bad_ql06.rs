//! Protocol rot both ways: `Pong` is matched but never constructed,
//! `Halt` is constructed but only a wildcard arm ever receives it.

pub enum Msg {
    Ping,
    Pong,
    Halt,
}

pub fn send() -> Msg {
    Msg::Ping
}

pub fn send_halt() -> Msg {
    Msg::Halt
}

pub fn recv(m: Msg) -> u8 {
    match m {
        Msg::Ping => 0,
        Msg::Pong => 1,
        _ => 2,
    }
}
