//! QL02 fixture: a `HashMap` on the decode path, line 6.

use std::collections::HashMap;

pub fn tally(events: &[u32]) -> usize {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &e in events {
        *counts.entry(e).or_insert(0) += 1;
    }
    counts.len()
}
