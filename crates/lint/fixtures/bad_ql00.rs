//! QL00 fixture: an allow comment with no `-- reason` justification on
//! line 5, which therefore also fails to suppress the QL01 on line 7.

pub fn no_reason() {
    // quest-lint: allow(QL01)
    let v: Option<u32> = None;
    v.unwrap();
}
