//! QL02 fixture: wall-clock reads outside the stats module, line 6.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
