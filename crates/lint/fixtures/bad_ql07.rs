//! A quota gauge bumped with bare `+=` — exactly the wrap hazard QL07
//! exists to catch.

pub struct Gauge {
    queued_jobs: u64,
}

impl Gauge {
    pub fn bump(&mut self) {
        self.queued_jobs += 1;
    }
}
