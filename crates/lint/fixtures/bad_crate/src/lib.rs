//! QL04 fixture: crate root with no `#![forbid(unsafe_code)]`.

pub fn nothing() {}
