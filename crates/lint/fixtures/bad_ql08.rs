//! A dead error variant: `Never` has a match arm but nothing ever
//! raises it.

pub enum DemoError {
    Io,
    Never,
}

pub fn make() -> DemoError {
    DemoError::Io
}

pub fn classify(e: &DemoError) -> &'static str {
    match e {
        DemoError::Io => "io",
        DemoError::Never => "never",
    }
}
