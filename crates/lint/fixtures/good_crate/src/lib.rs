//! QL04 fixture: a compliant crate root.

#![forbid(unsafe_code)]

pub fn nothing() {}
