//! QL01 fixture: a non-test `unwrap()` on line 5 and a bare `panic!`
//! on line 9. The integration test pins both lines.

pub fn first(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn second() {
    panic!("no justification comment");
}
