//! A fixture that satisfies every quest-lint rule, including the
//! lookalikes a naive substring scan would flag: `unwrap` in a doc
//! comment, an identifier containing `expect`, a `HashMap` in a string
//! literal, and unwraps confined to `#[cfg(test)]` code.

use std::collections::BTreeMap;

/// Returns the value for `key`; callers must not `unwrap()` blindly.
pub fn lookup(map: &BTreeMap<u32, u64>, key: u32) -> Option<u64> {
    let expected_len = map.len(); // `expected_len` is not `.expect(`
    let _ = expected_len;
    map.get(&key).copied()
}

pub fn describe() -> &'static str {
    "uses no HashMap at runtime"
}

pub fn widen(x: u8) -> u32 {
    u32::from(x) // widening conversions are fine under QL03
}

pub fn deliberate() {
    // quest-lint: allow(QL01) -- fixture demonstrating a justified allow
    panic!("covered by the allow comment above");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_works() {
        let mut map = BTreeMap::new();
        map.insert(1, 10);
        assert_eq!(lookup(&map, 1).unwrap(), 10);
    }
}
