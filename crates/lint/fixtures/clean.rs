//! A fixture that satisfies every quest-lint rule, including the
//! lookalikes a naive substring scan would flag: `unwrap` in a doc
//! comment, an identifier containing `expect`, a `HashMap` in a string
//! literal, and unwraps confined to `#[cfg(test)]` code.

use std::collections::BTreeMap;

/// Returns the value for `key`; callers must not `unwrap()` blindly.
pub fn lookup(map: &BTreeMap<u32, u64>, key: u32) -> Option<u64> {
    let expected_len = map.len(); // `expected_len` is not `.expect(`
    let _ = expected_len;
    map.get(&key).copied()
}

pub fn describe() -> &'static str {
    "uses no HashMap at runtime"
}

pub fn widen(x: u8) -> u32 {
    u32::from(x) // widening conversions are fine under QL03
}

pub fn deliberate() {
    // quest-lint: allow(QL01) -- fixture demonstrating a justified allow
    panic!("covered by the allow comment above");
}

/// Channel enum for the flow-rule tests: every variant is both
/// constructed and matched, so QL06 stays quiet.
pub enum CleanMsg {
    Tick,
    Stop,
}

/// Error enum that is raised and specifically handled (QL08-clean).
pub enum CleanError {
    Bad,
}

pub fn send_all() -> (CleanMsg, CleanMsg) {
    (CleanMsg::Tick, CleanMsg::Stop)
}

pub fn recv_all(m: CleanMsg) -> u8 {
    match m {
        CleanMsg::Tick => 0,
        CleanMsg::Stop => 1,
    }
}

pub fn raise() -> CleanError {
    CleanError::Bad
}

pub fn describe_error(e: &CleanError) -> &'static str {
    match e {
        CleanError::Bad => "bad",
    }
}

pub struct CleanPair {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
}

impl CleanPair {
    /// Nests the locks in the canonical order only, so QL05 sees a
    /// single consistent alpha→beta edge.
    pub fn in_order(&self) {
        let first = self.alpha.lock();
        let second = self.beta.lock();
        consume(first, second);
    }
}

pub struct CleanGauge {
    queued_jobs: u64,
}

impl CleanGauge {
    /// Saturating arithmetic keeps the counter QL07-clean.
    pub fn bump(&mut self) {
        self.queued_jobs = self.queued_jobs.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_works() {
        let mut map = BTreeMap::new();
        map.insert(1, 10);
        assert_eq!(lookup(&map, 1).unwrap(), 10);
    }
}
