//! Seeded deadlock: `ab` nests beta inside alpha (the canonical
//! order), while `ba` holds beta and calls a helper that locks alpha —
//! closing an alpha↔beta cycle through the call graph.

pub struct Pair {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) {
        let first = self.alpha.lock();
        let second = self.beta.lock();
        use_both(first, second);
    }

    pub fn ba(&self) {
        let guard = self.beta.lock();
        self.take_alpha();
        use_one(guard);
    }

    fn take_alpha(&self) {
        let inner = self.alpha.lock();
        use_one(inner);
    }
}
