//! QL03 fixture: a narrowing `as u8` cast in wire-format code, line 4.

pub fn encode_len(len: usize) -> u8 {
    len as u8
}
