//! The teeth: `cargo test` fails if the real workspace regresses against
//! the real `lint.toml` policy. This is the same check CI's
//! static-analysis job runs via `cargo run -p quest-lint`, wired into
//! the ordinary test suite so a violation cannot land unnoticed.

use quest_lint::{run, Policy};
use std::path::Path;

#[test]
fn workspace_is_clean_under_the_shipped_policy() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let policy = Policy::load(&root.join("lint.toml")).expect("lint.toml parses");
    let diags = run(root, &policy).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "quest-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
