//! The teeth: `cargo test` fails if the real workspace regresses against
//! the real `lint.toml` policy. This is the same check CI's
//! static-analysis job runs via `cargo run -p quest-lint`, wired into
//! the ordinary test suite so a violation cannot land unnoticed.

use quest_lint::{baseline, run, Policy};
use std::path::Path;

#[test]
fn workspace_is_clean_under_the_shipped_policy() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let policy = Policy::load(&root.join("lint.toml")).expect("lint.toml parses");
    let diags = run(root, &policy).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "quest-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The v2 contract CI enforces: the full workspace run, minus the
/// committed baseline, is empty. Today the baseline itself is empty —
/// the whole tree is QL01–QL08 clean — so this also pins the baseline
/// file as parseable and the filter as a no-op.
#[test]
fn workspace_has_zero_non_baselined_findings() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let policy = Policy::load(&root.join("lint.toml")).expect("lint.toml parses");
    let diags = run(root, &policy).expect("workspace walk succeeds");
    let keys = baseline::load(&root.join("lint-baseline.json")).expect("baseline parses");
    let (fresh, _suppressed) = baseline::filter(diags, &keys);
    assert!(
        fresh.is_empty(),
        "quest-lint found {} non-baselined violation(s):\n{}",
        fresh.len(),
        fresh
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
