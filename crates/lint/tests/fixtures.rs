//! Fixture-driven end-to-end tests: each bad fixture must trip exactly
//! its rule at the pinned line, and the clean fixture (full of
//! lookalikes) must pass every rule it is scoped into.

use quest_lint::{run, Diagnostic, Policy, RuleId};
use std::path::Path;

fn fixtures_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
}

/// A policy that scopes `file` into every token-level rule.
fn policy_for(file: &str) -> Policy {
    Policy {
        ql01_paths: vec![file.to_string()],
        ql02_container_paths: vec![file.to_string()],
        ql02_clock_paths: vec![file.to_string()],
        ql03_paths: vec![file.to_string()],
        ..Policy::default()
    }
}

fn diags_for(file: &str) -> Vec<Diagnostic> {
    run(fixtures_root(), &policy_for(file)).expect("fixture run succeeds")
}

#[test]
fn clean_fixture_passes_every_rule() {
    let diags = diags_for("clean.rs");
    assert!(diags.is_empty(), "clean fixture flagged: {diags:?}");
}

#[test]
fn ql01_fixture_flags_unwrap_and_panic_at_pinned_lines() {
    let diags = diags_for("bad_ql01.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::QL01), "{diags:?}");
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![5, 9], "{diags:?}");
}

#[test]
fn ql00_fixture_flags_missing_reason_and_still_reports_ql01() {
    let diags = diags_for("bad_ql00.rs");
    assert!(
        diags.iter().any(|d| d.rule == RuleId::QL00 && d.line == 5),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.rule == RuleId::QL01 && d.line == 7),
        "{diags:?}"
    );
}

#[test]
fn ql02_container_fixture_flags_hashmap() {
    let diags = diags_for("bad_ql02_container.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::QL02), "{diags:?}");
    assert!(diags.iter().any(|d| d.line == 6), "{diags:?}");
}

#[test]
fn ql02_clock_fixture_flags_instant() {
    let diags = diags_for("bad_ql02_clock.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::QL02), "{diags:?}");
    assert!(diags.iter().any(|d| d.line == 6), "{diags:?}");
}

#[test]
fn ql02_clock_allow_list_suppresses() {
    let mut policy = policy_for("bad_ql02_clock.rs");
    policy.ql02_container_paths.clear();
    policy.ql02_clock_allow = vec!["bad_ql02_clock.rs".to_string()];
    let diags = run(fixtures_root(), &policy).expect("fixture run succeeds");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn ql03_fixture_flags_narrowing_cast_at_pinned_line() {
    let diags = diags_for("bad_ql03.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::QL03);
    assert_eq!(diags[0].line, 4);
}

/// A policy that scopes `file` into the flow-aware rules QL05–QL08,
/// with the fixture lock classes, enums and counter fields.
fn flow_policy_for(file: &str) -> Policy {
    Policy {
        ql05_paths: vec![file.to_string()],
        ql05_order: vec!["alpha".to_string(), "beta".to_string()],
        ql05_locks: vec![
            format!("alpha @ {file} :: alpha.lock"),
            format!("beta @ {file} :: beta.lock"),
        ],
        ql06_paths: vec![file.to_string()],
        ql06_enums: vec!["Msg".to_string()],
        ql07_paths: vec![file.to_string()],
        ql07_fields: vec!["queued_jobs".to_string()],
        ql08_paths: vec![file.to_string()],
        ql08_enums: vec!["DemoError".to_string()],
        ..Policy::default()
    }
}

fn flow_diags_for(file: &str) -> Vec<Diagnostic> {
    let mut policy = flow_policy_for(file);
    // Scope the liveness passes to the file's own enums so the missing-
    // enum diagnostic does not fire for the other fixture's enum.
    match file {
        "bad_ql06.rs" => policy.ql08_enums.clear(),
        "bad_ql08.rs" => policy.ql06_enums.clear(),
        _ => {
            policy.ql06_enums.clear();
            policy.ql08_enums.clear();
        }
    }
    run(fixtures_root(), &policy).expect("fixture run succeeds")
}

#[test]
fn ql05_fixture_flags_the_seeded_deadlock_cycle() {
    let diags = flow_diags_for("bad_ql05.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::QL05), "{diags:?}");
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    // The direct alpha→beta nesting and the call-mediated beta→alpha
    // edge each close the cycle.
    assert_eq!(lines, vec![13, 19], "{diags:?}");
    assert!(
        diags.iter().all(|d| d.message.contains("cycle")),
        "{diags:?}"
    );
}

#[test]
fn ql06_fixture_flags_unconstructed_and_unmatched_variants() {
    let diags = flow_diags_for("bad_ql06.rs");
    assert!(diags.iter().all(|d| d.rule == RuleId::QL06), "{diags:?}");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(
        diags
            .iter()
            .any(|d| d.line == 6 && d.message.contains("`Msg::Pong` is never constructed")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.line == 7 && d.message.contains("`Msg::Halt` is never matched")),
        "{diags:?}"
    );
}

#[test]
fn ql07_fixture_flags_the_bare_increment() {
    let diags = flow_diags_for("bad_ql07.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::QL07);
    assert_eq!(diags[0].line, 10);
    assert!(diags[0].message.contains("queued_jobs"), "{diags:?}");
}

#[test]
fn ql08_fixture_flags_the_never_constructed_variant() {
    let diags = flow_diags_for("bad_ql08.rs");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::QL08);
    assert_eq!(diags[0].line, 6);
    assert!(
        diags[0]
            .message
            .contains("`DemoError::Never` is never constructed"),
        "{diags:?}"
    );
}

#[test]
fn clean_fixture_passes_the_flow_rules_too() {
    let mut policy = flow_policy_for("clean.rs");
    policy.ql06_enums = vec!["CleanMsg".to_string()];
    policy.ql08_enums = vec!["CleanError".to_string()];
    let diags = run(fixtures_root(), &policy).expect("fixture run succeeds");
    assert!(diags.is_empty(), "clean fixture flagged: {diags:?}");
}

#[test]
fn ql04_flags_missing_lints_table_and_missing_forbid() {
    let policy = Policy {
        ql04_crates: vec!["bad_crate".to_string()],
        ..Policy::default()
    };
    let diags = run(fixtures_root(), &policy).expect("fixture run succeeds");
    assert!(diags.iter().all(|d| d.rule == RuleId::QL04), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.path == "bad_crate/Cargo.toml"),
        "{diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.path == "bad_crate/src/lib.rs"),
        "{diags:?}"
    );
}

#[test]
fn ql04_passes_a_compliant_crate() {
    let policy = Policy {
        ql04_crates: vec!["good_crate".to_string()],
        ..Policy::default()
    };
    let diags = run(fixtures_root(), &policy).expect("fixture run succeeds");
    assert!(diags.is_empty(), "{diags:?}");
}
