//! Logical (fault-tolerant) instruction set.
//!
//! Logical instructions manipulate surface-code logical qubits (§5.1). Two
//! categories exist: *transverse* instructions applied to every physical
//! qubit inside a logical qubit, and *mask* instructions that move, expand
//! and contract logical-qubit boundaries by rewriting the QECC mask table.
//! T gates additionally consume a magic state produced by distillation.
//!
//! Following the paper's §5.3 (after Balensiefer et al.), logical
//! instructions are fixed at **two bytes**: an opcode byte and an operand
//! byte.

use std::fmt;

/// Identifier of a logical qubit within an MCE tile (8-bit operand space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalQubit(pub u8);

impl fmt::Display for LogicalQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifier of a pre-defined mask region (a d²-coalesced group of mask
/// bits, §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MaskRegion(pub u8);

impl fmt::Display for MaskRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Broad classification used by the bandwidth accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Algorithmic logical instruction (the "useful" work).
    Algorithmic,
    /// Magic-state-distillation (T-factory) instruction.
    Distillation,
    /// Master-controller synchronization token.
    Sync,
    /// Instruction-cache management.
    CacheControl,
}

/// A two-byte logical instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalInstr {
    /// Prepare a logical qubit in `|0_L⟩` (transverse).
    PrepZ(LogicalQubit),
    /// Prepare a logical qubit in `|+_L⟩` (transverse).
    PrepX(LogicalQubit),
    /// Measure a logical qubit in the Z basis.
    MeasZ(LogicalQubit),
    /// Measure a logical qubit in the X basis.
    MeasX(LogicalQubit),
    /// Transverse logical Hadamard.
    H(LogicalQubit),
    /// Logical phase gate.
    S(LogicalQubit),
    /// Transverse logical X.
    X(LogicalQubit),
    /// Transverse logical Z.
    Z(LogicalQubit),
    /// Logical CNOT via braiding (operands packed as two nibbles).
    Cnot {
        /// Control logical qubit (0–15 in the packed encoding).
        control: LogicalQubit,
        /// Target logical qubit (0–15 in the packed encoding).
        target: LogicalQubit,
    },
    /// T gate on a logical qubit (consumes one magic state).
    T(LogicalQubit),
    /// Disable QECC inside a mask region (create/extend a logical qubit).
    MaskOn(MaskRegion),
    /// Re-enable QECC inside a mask region (contract a logical qubit).
    MaskOff(MaskRegion),
    /// One braid step: extend a logical boundary through a region.
    BraidStep(MaskRegion),
    /// Inject a distilled magic state into a logical qubit.
    MagicInject(LogicalQubit),
    /// Master-controller synchronization token (operand = token id).
    Sync(u8),
    /// Begin loading a cached instruction block (operand = block id).
    CacheLoad(u8),
    /// Replay a cached block (operand = block id).
    CacheReplay(u8),
}

impl LogicalInstr {
    /// Encoded size in bytes (paper §5.3: two-byte quantum instructions).
    pub const ENCODED_BYTES: usize = 2;

    /// Classifies the instruction for bandwidth accounting. `T`,
    /// `MagicInject` and the surrounding distillation instructions are
    /// produced with an explicit class by the workload generators; at the
    /// ISA level only cache/sync instructions have a fixed class.
    pub fn intrinsic_class(self) -> InstrClass {
        match self {
            LogicalInstr::Sync(_) => InstrClass::Sync,
            LogicalInstr::CacheLoad(_) | LogicalInstr::CacheReplay(_) => InstrClass::CacheControl,
            _ => InstrClass::Algorithmic,
        }
    }

    /// Returns `true` for instructions that require a magic state.
    pub fn needs_magic_state(self) -> bool {
        matches!(self, LogicalInstr::T(_))
    }

    /// Returns `true` for mask-table instructions.
    pub fn is_mask_instr(self) -> bool {
        matches!(
            self,
            LogicalInstr::MaskOn(_) | LogicalInstr::MaskOff(_) | LogicalInstr::BraidStep(_)
        )
    }

    /// Two-byte encoding: `[opcode, operand]`.
    pub fn encode(self) -> [u8; 2] {
        match self {
            LogicalInstr::PrepZ(q) => [0x01, q.0],
            LogicalInstr::PrepX(q) => [0x02, q.0],
            LogicalInstr::MeasZ(q) => [0x03, q.0],
            LogicalInstr::MeasX(q) => [0x04, q.0],
            LogicalInstr::H(q) => [0x05, q.0],
            LogicalInstr::S(q) => [0x06, q.0],
            LogicalInstr::X(q) => [0x07, q.0],
            LogicalInstr::Z(q) => [0x08, q.0],
            LogicalInstr::Cnot { control, target } => {
                assert!(
                    control.0 < 16 && target.0 < 16,
                    "packed CNOT operands must be < 16"
                );
                [0x09, (control.0 << 4) | target.0]
            }
            LogicalInstr::T(q) => [0x0A, q.0],
            LogicalInstr::MaskOn(r) => [0x0B, r.0],
            LogicalInstr::MaskOff(r) => [0x0C, r.0],
            LogicalInstr::BraidStep(r) => [0x0D, r.0],
            LogicalInstr::MagicInject(q) => [0x0E, q.0],
            LogicalInstr::Sync(t) => [0x0F, t],
            LogicalInstr::CacheLoad(b) => [0x10, b],
            LogicalInstr::CacheReplay(b) => [0x11, b],
        }
    }

    /// Decodes two bytes; `None` for undefined opcodes.
    pub fn decode(bytes: [u8; 2]) -> Option<LogicalInstr> {
        let [op, arg] = bytes;
        Some(match op {
            0x01 => LogicalInstr::PrepZ(LogicalQubit(arg)),
            0x02 => LogicalInstr::PrepX(LogicalQubit(arg)),
            0x03 => LogicalInstr::MeasZ(LogicalQubit(arg)),
            0x04 => LogicalInstr::MeasX(LogicalQubit(arg)),
            0x05 => LogicalInstr::H(LogicalQubit(arg)),
            0x06 => LogicalInstr::S(LogicalQubit(arg)),
            0x07 => LogicalInstr::X(LogicalQubit(arg)),
            0x08 => LogicalInstr::Z(LogicalQubit(arg)),
            0x09 => LogicalInstr::Cnot {
                control: LogicalQubit(arg >> 4),
                target: LogicalQubit(arg & 0x0F),
            },
            0x0A => LogicalInstr::T(LogicalQubit(arg)),
            0x0B => LogicalInstr::MaskOn(MaskRegion(arg)),
            0x0C => LogicalInstr::MaskOff(MaskRegion(arg)),
            0x0D => LogicalInstr::BraidStep(MaskRegion(arg)),
            0x0E => LogicalInstr::MagicInject(LogicalQubit(arg)),
            0x0F => LogicalInstr::Sync(arg),
            0x10 => LogicalInstr::CacheLoad(arg),
            0x11 => LogicalInstr::CacheReplay(arg),
            _ => return None,
        })
    }
}

impl fmt::Display for LogicalInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalInstr::PrepZ(q) => write!(f, "lprepz {q}"),
            LogicalInstr::PrepX(q) => write!(f, "lprepx {q}"),
            LogicalInstr::MeasZ(q) => write!(f, "lmeasz {q}"),
            LogicalInstr::MeasX(q) => write!(f, "lmeasx {q}"),
            LogicalInstr::H(q) => write!(f, "lh {q}"),
            LogicalInstr::S(q) => write!(f, "ls {q}"),
            LogicalInstr::X(q) => write!(f, "lx {q}"),
            LogicalInstr::Z(q) => write!(f, "lz {q}"),
            LogicalInstr::Cnot { control, target } => write!(f, "lcnot {control} {target}"),
            LogicalInstr::T(q) => write!(f, "lt {q}"),
            LogicalInstr::MaskOn(r) => write!(f, "mask.on {r}"),
            LogicalInstr::MaskOff(r) => write!(f, "mask.off {r}"),
            LogicalInstr::BraidStep(r) => write!(f, "braid {r}"),
            LogicalInstr::MagicInject(q) => write!(f, "minject {q}"),
            LogicalInstr::Sync(t) => write!(f, "sync {t}"),
            LogicalInstr::CacheLoad(b) => write!(f, "cload {b}"),
            LogicalInstr::CacheReplay(b) => write!(f, "creplay {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LogicalInstr> {
        vec![
            LogicalInstr::PrepZ(LogicalQubit(0)),
            LogicalInstr::PrepX(LogicalQubit(255)),
            LogicalInstr::MeasZ(LogicalQubit(7)),
            LogicalInstr::MeasX(LogicalQubit(8)),
            LogicalInstr::H(LogicalQubit(1)),
            LogicalInstr::S(LogicalQubit(2)),
            LogicalInstr::X(LogicalQubit(3)),
            LogicalInstr::Z(LogicalQubit(4)),
            LogicalInstr::Cnot {
                control: LogicalQubit(15),
                target: LogicalQubit(0),
            },
            LogicalInstr::T(LogicalQubit(5)),
            LogicalInstr::MaskOn(MaskRegion(9)),
            LogicalInstr::MaskOff(MaskRegion(10)),
            LogicalInstr::BraidStep(MaskRegion(11)),
            LogicalInstr::MagicInject(LogicalQubit(6)),
            LogicalInstr::Sync(42),
            LogicalInstr::CacheLoad(1),
            LogicalInstr::CacheReplay(2),
        ]
    }

    #[test]
    fn encodings_round_trip() {
        for i in samples() {
            assert_eq!(LogicalInstr::decode(i.encode()), Some(i), "{i}");
        }
    }

    #[test]
    fn encodings_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in samples() {
            assert!(seen.insert(i.encode()), "duplicate encoding for {i}");
        }
    }

    #[test]
    fn undefined_opcode_decodes_to_none() {
        assert_eq!(LogicalInstr::decode([0x00, 0x00]), None);
        assert_eq!(LogicalInstr::decode([0xFF, 0x01]), None);
    }

    #[test]
    fn classification() {
        assert_eq!(LogicalInstr::Sync(0).intrinsic_class(), InstrClass::Sync);
        assert_eq!(
            LogicalInstr::CacheReplay(0).intrinsic_class(),
            InstrClass::CacheControl
        );
        assert_eq!(
            LogicalInstr::T(LogicalQubit(0)).intrinsic_class(),
            InstrClass::Algorithmic
        );
        assert!(LogicalInstr::T(LogicalQubit(0)).needs_magic_state());
        assert!(LogicalInstr::MaskOn(MaskRegion(0)).is_mask_instr());
        assert!(!LogicalInstr::H(LogicalQubit(0)).is_mask_instr());
    }

    #[test]
    #[should_panic(expected = "packed CNOT operands")]
    fn oversized_cnot_operand_panics() {
        LogicalInstr::Cnot {
            control: LogicalQubit(16),
            target: LogicalQubit(0),
        }
        .encode();
    }
}
