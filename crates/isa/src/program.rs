//! Logical program representation.
//!
//! A [`LogicalProgram`] is the stream of two-byte logical instructions a
//! quantum workload sends through the master controller, with each
//! instruction tagged by its bandwidth class (algorithmic vs. distillation
//! vs. sync). The tags drive the instruction-bandwidth accounting in the
//! architecture and estimator crates.

use crate::logical::{InstrClass, LogicalInstr};
use std::fmt;

/// A classified stream of logical instructions.
///
/// # Example
///
/// ```
/// use quest_isa::{InstrClass, LogicalInstr, LogicalProgram, LogicalQubit};
///
/// let mut p = LogicalProgram::new();
/// p.push(LogicalInstr::H(LogicalQubit(0)), InstrClass::Algorithmic);
/// p.push(LogicalInstr::T(LogicalQubit(0)), InstrClass::Algorithmic);
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.t_count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogicalProgram {
    instrs: Vec<(LogicalInstr, InstrClass)>,
}

impl LogicalProgram {
    /// Creates an empty program.
    pub fn new() -> LogicalProgram {
        LogicalProgram::default()
    }

    /// Appends a classified instruction.
    pub fn push(&mut self, i: LogicalInstr, class: InstrClass) {
        self.instrs.push((i, class));
    }

    /// Appends an instruction using its intrinsic class.
    pub fn push_auto(&mut self, i: LogicalInstr) {
        self.instrs.push((i, i.intrinsic_class()));
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` when the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Iterates over `(instruction, class)` pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (LogicalInstr, InstrClass)> {
        self.instrs.iter()
    }

    /// Number of instructions in a class.
    pub fn count_class(&self, class: InstrClass) -> usize {
        self.instrs.iter().filter(|(_, c)| *c == class).count()
    }

    /// Number of T gates (each consuming a magic state).
    pub fn t_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|(i, _)| i.needs_magic_state())
            .count()
    }

    /// Fraction of instructions that are T gates.
    pub fn t_fraction(&self) -> f64 {
        if self.instrs.is_empty() {
            0.0
        } else {
            self.t_count() as f64 / self.instrs.len() as f64
        }
    }

    /// Total encoded size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.instrs.len() * LogicalInstr::ENCODED_BYTES
    }

    /// Serializes to a flat byte stream.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_bytes());
        for (i, _) in &self.instrs {
            out.extend_from_slice(&i.encode());
        }
        out
    }

    /// Deserializes a byte stream (classes restored via
    /// [`LogicalInstr::intrinsic_class`]). Returns `None` on odd length or
    /// undefined opcodes.
    pub fn decode(bytes: &[u8]) -> Option<LogicalProgram> {
        if !bytes.len().is_multiple_of(2) {
            return None;
        }
        let mut p = LogicalProgram::new();
        for chunk in bytes.chunks_exact(2) {
            let i = LogicalInstr::decode([chunk[0], chunk[1]])?;
            p.push_auto(i);
        }
        Some(p)
    }
}

impl FromIterator<(LogicalInstr, InstrClass)> for LogicalProgram {
    fn from_iter<I: IntoIterator<Item = (LogicalInstr, InstrClass)>>(iter: I) -> LogicalProgram {
        LogicalProgram {
            instrs: iter.into_iter().collect(),
        }
    }
}

impl Extend<(LogicalInstr, InstrClass)> for LogicalProgram {
    fn extend<I: IntoIterator<Item = (LogicalInstr, InstrClass)>>(&mut self, iter: I) {
        self.instrs.extend(iter);
    }
}

impl<'a> IntoIterator for &'a LogicalProgram {
    type Item = &'a (LogicalInstr, InstrClass);
    type IntoIter = std::slice::Iter<'a, (LogicalInstr, InstrClass)>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

impl fmt::Display for LogicalProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, _) in &self.instrs {
            writeln!(f, "{i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalQubit;

    fn sample() -> LogicalProgram {
        let mut p = LogicalProgram::new();
        p.push(
            LogicalInstr::PrepZ(LogicalQubit(0)),
            InstrClass::Algorithmic,
        );
        p.push(LogicalInstr::H(LogicalQubit(0)), InstrClass::Algorithmic);
        p.push(LogicalInstr::T(LogicalQubit(0)), InstrClass::Algorithmic);
        p.push(
            LogicalInstr::Cnot {
                control: LogicalQubit(0),
                target: LogicalQubit(1),
            },
            InstrClass::Distillation,
        );
        p.push_auto(LogicalInstr::Sync(1));
        p
    }

    #[test]
    fn counting() {
        let p = sample();
        assert_eq!(p.len(), 5);
        assert_eq!(p.t_count(), 1);
        assert_eq!(p.count_class(InstrClass::Algorithmic), 3);
        assert_eq!(p.count_class(InstrClass::Distillation), 1);
        assert_eq!(p.count_class(InstrClass::Sync), 1);
        assert!((p.t_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn encode_decode_round_trip_preserves_instructions() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), p.encoded_bytes());
        let q = LogicalProgram::decode(&bytes).unwrap();
        // Instructions survive; explicit classes collapse to intrinsic.
        let orig: Vec<LogicalInstr> = p.iter().map(|(i, _)| *i).collect();
        let back: Vec<LogicalInstr> = q.iter().map(|(i, _)| *i).collect();
        assert_eq!(orig, back);
    }

    #[test]
    fn odd_length_stream_rejected() {
        assert_eq!(LogicalProgram::decode(&[0x01]), None);
    }

    #[test]
    fn empty_program() {
        let p = LogicalProgram::new();
        assert!(p.is_empty());
        assert_eq!(p.t_fraction(), 0.0);
        assert_eq!(p.encoded_bytes(), 0);
    }
}
