//! Text assembler/disassembler for logical programs.
//!
//! The paper's toolchain (ScaffCC) compiles quantum programs into logical
//! instruction streams; this module provides the equivalent front door: a
//! small assembly language that round-trips with [`LogicalProgram`].
//!
//! Syntax: one instruction per line, `#` comments, and `.class`
//! directives that set the bandwidth class of subsequent instructions:
//!
//! ```text
//! .class algorithmic
//! lprepz L0
//! lh L0
//! lcnot L0 L1
//! lt L1
//! .class distillation
//! lprepx L2
//! sync 3
//! ```

use crate::logical::{InstrClass, LogicalInstr, LogicalQubit, MaskRegion};
use crate::program::LogicalProgram;
use std::error::Error;
use std::fmt;

/// Error produced when assembling a program from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError {
        line,
        message: message.into(),
    }
}

fn parse_qubit(tok: &str, line: usize) -> Result<LogicalQubit, ParseAsmError> {
    let body = tok
        .strip_prefix('L')
        .ok_or_else(|| err(line, format!("expected logical qubit `L<n>`, got `{tok}`")))?;
    body.parse::<u8>()
        .map(LogicalQubit)
        .map_err(|_| err(line, format!("invalid qubit id `{tok}`")))
}

fn parse_region(tok: &str, line: usize) -> Result<MaskRegion, ParseAsmError> {
    let body = tok
        .strip_prefix('R')
        .ok_or_else(|| err(line, format!("expected mask region `R<n>`, got `{tok}`")))?;
    body.parse::<u8>()
        .map(MaskRegion)
        .map_err(|_| err(line, format!("invalid region id `{tok}`")))
}

fn parse_u8(tok: &str, line: usize) -> Result<u8, ParseAsmError> {
    tok.parse::<u8>()
        .map_err(|_| err(line, format!("expected 8-bit literal, got `{tok}`")))
}

/// Assembles a program from text.
///
/// # Errors
///
/// Returns a [`ParseAsmError`] naming the offending line for unknown
/// mnemonics, malformed operands, or bad `.class` directives.
pub fn parse(source: &str) -> Result<LogicalProgram, ParseAsmError> {
    let mut program = LogicalProgram::new();
    let mut class = InstrClass::Algorithmic;
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut toks = text.split_whitespace();
        let head = toks.next().expect("nonempty line has a token");
        let mut operand = |name: &str| {
            toks.next()
                .ok_or_else(|| err(line, format!("`{head}` needs a {name} operand")))
        };
        let instr = match head {
            ".class" => {
                let c = operand("class")?;
                class = match c {
                    "algorithmic" => InstrClass::Algorithmic,
                    "distillation" => InstrClass::Distillation,
                    "sync" => InstrClass::Sync,
                    "cache" => InstrClass::CacheControl,
                    other => return Err(err(line, format!("unknown class `{other}`"))),
                };
                continue;
            }
            "lprepz" => LogicalInstr::PrepZ(parse_qubit(operand("qubit")?, line)?),
            "lprepx" => LogicalInstr::PrepX(parse_qubit(operand("qubit")?, line)?),
            "lmeasz" => LogicalInstr::MeasZ(parse_qubit(operand("qubit")?, line)?),
            "lmeasx" => LogicalInstr::MeasX(parse_qubit(operand("qubit")?, line)?),
            "lh" => LogicalInstr::H(parse_qubit(operand("qubit")?, line)?),
            "ls" => LogicalInstr::S(parse_qubit(operand("qubit")?, line)?),
            "lx" => LogicalInstr::X(parse_qubit(operand("qubit")?, line)?),
            "lz" => LogicalInstr::Z(parse_qubit(operand("qubit")?, line)?),
            "lcnot" => {
                let control = parse_qubit(operand("control")?, line)?;
                let target = parse_qubit(operand("target")?, line)?;
                if control.0 >= 16 || target.0 >= 16 {
                    return Err(err(line, "lcnot operands must be L0–L15 (packed encoding)"));
                }
                LogicalInstr::Cnot { control, target }
            }
            "lt" => LogicalInstr::T(parse_qubit(operand("qubit")?, line)?),
            "mask.on" => LogicalInstr::MaskOn(parse_region(operand("region")?, line)?),
            "mask.off" => LogicalInstr::MaskOff(parse_region(operand("region")?, line)?),
            "braid" => LogicalInstr::BraidStep(parse_region(operand("region")?, line)?),
            "minject" => LogicalInstr::MagicInject(parse_qubit(operand("qubit")?, line)?),
            "sync" => LogicalInstr::Sync(parse_u8(operand("token")?, line)?),
            "cload" => LogicalInstr::CacheLoad(parse_u8(operand("block")?, line)?),
            "creplay" => LogicalInstr::CacheReplay(parse_u8(operand("block")?, line)?),
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        if let Some(extra) = toks.next() {
            return Err(err(line, format!("unexpected trailing token `{extra}`")));
        }
        program.push(instr, class);
    }
    Ok(program)
}

/// Disassembles a program to text that [`parse`] accepts, emitting
/// `.class` directives at class boundaries.
pub fn format(program: &LogicalProgram) -> String {
    let mut out = String::new();
    let mut current: Option<InstrClass> = None;
    for &(i, class) in program {
        if current != Some(class) {
            let name = match class {
                InstrClass::Algorithmic => "algorithmic",
                InstrClass::Distillation => "distillation",
                InstrClass::Sync => "sync",
                InstrClass::CacheControl => "cache",
            };
            out.push_str(".class ");
            out.push_str(name);
            out.push('\n');
            current = Some(class);
        }
        out.push_str(&i.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# prepare a Bell-ish pair and rotate
.class algorithmic
lprepz L0
lprepx L1
lcnot L1 L0
lt L0
.class distillation
minject L2
lmeasx L2
.class sync
sync 7
";

    #[test]
    fn sample_assembles() {
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.len(), 7);
        assert_eq!(p.count_class(InstrClass::Algorithmic), 4);
        assert_eq!(p.count_class(InstrClass::Distillation), 2);
        assert_eq!(p.count_class(InstrClass::Sync), 1);
        assert_eq!(p.t_count(), 1);
    }

    #[test]
    fn round_trip_text_binary_text() {
        let p = parse(SAMPLE).unwrap();
        let text = format(&p);
        let again = parse(&text).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = parse("lh L0\nfrobnicate L1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn missing_operand_reports_line() {
        let e = parse("lcnot L0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("target"));
    }

    #[test]
    fn bad_qubit_prefix_rejected() {
        let e = parse("lh 0\n").unwrap_err();
        assert!(e.message.contains("L<n>"));
    }

    #[test]
    fn packed_cnot_range_enforced() {
        let e = parse("lcnot L16 L0\n").unwrap_err();
        assert!(e.message.contains("L0–L15"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let e = parse("lh L0 L1\n").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse("\n  # nothing\n\nlh L3 # inline\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn kernel_sized_programs_round_trip() {
        // Build a large program with every mnemonic and round-trip it.
        let mut src = String::from(".class distillation\n");
        for i in 0..40u8 {
            src.push_str(&std::format!("lprepx L{i}\nlt L{i}\nminject L{i}\n"));
        }
        src.push_str("mask.on R3\nbraid R3\nmask.off R3\ncload 1\ncreplay 1\n");
        let p = parse(&src).unwrap();
        let again = parse(&format(&p)).unwrap();
        assert_eq!(p, again);
        assert_eq!(p.len(), 125);
    }
}
