//! Physical µops: byte-sized select codes for the microwave switch matrix.
//!
//! In the prime-line architecture (§2.3) a physical instruction is simply
//! the select bits steering one of the AWG waveforms to one qubit. The
//! paper assumes byte-sized physical instructions; we encode a µop as
//! `opcode(4 bits) | arg(4 bits)`. The argument nibble carries the coupling
//! direction for two-qubit gate halves and is zero otherwise.

use std::fmt;

/// 4-bit physical opcode: the waveform selected for a qubit in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum PhysOpcode {
    /// Idle (identity waveform).
    #[default]
    Nop = 0,
    /// Prepare `|0⟩`.
    PrepZ = 1,
    /// Prepare `|+⟩`.
    PrepX = 2,
    /// Measure in the Z basis.
    MeasZ = 3,
    /// Measure in the X basis.
    MeasX = 4,
    /// Hadamard.
    H = 5,
    /// Phase gate `S`.
    S = 6,
    /// Inverse phase gate `S†`.
    Sdg = 7,
    /// Pauli X.
    X = 8,
    /// Pauli Y.
    Y = 9,
    /// Pauli Z.
    Z = 10,
    /// Control half of a CNOT; the arg nibble names the target direction.
    CnotCtrl = 11,
    /// Target half of a CNOT; the arg nibble names the control direction.
    CnotTgt = 12,
}

impl PhysOpcode {
    /// All defined opcodes.
    pub const ALL: [PhysOpcode; 13] = [
        PhysOpcode::Nop,
        PhysOpcode::PrepZ,
        PhysOpcode::PrepX,
        PhysOpcode::MeasZ,
        PhysOpcode::MeasX,
        PhysOpcode::H,
        PhysOpcode::S,
        PhysOpcode::Sdg,
        PhysOpcode::X,
        PhysOpcode::Y,
        PhysOpcode::Z,
        PhysOpcode::CnotCtrl,
        PhysOpcode::CnotTgt,
    ];

    /// Opcode width in bits (the paper's FIFO-optimization µop size, §4.5).
    pub const BITS: usize = 4;

    /// Decodes a 4-bit value.
    pub fn from_nibble(n: u8) -> Option<PhysOpcode> {
        PhysOpcode::ALL.get(n as usize).copied()
    }

    /// The 4-bit encoding.
    pub fn nibble(self) -> u8 {
        self as u8
    }

    /// Returns `true` for the two CNOT halves.
    pub fn is_two_qubit_half(self) -> bool {
        matches!(self, PhysOpcode::CnotCtrl | PhysOpcode::CnotTgt)
    }

    /// Returns `true` for measurement waveforms.
    pub fn is_measurement(self) -> bool {
        matches!(self, PhysOpcode::MeasZ | PhysOpcode::MeasX)
    }
}

impl fmt::Display for PhysOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhysOpcode::Nop => "nop",
            PhysOpcode::PrepZ => "prepz",
            PhysOpcode::PrepX => "prepx",
            PhysOpcode::MeasZ => "measz",
            PhysOpcode::MeasX => "measx",
            PhysOpcode::H => "h",
            PhysOpcode::S => "s",
            PhysOpcode::Sdg => "sdg",
            PhysOpcode::X => "x",
            PhysOpcode::Y => "y",
            PhysOpcode::Z => "z",
            PhysOpcode::CnotCtrl => "cnot.c",
            PhysOpcode::CnotTgt => "cnot.t",
        };
        write!(f, "{s}")
    }
}

/// Lattice coupling direction for two-qubit gate halves.
///
/// The rotated surface code couples each ancilla to its four diagonal data
/// neighbours; the direction nibble tells the switch matrix which coupler
/// to energize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Direction {
    /// North-west neighbour.
    Nw = 0,
    /// North-east neighbour.
    Ne = 1,
    /// South-west neighbour.
    Sw = 2,
    /// South-east neighbour.
    Se = 3,
}

impl Direction {
    /// All four directions in encoding order.
    pub const ALL: [Direction; 4] = [Direction::Nw, Direction::Ne, Direction::Sw, Direction::Se];

    /// Decodes a 2-bit value.
    pub fn from_bits(b: u8) -> Option<Direction> {
        Direction::ALL.get(b as usize).copied()
    }

    /// The direction pointing back (NW ↔ SE, NE ↔ SW).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Nw => Direction::Se,
            Direction::Ne => Direction::Sw,
            Direction::Sw => Direction::Ne,
            Direction::Se => Direction::Nw,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Nw => "nw",
            Direction::Ne => "ne",
            Direction::Sw => "sw",
            Direction::Se => "se",
        };
        write!(f, "{s}")
    }
}

/// One physical µop: opcode plus a 4-bit argument.
///
/// The encoded form is the single byte `opcode << 4 | arg` — the paper's
/// byte-sized physical instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MicroOp {
    opcode: PhysOpcode,
    arg: u8,
}

impl MicroOp {
    /// Builds a µop.
    ///
    /// # Panics
    ///
    /// Panics if `arg` does not fit in 4 bits.
    pub fn new(opcode: PhysOpcode, arg: u8) -> MicroOp {
        assert!(arg < 16, "µop argument must fit in a nibble");
        MicroOp { opcode, arg }
    }

    /// The idle µop.
    pub fn nop() -> MicroOp {
        MicroOp::default()
    }

    /// A single-qubit µop (argument 0).
    pub fn simple(opcode: PhysOpcode) -> MicroOp {
        MicroOp::new(opcode, 0)
    }

    /// A CNOT-half µop with its coupling direction.
    pub fn cnot_half(opcode: PhysOpcode, dir: Direction) -> MicroOp {
        assert!(
            opcode.is_two_qubit_half(),
            "direction argument only valid for CNOT halves"
        );
        MicroOp::new(opcode, dir as u8)
    }

    /// Opcode.
    pub fn opcode(self) -> PhysOpcode {
        self.opcode
    }

    /// Raw argument nibble.
    pub fn arg(self) -> u8 {
        self.arg
    }

    /// Coupling direction, when this is a CNOT half.
    pub fn direction(self) -> Option<Direction> {
        if self.opcode.is_two_qubit_half() {
            Direction::from_bits(self.arg)
        } else {
            None
        }
    }

    /// Byte encoding.
    pub fn encode(self) -> u8 {
        (self.opcode.nibble() << 4) | self.arg
    }

    /// Decodes a byte; `None` for undefined opcodes.
    pub fn decode(byte: u8) -> Option<MicroOp> {
        let opcode = PhysOpcode::from_nibble(byte >> 4)?;
        Some(MicroOp {
            opcode,
            arg: byte & 0x0F,
        })
    }

    /// Size in bytes of an encoded physical instruction (paper §3.3).
    pub const ENCODED_BYTES: usize = 1;
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.direction() {
            Some(d) => write!(f, "{}.{}", self.opcode, d),
            None => write!(f, "{}", self.opcode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_nibbles_round_trip() {
        for op in PhysOpcode::ALL {
            assert_eq!(PhysOpcode::from_nibble(op.nibble()), Some(op));
        }
        assert_eq!(PhysOpcode::from_nibble(13), None);
        assert_eq!(PhysOpcode::from_nibble(15), None);
    }

    #[test]
    fn microop_bytes_round_trip() {
        for op in PhysOpcode::ALL {
            for arg in 0..16u8 {
                let u = MicroOp::new(op, arg);
                assert_eq!(MicroOp::decode(u.encode()), Some(u));
            }
        }
    }

    #[test]
    fn undefined_opcodes_fail_decode() {
        assert_eq!(MicroOp::decode(0xD0), None);
        assert_eq!(MicroOp::decode(0xFF), None);
    }

    #[test]
    fn direction_round_trip_and_opposites() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_bits(d as u8), Some(d));
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn cnot_half_carries_direction() {
        let u = MicroOp::cnot_half(PhysOpcode::CnotTgt, Direction::Ne);
        assert_eq!(u.direction(), Some(Direction::Ne));
        assert_eq!(MicroOp::simple(PhysOpcode::H).direction(), None);
    }

    #[test]
    #[should_panic(expected = "only valid for CNOT halves")]
    fn direction_on_single_qubit_op_panics() {
        MicroOp::cnot_half(PhysOpcode::H, Direction::Nw);
    }

    #[test]
    fn display_is_informative() {
        let u = MicroOp::cnot_half(PhysOpcode::CnotCtrl, Direction::Se);
        assert_eq!(u.to_string(), "cnot.c.se");
        assert_eq!(MicroOp::nop().to_string(), "nop");
    }
}
