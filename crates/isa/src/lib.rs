//! Quantum instruction set architecture for the QuEST control processor.
//!
//! Two instruction levels exist in the paper's execution model (§2.3, §5):
//!
//! * **Physical µops** ([`MicroOp`]) — byte-sized select codes latched onto
//!   the microwave switch matrix; one µop per qubit per time slot. A
//!   [`VliwWord`] bundles one µop for every qubit of an MCE tile, executed
//!   in lock step.
//! * **Logical instructions** ([`LogicalInstr`]) — two-byte fault-tolerant
//!   instructions (transverse Cliffords, mask/braid operations, T gates,
//!   synchronization tokens) dispatched by the master controller and
//!   expanded to µops inside the MCE's instruction pipeline.
//!
//! All encodings round-trip exactly; see the property tests.
//!
//! # Example
//!
//! ```
//! use quest_isa::{LogicalInstr, LogicalQubit, MicroOp, PhysOpcode};
//!
//! let uop = MicroOp::new(PhysOpcode::CnotCtrl, 2);
//! assert_eq!(MicroOp::decode(uop.encode()), Some(uop));
//!
//! let li = LogicalInstr::Cnot {
//!     control: LogicalQubit(3),
//!     target: LogicalQubit(4),
//! };
//! let bytes = li.encode();
//! assert_eq!(LogicalInstr::decode(bytes), Some(li));
//! ```

#![forbid(unsafe_code)]

pub mod asm;
pub mod logical;
pub mod phys;
pub mod program;
pub mod vliw;

pub use asm::ParseAsmError;
pub use logical::{InstrClass, LogicalInstr, LogicalQubit, MaskRegion};
pub use phys::{Direction, MicroOp, PhysOpcode};
pub use program::LogicalProgram;
pub use vliw::VliwWord;
