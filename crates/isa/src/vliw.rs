//! VLIW physical instruction words.
//!
//! §4.3: *"the physical instruction is designed similar to a very long
//! instruction word (VLIW) and composed of a µop per qubit. These
//! instructions are executed in lockstep for all qubits."* A [`VliwWord`]
//! carries exactly one [`MicroOp`] per qubit of an MCE tile.

use crate::phys::MicroOp;
use std::fmt;

/// One lock-step physical instruction word: one µop per tile qubit.
///
/// # Example
///
/// ```
/// use quest_isa::{MicroOp, PhysOpcode, VliwWord};
///
/// let mut w = VliwWord::nop(4);
/// w.set(2, MicroOp::simple(PhysOpcode::H));
/// assert_eq!(w.encoded_bytes(), 4);
/// let bytes = w.encode();
/// assert_eq!(VliwWord::decode(&bytes), Some(w));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VliwWord {
    uops: Vec<MicroOp>,
}

impl VliwWord {
    /// A word of `n` idle µops.
    pub fn nop(n: usize) -> VliwWord {
        VliwWord {
            uops: vec![MicroOp::nop(); n],
        }
    }

    /// Builds a word from explicit µops.
    pub fn from_uops(uops: Vec<MicroOp>) -> VliwWord {
        VliwWord { uops }
    }

    /// Number of qubit slots.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Returns `true` for a zero-slot word.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// µop for qubit slot `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn get(&self, q: usize) -> MicroOp {
        self.uops[q]
    }

    /// Replaces the µop in slot `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set(&mut self, q: usize, u: MicroOp) {
        self.uops[q] = u;
    }

    /// Iterates over `(slot, µop)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, MicroOp)> + '_ {
        self.uops.iter().copied().enumerate()
    }

    /// Number of non-idle µops.
    pub fn active_count(&self) -> usize {
        self.uops
            .iter()
            .filter(|u| u.opcode() != crate::phys::PhysOpcode::Nop)
            .count()
    }

    /// Encoded size: one byte per qubit slot.
    pub fn encoded_bytes(&self) -> usize {
        self.uops.len() * MicroOp::ENCODED_BYTES
    }

    /// Byte encoding, slot order.
    pub fn encode(&self) -> Vec<u8> {
        self.uops.iter().map(|u| u.encode()).collect()
    }

    /// Decodes a byte slice; `None` if any byte is not a valid µop.
    pub fn decode(bytes: &[u8]) -> Option<VliwWord> {
        let uops = bytes
            .iter()
            .map(|&b| MicroOp::decode(b))
            .collect::<Option<Vec<_>>>()?;
        Some(VliwWord { uops })
    }
}

impl fmt::Display for VliwWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, u) in self.uops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phys::{Direction, PhysOpcode};

    #[test]
    fn nop_word_is_inactive() {
        let w = VliwWord::nop(8);
        assert_eq!(w.len(), 8);
        assert_eq!(w.active_count(), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut w = VliwWord::nop(5);
        w.set(0, MicroOp::simple(PhysOpcode::PrepZ));
        w.set(1, MicroOp::cnot_half(PhysOpcode::CnotCtrl, Direction::Ne));
        w.set(4, MicroOp::simple(PhysOpcode::MeasZ));
        let bytes = w.encode();
        assert_eq!(bytes.len(), 5);
        assert_eq!(VliwWord::decode(&bytes), Some(w));
    }

    #[test]
    fn decode_rejects_bad_bytes() {
        assert_eq!(VliwWord::decode(&[0x00, 0xFF]), None);
    }

    #[test]
    fn active_count_counts_non_nops() {
        let mut w = VliwWord::nop(3);
        w.set(1, MicroOp::simple(PhysOpcode::X));
        assert_eq!(w.active_count(), 1);
    }

    #[test]
    fn display_lists_uops() {
        let mut w = VliwWord::nop(2);
        w.set(0, MicroOp::simple(PhysOpcode::H));
        assert_eq!(w.to_string(), "[h nop]");
    }
}
