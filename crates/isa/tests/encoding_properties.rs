//! Property tests: every representable instruction encodes/decodes
//! losslessly, and arbitrary byte streams never decode to something that
//! re-encodes differently.

use proptest::prelude::*;
use quest_isa::{LogicalInstr, LogicalQubit, MaskRegion, MicroOp, PhysOpcode, VliwWord};

fn logical_instr_strategy() -> impl Strategy<Value = LogicalInstr> {
    prop_oneof![
        any::<u8>().prop_map(|q| LogicalInstr::PrepZ(LogicalQubit(q))),
        any::<u8>().prop_map(|q| LogicalInstr::PrepX(LogicalQubit(q))),
        any::<u8>().prop_map(|q| LogicalInstr::MeasZ(LogicalQubit(q))),
        any::<u8>().prop_map(|q| LogicalInstr::MeasX(LogicalQubit(q))),
        any::<u8>().prop_map(|q| LogicalInstr::H(LogicalQubit(q))),
        any::<u8>().prop_map(|q| LogicalInstr::S(LogicalQubit(q))),
        any::<u8>().prop_map(|q| LogicalInstr::X(LogicalQubit(q))),
        any::<u8>().prop_map(|q| LogicalInstr::Z(LogicalQubit(q))),
        (0u8..16, 0u8..16).prop_map(|(c, t)| LogicalInstr::Cnot {
            control: LogicalQubit(c),
            target: LogicalQubit(t),
        }),
        any::<u8>().prop_map(|q| LogicalInstr::T(LogicalQubit(q))),
        any::<u8>().prop_map(|r| LogicalInstr::MaskOn(MaskRegion(r))),
        any::<u8>().prop_map(|r| LogicalInstr::MaskOff(MaskRegion(r))),
        any::<u8>().prop_map(|r| LogicalInstr::BraidStep(MaskRegion(r))),
        any::<u8>().prop_map(|q| LogicalInstr::MagicInject(LogicalQubit(q))),
        any::<u8>().prop_map(LogicalInstr::Sync),
        any::<u8>().prop_map(LogicalInstr::CacheLoad),
        any::<u8>().prop_map(LogicalInstr::CacheReplay),
    ]
}

fn microop_strategy() -> impl Strategy<Value = MicroOp> {
    (0usize..PhysOpcode::ALL.len(), 0u8..16)
        .prop_map(|(op, arg)| MicroOp::new(PhysOpcode::ALL[op], arg))
}

proptest! {
    #[test]
    fn logical_instr_round_trips(i in logical_instr_strategy()) {
        prop_assert_eq!(LogicalInstr::decode(i.encode()), Some(i));
    }

    #[test]
    fn logical_decode_reencode_is_identity(bytes in any::<[u8; 2]>()) {
        if let Some(i) = LogicalInstr::decode(bytes) {
            prop_assert_eq!(i.encode(), bytes);
        }
    }

    #[test]
    fn microop_round_trips(u in microop_strategy()) {
        prop_assert_eq!(MicroOp::decode(u.encode()), Some(u));
    }

    #[test]
    fn microop_decode_reencode_is_identity(b in any::<u8>()) {
        if let Some(u) = MicroOp::decode(b) {
            prop_assert_eq!(u.encode(), b);
        }
    }

    #[test]
    fn vliw_word_round_trips(uops in prop::collection::vec(microop_strategy(), 0..64)) {
        let w = VliwWord::from_uops(uops);
        let bytes = w.encode();
        prop_assert_eq!(bytes.len(), w.encoded_bytes());
        prop_assert_eq!(VliwWord::decode(&bytes), Some(w));
    }

    #[test]
    fn program_round_trips(instrs in prop::collection::vec(logical_instr_strategy(), 0..200)) {
        use quest_isa::LogicalProgram;
        let mut p = LogicalProgram::new();
        for i in &instrs {
            p.push_auto(*i);
        }
        let q = LogicalProgram::decode(&p.encode()).unwrap();
        let back: Vec<LogicalInstr> = q.iter().map(|(i, _)| *i).collect();
        prop_assert_eq!(instrs, back);
    }

    /// Assembly text round-trips: format(parse(format(p))) is stable and
    /// preserves instructions and classes exactly.
    #[test]
    fn assembly_round_trips(
        instrs in prop::collection::vec(logical_instr_strategy(), 0..120),
        class_seed in any::<u8>(),
    ) {
        use quest_isa::{asm, InstrClass, LogicalProgram};
        let classes = [
            InstrClass::Algorithmic,
            InstrClass::Distillation,
            InstrClass::Sync,
            InstrClass::CacheControl,
        ];
        let mut p = LogicalProgram::new();
        for (k, i) in instrs.iter().enumerate() {
            p.push(*i, classes[(k + class_seed as usize) % classes.len()]);
        }
        let text = asm::format(&p);
        let parsed = asm::parse(&text).unwrap();
        prop_assert_eq!(&p, &parsed);
        // Idempotence of the printer.
        prop_assert_eq!(asm::format(&parsed), text);
    }
}
