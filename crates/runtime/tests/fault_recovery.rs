//! Fault injection and recovery: the runtime's classical-fault layer is
//! deterministic, strictly optional, and panic-free.
//!
//! * An empty [`FaultPlan`] is a strict no-op: the report is
//!   bit-identical to the single-threaded fault-free reference at every
//!   shard count (property-tested over random specs).
//! * A faulty run is as reproducible as a clean one: same seed + same
//!   plan ⇒ bit-identical [`RunReport`] (ledger, outcomes, recovery
//!   counters) at shards 1/2/4.
//! * Faults touch the control plane only: the physics (outcomes, decode
//!   counters) of a faulty run equals the clean run's.
//! * Scheduled worker deaths are contained: a killed decode worker is
//!   respawned losing nothing; a panicking shard thread surfaces as a
//!   typed [`RuntimeError::ShardFailed`]; a hopeless link as
//!   [`RuntimeError::Link`]. No path panics the caller.
//!
//! Setting `QUEST_FAULT_HEAVY=1` (the CI fault-drill job does) scales
//! the injected rates and run lengths up.

use proptest::prelude::*;
use quest_core::Traffic;
use quest_runtime::{
    run_reference, FaultPlan, Runtime, RuntimeError, ShardPanicPlan, WorkloadSpec,
};

/// Heavier rates and longer runs under `QUEST_FAULT_HEAVY=1`.
fn heavy() -> bool {
    std::env::var_os("QUEST_FAULT_HEAVY").is_some_and(|v| v != "0" && !v.is_empty())
}

/// The stock faulty profile used across these tests: every fault class
/// active at rates that fire plenty in a short run.
fn faulty_plan() -> FaultPlan {
    let scale = if heavy() { 2.0 } else { 1.0 };
    FaultPlan {
        drop_rate: 0.10 * scale,
        corrupt_rate: 0.15 * scale,
        stall_rate: 0.02 * scale,
        quarantine_cycles: 4,
        max_retries: 8,
        ..FaultPlan::none()
    }
}

fn cycles() -> u64 {
    if heavy() {
        60
    } else {
        30
    }
}

#[test]
fn faulty_runs_are_bit_identical_across_shard_counts() {
    let mut spec = WorkloadSpec::memory(5, 4, 1, 2e-2, 97, cycles());
    spec.faults = faulty_plan();
    let one = Runtime::new().run(&spec).unwrap();
    assert!(one.escalations > 0, "workload must produce bus traffic");
    assert!(
        one.recovery.retransmissions > 0,
        "profile must actually retransmit: {:?}",
        one.recovery
    );
    assert!(one.recovery.crc_corruptions > 0);
    assert!(one.recovery.dropped_packets > 0);
    for shards in [2, 4] {
        let sharded = Runtime::new()
            .run(&WorkloadSpec {
                shards,
                ..spec.clone()
            })
            .unwrap();
        assert_eq!(
            sharded.report, one.report,
            "faulty run diverged at {shards} shards"
        );
    }
}

#[test]
fn faults_touch_accounting_never_physics() {
    let mut spec = WorkloadSpec::memory(5, 4, 2, 2e-2, 41, cycles());
    let clean = Runtime::new().run(&spec).unwrap();
    spec.faults = faulty_plan();
    let faulty = Runtime::new().run(&spec).unwrap();

    assert_eq!(faulty.outcomes, clean.outcomes, "faults changed physics");
    assert_eq!(faulty.qecc_cycles, clean.qecc_cycles);
    assert_eq!(faulty.local_decodes, clean.local_decodes);
    assert_eq!(faulty.escalations, clean.escalations);
    // Only the retransmit class and (via degradation) the baseline QECC
    // class may differ from the clean ledger.
    for class in Traffic::ALL {
        match class {
            Traffic::Retransmit | Traffic::QeccInstructions => {}
            _ => assert_eq!(
                faulty.bus_bytes_of(class),
                clean.bus_bytes_of(class),
                "class {class} drifted under faults"
            ),
        }
    }
    assert_eq!(
        faulty.bus_bytes_of(Traffic::Retransmit),
        faulty.recovery.retransmitted_bytes,
        "ledger and recovery counters must agree on retransmitted bytes"
    );
    assert!(clean.recovery.is_quiet());
}

#[test]
fn degraded_tiles_pay_the_software_baseline_rate() {
    // A certain stall on cycle 0 quarantines every tile for the whole
    // run, so the QuEST-mode run pays exactly the software baseline's
    // per-tile-cycle QECC stream for each degraded tile-cycle.
    let tiles = 4;
    let run_cycles = 10;
    let mut spec = WorkloadSpec::memory(3, tiles, 2, 0.0, 7, run_cycles);
    spec.faults = FaultPlan {
        stall_rate: 1.0,
        quarantine_cycles: run_cycles,
        ..FaultPlan::none()
    };
    let degraded = Runtime::new().run(&spec).unwrap();
    assert_eq!(
        degraded.recovery.watchdog_timeouts, tiles as u64,
        "every tile stalls once"
    );
    assert_eq!(
        degraded.recovery.degraded_tile_cycles,
        tiles as u64 * run_cycles
    );

    // The software baseline run prices one tile-cycle of QECC stream.
    let baseline = Runtime::new()
        .run(&WorkloadSpec {
            delivery: quest_runtime::DeliveryMode::SoftwareBaseline,
            faults: FaultPlan::none(),
            ..spec.clone()
        })
        .unwrap();
    let per_tile_cycle =
        baseline.bus_bytes_of(Traffic::QeccInstructions) / (tiles as u64 * run_cycles);
    assert!(per_tile_cycle > 0);
    assert_eq!(
        degraded.bus_bytes_of(Traffic::QeccInstructions),
        degraded.recovery.degraded_tile_cycles * per_tile_cycle,
        "degradation must cost exactly the baseline stream"
    );
}

#[test]
fn killed_decode_worker_is_respawned_and_changes_nothing() {
    let mut spec = WorkloadSpec::memory(5, 4, 2, 2e-2, 23, cycles());
    let clean = Runtime::new().run(&spec).unwrap();
    assert!(
        clean.escalations > 0,
        "need escalations for the pool to have jobs"
    );
    spec.faults = FaultPlan {
        kill_decode_worker_after_jobs: Some(1),
        ..FaultPlan::none()
    };
    let survived = Runtime::new().run(&spec).unwrap();
    assert_eq!(survived.recovery.decode_worker_deaths, 1);
    assert_eq!(survived.recovery.decode_worker_respawns, 1);
    assert_eq!(survived.stats.decode.deaths, 1);
    // Identical physics and ledger: the respawn lost no corrections.
    assert_eq!(survived.outcomes, clean.outcomes);
    assert_eq!(survived.report.bus, clean.report.bus);
}

#[test]
fn shard_panic_is_a_typed_error_not_an_abort() {
    for shards in [1, 2] {
        let mut spec = WorkloadSpec::memory(3, 4, shards, 1e-3, 5, 10);
        spec.faults = FaultPlan {
            shard_panic: Some(ShardPanicPlan {
                shard: shards - 1,
                after_cycles: 3,
            }),
            ..FaultPlan::none()
        };
        let err = Runtime::new().run(&spec).unwrap_err();
        match err {
            RuntimeError::ShardFailed { shard, ref detail } => {
                assert_eq!(shard, shards - 1);
                assert!(detail.contains("injected"), "detail: {detail}");
            }
            other => panic!("expected ShardFailed, got {other:?}"),
        }
        assert!(!err.to_string().contains('\n'), "one-line diagnostic");
    }
}

#[test]
fn hopeless_link_fails_with_a_typed_error() {
    // Every packet drops and the budget is tiny: the first transfer
    // (the first escalated syndrome) must surface RuntimeError::Link.
    let mut spec = WorkloadSpec::memory(5, 2, 1, 2e-2, 13, 50);
    spec.faults = FaultPlan {
        drop_rate: 1.0,
        max_retries: 2,
        ..FaultPlan::none()
    };
    match Runtime::new().run(&spec).unwrap_err() {
        RuntimeError::Link(failure) => assert_eq!(failure.attempts, 3),
        other => panic!("expected Link, got {other:?}"),
    }
}

#[test]
fn reference_executor_refuses_fault_plans() {
    let mut spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
    spec.faults = faulty_plan();
    assert_eq!(
        run_reference(&spec).unwrap_err(),
        RuntimeError::ReferenceFaults
    );
    // The runtime accepts the very same spec.
    assert!(Runtime::new().run(&spec).is_ok());
}

/// Golden counters for one pinned faulty configuration. These values
/// are a determinism contract, like the bench's byte counts: they must
/// never drift without an intentional change to the fault layer's roll
/// sequence or accounting.
#[test]
fn golden_faulty_run_is_pinned() {
    let mut spec = WorkloadSpec::memory(5, 4, 2, 2e-2, 1234, 60);
    spec.faults = FaultPlan {
        drop_rate: 0.15,
        corrupt_rate: 0.10,
        stall_rate: 0.02,
        quarantine_cycles: 5,
        max_retries: 8,
        ..FaultPlan::none()
    };
    let report = Runtime::new().run(&spec).unwrap();
    let golden = quest_runtime::RecoveryStats {
        crc_corruptions: 1,
        dropped_packets: 3,
        retransmissions: 4,
        retransmitted_bytes: 14,
        backoff_slots: 5,
        watchdog_timeouts: 2,
        degraded_tile_cycles: 12,
        decode_worker_deaths: 0,
        decode_worker_respawns: 0,
    };
    assert_eq!(report.recovery, golden, "golden recovery counters drifted");
    assert_eq!(
        report.bus_bytes_of(Traffic::Retransmit),
        golden.retransmitted_bytes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Empty plan ⇒ strict no-op: random specs produce reports
    /// bit-identical to the fault-free reference at shards 1, 2 and 4.
    #[test]
    fn empty_plan_matches_reference_at_all_shard_counts(
        seed in any::<u64>(),
        noisy in any::<bool>(),
        run_cycles in 1u64..20,
    ) {
        let spec = WorkloadSpec::memory(
            3,
            4,
            1,
            if noisy { 5e-3 } else { 0.0 },
            seed,
            run_cycles,
        );
        prop_assert!(spec.faults.is_none());
        let reference = run_reference(&spec).unwrap();
        prop_assert!(reference.recovery.is_quiet());
        for shards in [1usize, 2, 4] {
            let report = Runtime::new()
                .run(&WorkloadSpec { shards, ..spec.clone() })
                .unwrap();
            prop_assert_eq!(
                &report.report,
                &reference,
                "empty-plan run diverged from reference at {} shards",
                shards
            );
        }
    }
}
