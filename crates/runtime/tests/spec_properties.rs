//! Property: the reference executor and the concurrent runtime agree on
//! every spec — any spec accepted by [`WorkloadSpec::validate`] runs on
//! both and produces the identical unified report; any rejected spec is
//! rejected by both with the same typed error. No spec, valid or not,
//! panics either path.

use proptest::prelude::*;
use quest_core::tile::LogicalBasis;
use quest_core::{DeliveryMode, FaultPlan};
use quest_isa::{InstrClass, LogicalInstr, LogicalQubit};
use quest_runtime::{
    run_reference, DecoderChoice, Runtime, RuntimeError, WorkloadOp, WorkloadSpec,
};

/// Decodes one op from a random word. `tile_span` bounds the tile
/// indices drawn: the spec's tile count for mostly-valid programs, or
/// something larger to exercise out-of-range rejection.
fn decode_op(v: u32, tile_span: usize) -> WorkloadOp {
    let sel = v % 7;
    let a = ((v / 7) as usize) % tile_span;
    let b = ((v / 91) as usize) % tile_span;
    let n = u64::from((v / 1183) % 4);
    match sel {
        0 => WorkloadOp::Prep {
            tile: a,
            basis: if v & 1 == 0 {
                LogicalBasis::Zero
            } else {
                LogicalBasis::Plus
            },
        },
        1 => WorkloadOp::Cycles(n),
        2 => WorkloadOp::Cnot {
            control: a,
            target: b,
        },
        3 => WorkloadOp::Logical {
            tile: a,
            instr: LogicalInstr::H(LogicalQubit((v % 4) as u8)),
            class: if v & 2 == 0 {
                InstrClass::Algorithmic
            } else {
                InstrClass::Sync
            },
        },
        4 => WorkloadOp::KernelReplay {
            tile: a,
            replays: n,
        },
        5 => WorkloadOp::Sync { tile: a },
        _ => WorkloadOp::MeasureZ { tile: a },
    }
}

/// The property itself: both execution paths accept or reject the spec
/// in lockstep, and on acceptance their unified reports are identical.
fn both_paths_agree(spec: &WorkloadSpec) -> Result<(), TestCaseError> {
    match spec.validate() {
        Ok(()) => {
            let reference = run_reference(spec).expect("validated spec must run (reference)");
            let report = Runtime::new()
                .run(spec)
                .expect("validated spec must run (runtime)");
            prop_assert_eq!(&report.report, &reference, "reports diverged: {:?}", spec);
        }
        Err(e) => {
            prop_assert_eq!(
                run_reference(spec).unwrap_err(),
                RuntimeError::Spec(e.clone()),
                "reference rejection disagrees with validate()"
            );
            prop_assert_eq!(
                Runtime::new().run(spec).unwrap_err(),
                RuntimeError::Spec(e),
                "runtime rejection disagrees with validate()"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mostly-valid specs: tile indices are drawn in range, so the bulk
    /// of cases exercise the accepted-spec half of the property (with
    /// residual rejections from CNOT structure rules).
    #[test]
    fn mostly_valid_specs_agree(
        seed in any::<u64>(),
        tiles in 1usize..4,
        shards in 1usize..4,
        mode_sel in 0usize..3,
        raw_ops in prop::collection::vec(any::<u32>(), 0..10),
        kernel_len in 0usize..5,
        noisy in any::<bool>(),
        decoder_sel in 0usize..4,
    ) {
        let spec = WorkloadSpec {
            distance: 3,
            tiles,
            shards,
            error_rate: if noisy { 5e-3 } else { 0.0 },
            seed,
            delivery: DeliveryMode::ALL[mode_sel],
            kernel: vec![LogicalInstr::T(LogicalQubit(0)); kernel_len],
            faults: FaultPlan::none(),
            decoder: DecoderChoice::ALL[decoder_sel],
            ops: raw_ops.into_iter().map(|v| decode_op(v, tiles)).collect(),
        };
        both_paths_agree(&spec)?;
    }

    /// Unconstrained specs: parameters and tile indices range over
    /// invalid territory, so the bulk of cases exercise the
    /// rejected-by-both half of the property.
    #[test]
    fn arbitrary_specs_agree(
        seed in any::<u64>(),
        distance in 0usize..7,
        tiles in 0usize..4,
        shards in 0usize..5,
        rate_sel in 0usize..3,
        mode_sel in 0usize..3,
        raw_ops in prop::collection::vec(any::<u32>(), 0..8),
        decoder_sel in 0usize..4,
    ) {
        let spec = WorkloadSpec {
            distance,
            tiles,
            shards,
            error_rate: [0.0, 1e-3, 1.5][rate_sel],
            seed,
            delivery: DeliveryMode::ALL[mode_sel],
            kernel: Vec::new(),
            faults: FaultPlan::none(),
            decoder: DecoderChoice::ALL[decoder_sel],
            ops: raw_ops.into_iter().map(|v| decode_op(v, 6)).collect(),
        };
        both_paths_agree(&spec)?;
    }
}
