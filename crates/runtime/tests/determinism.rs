//! Acceptance: for a fixed master seed, the concurrent runtime produces
//! a bit-identical unified [`RunReport`] — logical outcomes, per-class
//! bus ledger, decode counters, master stats — at shard counts 1, 2 and
//! 4, all matching the single-threaded `MultiTileSystem` reference; and
//! with one tile, the unified engine reproduces `QuestSystem`'s run
//! exactly in every delivery mode.

use quest_core::tile::tile_seed;
use quest_core::{DeliveryMode, QuestSystem, Traffic};
use quest_isa::{InstrClass, LogicalInstr, LogicalProgram, LogicalQubit};
use quest_runtime::{
    run_reference, DecoderChoice, Runtime, RuntimeReport, WorkloadSpec, TABLE_DECODER_MAX_DISTANCE,
};
use quest_stabilizer::{SeedableRng, StdRng};

fn run_at(spec: &WorkloadSpec, shards: usize) -> RuntimeReport {
    let spec = WorkloadSpec {
        shards,
        ..spec.clone()
    };
    Runtime::new().run(&spec).unwrap()
}

fn assert_matches_reference(spec: &WorkloadSpec) {
    let reference = run_reference(spec).unwrap();
    for shards in [1, 2, 4] {
        let report = run_at(spec, shards);
        // The whole unified report must match bit-for-bit: outcomes,
        // per-class bus bytes, cycle and decode counters, master stats.
        assert_eq!(
            report.report, reference,
            "unified report diverged at {shards} shards (seed {})",
            spec.seed
        );
        for class in Traffic::ALL {
            assert_eq!(
                report.bus_bytes_of(class),
                reference.bus_bytes_of(class),
                "traffic class {class} diverged at {shards} shards"
            );
        }
    }
}

fn distillation_program() -> LogicalProgram {
    let mut p = LogicalProgram::new();
    for i in 0..6u8 {
        p.push(
            LogicalInstr::H(LogicalQubit(i % 4)),
            InstrClass::Algorithmic,
        );
    }
    for _ in 0..40 {
        p.push(LogicalInstr::T(LogicalQubit(0)), InstrClass::Distillation);
    }
    p
}

#[test]
fn noisy_memory_matches_reference_at_1_2_4_shards() {
    for seed in [1, 7, 42] {
        assert_matches_reference(&WorkloadSpec::memory(3, 8, 1, 4e-3, seed, 25));
    }
}

#[test]
fn bell_pair_workload_matches_reference_at_1_2_4_shards() {
    for seed in [3, 19] {
        assert_matches_reference(&WorkloadSpec::bell_pairs(3, 8, 1, 2e-3, seed, 10).unwrap());
    }
}

#[test]
fn delivery_workloads_match_reference_at_1_2_4_shards() {
    // The Figure-14 experiment, sharded: every delivery mode's full bus
    // ledger survives the message path bit-identically.
    let program = distillation_program();
    for mode in DeliveryMode::ALL {
        let spec = WorkloadSpec::delivery_memory(3, 8, 1, 3e-3, 13, 15, &program, 25, mode);
        assert_matches_reference(&spec);
    }
}

#[test]
fn unified_engine_reproduces_quest_system_with_one_tile() {
    // Delivery-mode parity (tentpole acceptance): the tiles = 1 unified
    // engine reproduces the single-tile `QuestSystem::run_memory_workload`
    // result — bus bytes per class, qecc cycles, logical outcome, decode
    // counters — for all three delivery modes, through both the reference
    // executor and the sharded runtime.
    let program = distillation_program();
    let (cycles, replays, seed) = (40, 30, 21);
    for mode in DeliveryMode::ALL {
        let mut single = QuestSystem::new(3, 2e-3).unwrap();
        // The runtime seeds tile 0's stream via tile_seed; drive the
        // single-tile system with the identical stream.
        let mut rng = StdRng::seed_from_u64(tile_seed(seed, 0));
        let expected = single.run_memory_workload(cycles, &program, replays, mode, &mut rng);

        let spec =
            WorkloadSpec::delivery_memory(3, 1, 1, 2e-3, seed, cycles, &program, replays, mode);
        let reference = run_reference(&spec).unwrap();
        assert_eq!(reference, expected, "{mode:?}: reference != QuestSystem");
        let runtime = Runtime::new().run(&spec).unwrap();
        assert_eq!(runtime.report, expected, "{mode:?}: runtime != QuestSystem");
    }
}

#[test]
fn every_decoder_backend_matches_reference_at_1_2_4_shards() {
    // Tentpole acceptance: the determinism guarantee holds per backend.
    // Each backend's unified report — including its decode-cost ledger —
    // must be bit-identical across shard counts and match the reference.
    // d=5 at a heavy rate so global decodes actually happen; the table
    // backend is infeasible above d=5 and is exercised right at its cap.
    for decoder in DecoderChoice::ALL {
        let mut spec = WorkloadSpec::memory(5, 4, 1, 2e-2, 11, 20);
        spec.decoder = decoder;
        assert!(spec.distance <= TABLE_DECODER_MAX_DISTANCE);
        let reference = run_reference(&spec).unwrap();
        assert!(
            reference.escalations > 0,
            "{decoder}: no escalations; the backend never decoded"
        );
        assert_matches_reference(&spec);
    }
}

#[test]
fn runtime_is_deterministic_across_repeats() {
    let spec = WorkloadSpec::memory(3, 8, 4, 4e-3, 99, 25);
    let a = Runtime::new().run(&spec).unwrap();
    let b = Runtime::new().with_decode_workers(1).run(&spec).unwrap();
    assert_eq!(a.report, b.report);
}

#[test]
fn escalations_survive_the_message_path() {
    // At a heavy error rate the workload must actually exercise the
    // escalation → batch decode → correction path, otherwise the parity
    // assertions above prove nothing. Distance 5: the d=3 lookup table
    // resolves essentially every single-round pattern locally.
    let spec = WorkloadSpec::memory(5, 8, 4, 2e-2, 5, 25);
    let report = Runtime::new().run(&spec).unwrap();
    assert!(
        report.stats.decode.jobs > 0,
        "workload produced no escalations; raise the error rate"
    );
    assert!(report.escalations > 0 && report.local_decodes > 0);
    assert_matches_reference(&spec);
}
