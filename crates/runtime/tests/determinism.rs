//! Acceptance: for a fixed master seed, the concurrent runtime produces
//! identical logical outcomes and bus-byte totals at shard counts 1, 2
//! and 4, all matching the single-threaded `MultiTileSystem` reference.

use quest_runtime::{run_reference, Runtime, WorkloadSpec};

fn assert_matches_reference(mut spec: WorkloadSpec) {
    let reference = run_reference(&spec);
    for shards in [1, 2, 4] {
        spec.shards = shards;
        let report = Runtime::new().run(&spec);
        assert_eq!(
            report.outcomes, reference.outcomes,
            "logical outcomes diverged at {shards} shards (seed {})",
            spec.seed
        );
        assert_eq!(
            report.bus_bytes, reference.bus_bytes,
            "bus-byte totals diverged at {shards} shards (seed {})",
            spec.seed
        );
    }
}

#[test]
fn noisy_memory_matches_reference_at_1_2_4_shards() {
    for seed in [1, 7, 42] {
        assert_matches_reference(WorkloadSpec::memory(3, 8, 1, 4e-3, seed, 25));
    }
}

#[test]
fn bell_pair_workload_matches_reference_at_1_2_4_shards() {
    for seed in [3, 19] {
        assert_matches_reference(WorkloadSpec::bell_pairs(3, 8, 1, 2e-3, seed, 10));
    }
}

#[test]
fn runtime_is_deterministic_across_repeats() {
    let spec = WorkloadSpec::memory(3, 8, 4, 4e-3, 99, 25);
    let a = Runtime::new().run(&spec);
    let b = Runtime::new().with_decode_workers(1).run(&spec);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.bus_bytes, b.bus_bytes);
}

#[test]
fn escalations_survive_the_message_path() {
    // At a heavy error rate the workload must actually exercise the
    // escalation → batch decode → correction path, otherwise the parity
    // assertions above prove nothing. Distance 5: the d=3 lookup table
    // resolves essentially every single-round pattern locally.
    let spec = WorkloadSpec::memory(5, 8, 4, 2e-2, 5, 25);
    let report = Runtime::new().run(&spec);
    assert!(
        report.stats.decode.jobs > 0,
        "workload produced no escalations; raise the error rate"
    );
    assert_matches_reference(spec);
}
