//! Checkpoint/resume determinism pins.
//!
//! The contract under test: a [`RunSnapshot`] taken at any QECC-cycle
//! barrier, resumed on a fresh `Runtime`, produces a `RunReport` —
//! outcomes, bus ledger, decode cost, recovery counters, everything —
//! bit-identical to the uninterrupted run. The pin kills a faulted run
//! at *every* cycle k, at shard counts 1/2/4, and diffs full reports.

use quest_runtime::{
    CancelToken, CheckpointSink, FaultPlan, RunControl, RunProgress, RunSnapshot, Runtime,
    RuntimeError, ShardPanicPlan, WorkloadSpec,
};

const CYCLES: u64 = 10;

/// A noisy spec with every recoverable fault class armed: link
/// drops/corruptions (retransmission), MCE stalls (quarantine) and one
/// scheduled decode-worker kill (supervisor respawn).
fn faulted_spec(shards: usize) -> WorkloadSpec {
    // Distance 5 at 2e-2: noisy enough that local decoders escalate
    // (the decode pool has real work) within a handful of cycles.
    let mut spec = WorkloadSpec::memory(5, 4, shards, 2e-2, 20260808, CYCLES);
    spec.faults = FaultPlan {
        drop_rate: 0.05,
        corrupt_rate: 0.05,
        stall_rate: 0.03,
        quarantine_cycles: 2,
        kill_decode_worker_after_jobs: Some(3),
        ..FaultPlan::none()
    };
    spec
}

fn runtime() -> Runtime {
    Runtime::new().with_decode_workers(2)
}

/// Runs `spec` with per-cycle checkpointing, cancelling at cycle `k`,
/// and returns the snapshot taken at that exact cycle.
fn run_killed_at(rt: &Runtime, spec: &WorkloadSpec, k: u64) -> RunSnapshot {
    let sink = CheckpointSink::every(1);
    let token = CancelToken::new();
    let trip = token.clone();
    let callback = move |p: RunProgress| {
        if p.cycles_done == k {
            trip.cancel();
        }
    };
    let control = RunControl::new()
        .with_cancel(&token)
        .with_progress(&callback)
        .with_checkpoints(&sink);
    let err = rt.run_controlled(spec, &control).unwrap_err();
    assert_eq!(err, RuntimeError::Cancelled { cycles_done: k });
    let snap = sink.take().expect("a checkpoint must exist at cycle k");
    assert_eq!(snap.cycles_done(), k);
    snap
}

#[test]
fn killing_at_every_cycle_and_resuming_is_bit_identical() {
    for shards in [1, 2, 4] {
        let spec = faulted_spec(shards);
        let rt = runtime();
        let baseline = rt.run(&spec).unwrap();
        assert!(
            !baseline.recovery.is_quiet(),
            "the plan must actually inject faults for this pin to mean anything"
        );
        for k in 1..=CYCLES {
            let snap = run_killed_at(&rt, &spec, k);
            let resumed = rt.resume(&snap, &RunControl::new()).unwrap();
            assert_eq!(
                resumed.report, baseline.report,
                "resume diverged (shards={shards}, killed at cycle {k})"
            );
            assert_eq!(
                resumed.stats.decode.jobs, baseline.stats.decode.jobs,
                "pool job totals must include the pre-snapshot baseline"
            );
        }
    }
}

#[test]
fn decode_worker_kill_replays_across_the_snapshot_boundary() {
    // Arm the kill on the very first escalation batch so the drill is
    // guaranteed to fire. Killing the run both before and after that
    // point must leave death/respawn counters identical to the
    // uninterrupted run's.
    let mut spec = faulted_spec(2);
    spec.faults.kill_decode_worker_after_jobs = Some(1);
    let rt = runtime();
    let baseline = rt.run(&spec).unwrap();
    assert_eq!(
        baseline.recovery.decode_worker_deaths, 1,
        "the drill must fire within {CYCLES} cycles"
    );
    for k in [1, CYCLES] {
        let snap = run_killed_at(&rt, &spec, k);
        let resumed = rt.resume(&snap, &RunControl::new()).unwrap();
        assert_eq!(resumed.report.recovery, baseline.report.recovery, "k={k}");
    }
}

#[test]
fn checkpointing_is_a_pure_observer() {
    let spec = faulted_spec(2);
    let rt = runtime();
    let plain = rt.run(&spec).unwrap();
    let sink = CheckpointSink::every(1);
    let observed = rt
        .run_controlled(&spec, &RunControl::new().with_checkpoints(&sink))
        .unwrap();
    assert_eq!(
        observed.report, plain.report,
        "a checkpointed run must report bit-identically to an unobserved one"
    );
    assert_eq!(observed.stats.decode.jobs, plain.stats.decode.jobs);
    let last = sink.take().expect("final-cycle checkpoint");
    assert_eq!(last.cycles_done(), CYCLES);
}

#[test]
fn forced_checkpoints_fire_at_the_next_barrier() {
    let spec = faulted_spec(1);
    let rt = runtime();
    let sink = CheckpointSink::every(0); // forced-only
    let observer = sink.clone();
    let callback = move |p: RunProgress| {
        if p.cycles_done == 4 {
            observer.force();
        }
    };
    let control = RunControl::new()
        .with_progress(&callback)
        .with_checkpoints(&sink);
    let full = rt.run_controlled(&spec, &control).unwrap();
    let snap = sink.take().expect("the forced checkpoint");
    assert_eq!(snap.cycles_done(), 5, "force lands at the next barrier");
    // Resuming a snapshot of a run that succeeded anyway re-derives the
    // same tail.
    let resumed = rt.resume(&snap, &RunControl::new()).unwrap();
    assert_eq!(resumed.report, full.report);
}

#[test]
fn shard_panic_disarmed_resume_matches_the_clean_run() {
    for shards in [2, 4] {
        let mut spec = faulted_spec(shards);
        spec.faults.shard_panic = Some(ShardPanicPlan {
            shard: shards - 1,
            after_cycles: 6,
        });
        let rt = runtime();
        let sink = CheckpointSink::every(1);
        let control = RunControl::new().with_checkpoints(&sink);
        let err = rt.run_controlled(&spec, &control).unwrap_err();
        assert!(matches!(err, RuntimeError::ShardFailed { .. }), "{err:?}");
        let mut snap = sink.take().expect("pre-panic checkpoint");
        assert_eq!(snap.cycles_done(), 6, "latest barrier before the panic");
        snap.disarm_shard_panic();
        let resumed = rt.resume(&snap, &RunControl::new()).unwrap();
        // Pre-panic cycles are unaffected by an armed-but-unfired plan,
        // so the resumed run must equal a clean run of the disarmed
        // spec — the invariant the serve retry supervisor leans on.
        let mut clean = spec.clone();
        clean.faults.shard_panic = None;
        let expected = rt.run(&clean).unwrap();
        assert_eq!(resumed.report, expected.report, "shards={shards}");
    }
}

#[test]
fn undisarmed_snapshot_refires_the_same_fault() {
    let mut spec = faulted_spec(2);
    spec.faults.shard_panic = Some(ShardPanicPlan {
        shard: 0,
        after_cycles: 5,
    });
    let rt = runtime();
    let sink = CheckpointSink::every(1);
    let err = rt
        .run_controlled(&spec, &RunControl::new().with_checkpoints(&sink))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::ShardFailed { shard: 0, .. }));
    let snap = sink.take().expect("pre-panic checkpoint");
    let err = rt.resume(&snap, &RunControl::new()).unwrap_err();
    assert!(
        matches!(err, RuntimeError::ShardFailed { shard: 0, .. }),
        "an armed fault must replay deterministically: {err:?}"
    );
}

#[test]
fn resume_composes_across_multiple_kills() {
    let spec = faulted_spec(2);
    let rt = runtime();
    let baseline = rt.run(&spec).unwrap();
    let snap3 = run_killed_at(&rt, &spec, 3);
    // Kill the resumed run too, checkpointing on an even cadence.
    let sink = CheckpointSink::every(2);
    let token = CancelToken::new();
    let trip = token.clone();
    let callback = move |p: RunProgress| {
        if p.cycles_done == 7 {
            trip.cancel();
        }
    };
    let control = RunControl::new()
        .with_cancel(&token)
        .with_progress(&callback)
        .with_checkpoints(&sink);
    let err = rt.resume(&snap3, &control).unwrap_err();
    assert_eq!(err, RuntimeError::Cancelled { cycles_done: 7 });
    let snap6 = sink.take().expect("cadence-2 checkpoint");
    assert_eq!(snap6.cycles_done(), 6);
    let resumed = rt.resume(&snap6, &RunControl::new()).unwrap();
    assert_eq!(
        resumed.report, baseline.report,
        "snapshot-of-a-resumed-run must still converge to the baseline"
    );
}
