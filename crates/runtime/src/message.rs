//! Channel messages between the master thread and shard workers.
//!
//! Messages are shaped like the single-threaded model's
//! [`quest_core::network::Packet`]s: every envelope carries a transfer
//! direction and the number of bytes it would occupy on the global bus.
//! The master mints real [`Network`](quest_core::network::Network)
//! packets from envelopes as they flow, so packet and byte accounting
//! fall out of actual message traffic instead of a side calculation.
//! Control-plane envelopes (cycle barriers, readout outcomes) carry zero
//! wire bytes — they model what the single-threaded loop does implicitly
//! — keeping the bus ledger identical to the reference systems.

use quest_core::decoder_pipeline::Escalation;
use quest_core::master::SYNDROME_EVENT_BYTES;
use quest_core::network::PacketKind;
use quest_core::tile::LogicalBasis;
use quest_isa::LogicalInstr;
use quest_surface::StabKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

/// Bytes per data-qubit flip in a downstream correction message (qubit
/// id, same width as an upstream syndrome event).
pub(crate) const CORRECTION_FLIP_BYTES: u64 = 2;

/// Message body.
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    // Downstream (master → shard).
    /// Run one noisy QECC cycle on every owned tile, then report.
    Cycle,
    /// Prepare a tile's logical qubit.
    Prep { tile: usize, basis: LogicalBasis },
    /// Transversal CNOT between two co-sharded tiles.
    Cnot { control: usize, target: usize },
    /// Deliver one logical instruction to a tile's pipeline (the master
    /// already bus-accounted it).
    Logical { tile: usize, instr: LogicalInstr },
    /// Execute the distillation kernel `replays` times on a tile
    /// (pipeline delivery, or cache fill + replay under the cached
    /// delivery mode; the master already bus-accounted it).
    Kernel {
        tile: usize,
        kernel: Arc<[LogicalInstr]>,
        replays: u64,
    },
    /// Apply a global-decode correction to a tile's decoder frame.
    Correction {
        tile: usize,
        kind: StabKind,
        flips: Vec<usize>,
    },
    /// Destructively read a tile out in the logical-Z basis.
    MeasureZ { tile: usize },
    /// Checkpoint request: reply with the shard's owned state. Sent only
    /// at the cycle barrier, after the cycle's corrections — channel
    /// FIFO order guarantees they are applied before the state is read.
    Snapshot,
    /// Terminate the worker.
    Shutdown,

    // Upstream (shard → master).
    /// An escalation the tile's local decoder could not resolve.
    Syndrome {
        tile: usize,
        kind: StabKind,
        escalation: Escalation,
    },
    /// Cycle barrier: the shard finished its cycle and flushed all
    /// syndromes above.
    CycleDone { shard: usize },
    /// Readout result; `final_events` is the number of residual
    /// detection events in the final perfect decoding round, which cross
    /// the bus upstream as syndrome traffic.
    Outcome {
        tile: usize,
        value: bool,
        final_events: u64,
    },
    /// Worker sign-off after `Shutdown`, carrying the counters only the
    /// shard could see.
    Closing { shard: usize, local_decodes: u64 },
    /// Reply to `Snapshot`: the shard's complete state at the barrier.
    /// Control-plane traffic (zero wire bytes): checkpoints observe the
    /// run, they are not part of the modelled machine.
    ShardState {
        shard: usize,
        state: Box<crate::snapshot::ShardSnapshot>,
    },
    /// The shard's serve loop panicked; the worker caught it and is
    /// exiting. `detail` is the panic message, forwarded so the master
    /// can surface a typed error instead of aborting the process.
    Failed { shard: usize, detail: String },
}

/// A packet-shaped message: direction + wire bytes + body.
#[derive(Debug, Clone)]
pub(crate) struct Envelope {
    pub kind: PacketKind,
    /// Bytes this message occupies on the modelled global bus (zero for
    /// control-plane traffic).
    pub wire_bytes: u64,
    pub payload: Payload,
}

impl Envelope {
    /// A zero-byte control-plane envelope.
    pub(crate) fn control(kind: PacketKind, payload: Payload) -> Envelope {
        Envelope {
            kind,
            wire_bytes: 0,
            payload,
        }
    }

    /// An upstream syndrome envelope ([`SYNDROME_EVENT_BYTES`] per
    /// detection event, matching the master controller's escalation
    /// accounting).
    pub(crate) fn syndrome(tile: usize, kind: StabKind, escalation: Escalation) -> Envelope {
        Envelope {
            kind: PacketKind::Upstream,
            wire_bytes: escalation.events.len() as u64 * SYNDROME_EVENT_BYTES,
            payload: Payload::Syndrome {
                tile,
                kind,
                escalation,
            },
        }
    }

    /// A downstream correction envelope.
    pub(crate) fn correction(tile: usize, kind: StabKind, flips: Vec<usize>) -> Envelope {
        Envelope {
            kind: PacketKind::Downstream,
            wire_bytes: flips.len() as u64 * CORRECTION_FLIP_BYTES,
            payload: Payload::Correction { tile, kind, flips },
        }
    }

    /// A downstream instruction-delivery envelope carrying `wire_bytes`
    /// of bus traffic (the master accounts the bus ledger separately;
    /// this prices the interconnect packet).
    pub(crate) fn instructions(wire_bytes: u64, payload: Payload) -> Envelope {
        Envelope {
            kind: PacketKind::Downstream,
            wire_bytes,
            payload,
        }
    }

    /// An upstream readout-outcome envelope
    /// ([`SYNDROME_EVENT_BYTES`] per residual final-round event).
    pub(crate) fn outcome(tile: usize, value: bool, final_events: u64) -> Envelope {
        Envelope {
            kind: PacketKind::Upstream,
            wire_bytes: final_events * SYNDROME_EVENT_BYTES,
            payload: Payload::Outcome {
                tile,
                value,
                final_events,
            },
        }
    }
}

/// Sender half of a depth-tracked bounded channel.
pub(crate) struct Tx<T> {
    inner: SyncSender<T>,
    depth: Arc<AtomicUsize>,
    high_water: Arc<AtomicUsize>,
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Tx<T> {
        Tx {
            inner: self.inner.clone(),
            depth: Arc::clone(&self.depth),
            high_water: Arc::clone(&self.high_water),
        }
    }
}

/// The other half of a runtime channel hung up early — its thread died
/// or shut down. Callers translate this into a typed
/// [`RuntimeError`](crate::RuntimeError) (master side) or a clean worker
/// exit (shard side); nothing in the runtime panics on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Disconnected;

impl<T> Tx<T> {
    /// Sends, blocking when the channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] when the receiver is gone (mpsc
    /// guarantees the error even on a full channel, so a dead peer can
    /// never deadlock the sender).
    pub(crate) fn send(&self, value: T) -> Result<(), Disconnected> {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        self.inner.send(value).map_err(|_| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Disconnected
        })
    }
}

/// Receiver half of a depth-tracked bounded channel.
pub(crate) struct Rx<T> {
    inner: Receiver<T>,
    depth: Arc<AtomicUsize>,
}

impl<T> Rx<T> {
    /// Blocking receive.
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] when every sender is gone.
    pub(crate) fn recv(&self) -> Result<T, Disconnected> {
        let value = self.inner.recv().map_err(|_| Disconnected)?;
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Ok(value)
    }
}

/// Observer for a channel's high-water depth (master-side statistics).
#[derive(Clone)]
pub(crate) struct DepthGauge {
    high_water: Arc<AtomicUsize>,
}

impl DepthGauge {
    /// Deepest the channel ever got.
    pub(crate) fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Creates a bounded channel whose occupancy is tracked, returning the
/// two halves plus a gauge for the high-water mark.
pub(crate) fn channel<T>(bound: usize) -> (Tx<T>, Rx<T>, DepthGauge) {
    let (tx, rx) = std::sync::mpsc::sync_channel(bound);
    let depth = Arc::new(AtomicUsize::new(0));
    let high_water = Arc::new(AtomicUsize::new(0));
    (
        Tx {
            inner: tx,
            depth: Arc::clone(&depth),
            high_water: Arc::clone(&high_water),
        },
        Rx { inner: rx, depth },
        DepthGauge { high_water },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_gauge_tracks_high_water() {
        let (tx, rx, gauge) = channel::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.send(3).unwrap();
        assert_eq!(gauge.high_water(), 3);
        assert_eq!(rx.recv(), Ok(1));
        tx.send(4).unwrap(); // depth back to 3: watermark unchanged
        assert_eq!(gauge.high_water(), 3);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Ok(4));
    }

    #[test]
    fn hangups_surface_as_disconnected_not_panics() {
        let (tx, rx, _) = channel::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(Disconnected));
        let (tx, rx, _) = channel::<u32>(2);
        drop(tx);
        assert_eq!(rx.recv(), Err(Disconnected));
    }

    #[test]
    fn dead_receiver_cannot_deadlock_a_full_channel() {
        let (tx, rx, _) = channel::<u32>(1);
        tx.send(1).unwrap(); // channel now full
        drop(rx);
        // A blocking send on a full channel with no receiver must error,
        // not block forever.
        assert_eq!(tx.send(2), Err(Disconnected));
    }

    #[test]
    fn syndrome_envelope_prices_events() {
        let esc = Escalation {
            round: 7,
            events: vec![1, 4, 5],
        };
        let env = Envelope::syndrome(2, StabKind::Z, esc);
        assert_eq!(env.wire_bytes, 3 * SYNDROME_EVENT_BYTES);
        assert_eq!(env.kind, PacketKind::Upstream);
    }

    #[test]
    fn control_envelopes_are_free() {
        let env = Envelope::control(PacketKind::Downstream, Payload::Cycle);
        assert_eq!(env.wire_bytes, 0);
    }
}
