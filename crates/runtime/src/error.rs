//! Typed errors for fallible workload execution.

use crate::spec::SpecError;
use quest_core::BuildError;
use std::fmt;

/// Why [`Runtime::run`](crate::Runtime::run) or
/// [`run_reference`](crate::run_reference) refused a workload.
///
/// Both executors validate the spec up front and build their systems
/// fallibly, so no invalid user input reaches a panicking constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The spec failed [`WorkloadSpec::validate`](crate::WorkloadSpec::validate).
    Spec(SpecError),
    /// System construction rejected the spec's physical parameters.
    Build(BuildError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Spec(e) => e.fmt(f),
            RuntimeError::Build(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Spec(e) => Some(e),
            RuntimeError::Build(e) => Some(e),
        }
    }
}

impl From<SpecError> for RuntimeError {
    fn from(e: SpecError) -> RuntimeError {
        RuntimeError::Spec(e)
    }
}

impl From<BuildError> for RuntimeError {
    fn from(e: BuildError) -> RuntimeError {
        RuntimeError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_are_one_line_and_sourced() {
        let e = RuntimeError::from(SpecError::NoTiles);
        assert_eq!(
            e.to_string(),
            "invalid workload spec: need at least one tile"
        );
        assert!(!e.to_string().contains('\n'));
        assert!(e.source().is_some());
        let e = RuntimeError::from(BuildError::InvalidDistance(4));
        assert!(e.to_string().contains("odd number"));
        assert!(e.source().is_some());
    }
}
