//! Typed errors for fallible workload execution.

use crate::spec::SpecError;
use quest_core::fault::LinkFailure;
use quest_core::{BuildError, CnotError};
use std::fmt;

/// Why [`Runtime::run`](crate::Runtime::run) or
/// [`run_reference`](crate::run_reference) refused a workload, or why a
/// run shut down early.
///
/// Both executors validate the spec up front and build their systems
/// fallibly, so no invalid user input reaches a panicking constructor;
/// and every mid-run failure — a bus link out of retries, a shard
/// thread panicking, the decode pool dying — is contained and surfaces
/// here with a one-line display, never as a process abort.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The spec failed [`WorkloadSpec::validate`](crate::WorkloadSpec::validate).
    Spec(SpecError),
    /// System construction rejected the spec's physical parameters.
    Build(BuildError),
    /// A bus transfer exhausted its retransmission budget.
    Link(LinkFailure),
    /// A shard worker thread panicked; the panic was caught and the run
    /// shut down cleanly.
    ShardFailed {
        /// Which shard's thread failed.
        shard: usize,
        /// The panic message (or a disconnect description).
        detail: String,
    },
    /// The global-decode pool could not complete a batch (all workers
    /// dead and the supervisor out of respawns).
    DecodePoolFailed {
        /// What the supervisor observed.
        detail: String,
    },
    /// The single-threaded reference executor was asked to run a spec
    /// with fault injection; only the concurrent runtime injects faults.
    ReferenceFaults,
    /// A transversal CNOT was rejected by the tile physics (validated
    /// specs make this unreachable; it is typed rather than panicking).
    Cnot(CnotError),
    /// The run's [`CancelToken`](crate::CancelToken) tripped and the
    /// runtime wound the run down at the next cooperative checkpoint
    /// (operation boundary or QECC cycle). Every thread was joined; no
    /// partial report escapes.
    Cancelled {
        /// QECC cycles completed before the cancellation was observed.
        cycles_done: u64,
    },
    /// A master ↔ shard message violated the runtime protocol: a payload
    /// arrived in a state that cannot accept it. Indicates a runtime bug,
    /// reported as an error instead of aborting the process.
    Protocol {
        /// Which protocol state was violated (e.g. `"cycle barrier"`).
        context: &'static str,
        /// Debug rendering of the offending payload.
        payload: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Spec(e) => e.fmt(f),
            RuntimeError::Build(e) => e.fmt(f),
            RuntimeError::Link(e) => e.fmt(f),
            RuntimeError::ShardFailed { shard, detail } => {
                write!(f, "shard {shard} worker failed: {detail}")
            }
            RuntimeError::DecodePoolFailed { detail } => {
                write!(f, "global-decode pool failed: {detail}")
            }
            RuntimeError::ReferenceFaults => write!(
                f,
                "the reference executor does not inject faults: run fault plans \
                 on the concurrent runtime, or clear the spec's fault plan"
            ),
            RuntimeError::Cnot(e) => e.fmt(f),
            RuntimeError::Cancelled { cycles_done } => {
                write!(f, "run cancelled after {cycles_done} QECC cycles")
            }
            RuntimeError::Protocol { context, payload } => {
                write!(f, "protocol violation in {context}: unexpected {payload}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Spec(e) => Some(e),
            RuntimeError::Build(e) => Some(e),
            RuntimeError::Link(e) => Some(e),
            RuntimeError::Cnot(e) => Some(e),
            RuntimeError::ShardFailed { .. }
            | RuntimeError::DecodePoolFailed { .. }
            | RuntimeError::ReferenceFaults
            | RuntimeError::Cancelled { .. }
            | RuntimeError::Protocol { .. } => None,
        }
    }
}

impl From<CnotError> for RuntimeError {
    fn from(e: CnotError) -> RuntimeError {
        RuntimeError::Cnot(e)
    }
}

impl From<LinkFailure> for RuntimeError {
    fn from(e: LinkFailure) -> RuntimeError {
        RuntimeError::Link(e)
    }
}

impl From<SpecError> for RuntimeError {
    fn from(e: SpecError) -> RuntimeError {
        RuntimeError::Spec(e)
    }
}

impl From<BuildError> for RuntimeError {
    fn from(e: BuildError) -> RuntimeError {
        RuntimeError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_are_one_line_and_sourced() {
        let e = RuntimeError::from(SpecError::NoTiles);
        assert_eq!(
            e.to_string(),
            "invalid workload spec: need at least one tile"
        );
        assert!(!e.to_string().contains('\n'));
        assert!(e.source().is_some());
        let e = RuntimeError::from(BuildError::InvalidDistance(4));
        assert!(e.to_string().contains("odd number"));
        assert!(e.source().is_some());
        let e = RuntimeError::from(LinkFailure {
            tile: 3,
            attempts: 9,
        });
        assert!(e.to_string().contains("MCE 3"));
        assert!(!e.to_string().contains('\n'));
        assert!(e.source().is_some());
        for e in [
            RuntimeError::ShardFailed {
                shard: 1,
                detail: "tile 2 panicked".into(),
            },
            RuntimeError::DecodePoolFailed {
                detail: "all workers dead".into(),
            },
            RuntimeError::ReferenceFaults,
        ] {
            assert!(!e.to_string().is_empty());
            assert!(!e.to_string().contains('\n'), "one-line display: {e}");
        }
    }
}
