//! Single-threaded reference execution of a [`WorkloadSpec`].
//!
//! Runs the same workload on
//! [`MultiTileSystem`](quest_core::MultiTileSystem) — one tableau
//! spanning every tile, escalations serviced inline by the master
//! controller — using the same per-tile RNG streams as the concurrent
//! runtime. The determinism tests and the scaling benchmark compare
//! [`Runtime::run`](crate::Runtime::run) against this.

use crate::spec::{WorkloadOp, WorkloadSpec};
use quest_core::tile::tile_seed;
use quest_core::MultiTileSystem;
use quest_stabilizer::{SeedableRng, StdRng};

/// Outcome of a reference run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceReport {
    /// Logical readout outcomes, in program order, as `(tile, value)`.
    pub outcomes: Vec<(usize, bool)>,
    /// Total bytes on the master controller's bus ledger.
    pub bus_bytes: u64,
}

/// Executes the spec single-threaded.
///
/// # Panics
///
/// Panics if the spec fails [`WorkloadSpec::validate`] (the shard count
/// is irrelevant here but is still checked, so a spec accepted by the
/// runtime and the reference is the same set).
pub fn run_reference(spec: &WorkloadSpec) -> ReferenceReport {
    spec.validate().expect("invalid workload spec");
    let mut sys = MultiTileSystem::new(spec.distance, spec.tiles, spec.error_rate);
    let mut rngs: Vec<StdRng> = (0..spec.tiles)
        .map(|t| StdRng::seed_from_u64(tile_seed(spec.seed, t as u64)))
        .collect();
    let mut outcomes = Vec::new();
    for op in &spec.ops {
        match *op {
            WorkloadOp::Prep { tile, basis } => {
                sys.prep_logical(tile, basis, &mut rngs[tile]);
            }
            WorkloadOp::Cycles(n) => {
                for _ in 0..n {
                    sys.run_noisy_cycle_streams(&mut rngs);
                }
            }
            WorkloadOp::Cnot { control, target } => {
                // The transversal CNOT consumes no randomness; any
                // stream works.
                sys.transversal_cnot(control, target, &mut rngs[control]);
            }
            WorkloadOp::MeasureZ { tile } => {
                let value = sys.measure_logical_z(tile, &mut rngs[tile]);
                outcomes.push((tile, value));
            }
        }
    }
    ReferenceReport {
        outcomes,
        bus_bytes: sys.master().bus().total(),
    }
}
