//! Single-threaded reference execution of a [`WorkloadSpec`].
//!
//! Runs the same workload on
//! [`quest_core::MultiTileSystem`] — one tableau
//! spanning every tile, escalations serviced inline by the master
//! controller, instruction delivery through the shared
//! [`quest_core::DeliveryEngine`] — using the same
//! per-tile RNG streams as the concurrent runtime. The determinism tests
//! and the scaling benchmark compare
//! [`Runtime::run`](crate::Runtime::run) against this.

use crate::error::RuntimeError;
use crate::spec::{WorkloadOp, WorkloadSpec};
use quest_core::fault::RecoveryStats;
use quest_core::tile::tile_seed;
use quest_core::{decode_totals, MultiTileSystem, RunReport};
use quest_stabilizer::{SeedableRng, StdRng};

/// Executes the spec single-threaded, producing the same unified
/// [`RunReport`] as the concurrent runtime — bit-identical for any shard
/// count.
///
/// # Errors
///
/// Returns [`RuntimeError`] if the spec fails [`WorkloadSpec::validate`]
/// (the shard count is irrelevant here but is still checked, so a spec
/// accepted by the runtime and the reference is the same set) or system
/// construction rejects its parameters, and
/// [`RuntimeError::ReferenceFaults`] when the spec carries a non-empty
/// fault plan — only the concurrent runtime injects and recovers from
/// classical faults.
pub fn run_reference(spec: &WorkloadSpec) -> Result<RunReport, RuntimeError> {
    spec.validate()?;
    if !spec.faults.is_none() {
        return Err(RuntimeError::ReferenceFaults);
    }
    let mut sys = MultiTileSystem::with_delivery_decoder(
        spec.distance,
        spec.tiles,
        spec.error_rate,
        spec.delivery,
        spec.decoder,
    )?;
    let mut rngs: Vec<StdRng> = (0..spec.tiles)
        .map(|t| StdRng::seed_from_u64(tile_seed(spec.seed, t as u64)))
        .collect();
    let mut outcomes = Vec::new();
    let mut qecc_cycles = 0;
    for op in &spec.ops {
        match *op {
            WorkloadOp::Prep { tile, basis } => {
                sys.prep_logical(tile, basis, &mut rngs[tile]);
            }
            WorkloadOp::Cycles(n) => {
                for _ in 0..n {
                    sys.run_noisy_cycle_streams(&mut rngs);
                }
                qecc_cycles += n;
            }
            WorkloadOp::Cnot { control, target } => {
                // The transversal CNOT consumes no randomness; any
                // stream works.
                sys.transversal_cnot(control, target, &mut rngs[control])?;
            }
            WorkloadOp::Logical { tile, instr, class } => {
                sys.dispatch_logical(tile, instr, class);
            }
            WorkloadOp::KernelReplay { tile, replays } => {
                sys.run_kernel(tile, &spec.kernel, replays);
            }
            WorkloadOp::Sync { tile } => {
                sys.sync_tile(tile);
            }
            WorkloadOp::MeasureZ { tile } => {
                let value = sys.measure_logical_z(tile, &mut rngs[tile]);
                outcomes.push((tile, value));
            }
        }
    }
    let (local_decodes, escalations) = decode_totals(sys.mces());
    Ok(RunReport {
        delivery: spec.delivery,
        outcomes,
        bus: *sys.master().bus(),
        qecc_cycles,
        local_decodes,
        escalations,
        master: sys.master().stats(),
        decode_cost: sys.master().decoder_cost(),
        recovery: RecoveryStats::default(),
    })
}
