//! Workload description and shard planning.

use quest_core::tile::LogicalBasis;
use std::fmt;
use std::ops::Range;

/// One step of a runtime workload, executed in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Prepare a tile's logical qubit.
    Prep {
        /// Target tile.
        tile: usize,
        /// Preparation basis.
        basis: LogicalBasis,
    },
    /// Run this many noisy QECC cycles on every tile (barrier per cycle).
    Cycles(u64),
    /// Transversal logical CNOT between two tiles. Both tiles must live
    /// on the same shard (the runtime keeps entangled tiles co-sharded so
    /// their joint stabilizer state stays inside one worker's tableau).
    Cnot {
        /// Control tile.
        control: usize,
        /// Target tile.
        target: usize,
    },
    /// Destructive logical-Z readout of a tile; the outcome is appended
    /// to the run report.
    MeasureZ {
        /// Tile to read out.
        tile: usize,
    },
}

/// A complete workload for [`Runtime::run`](crate::Runtime::run).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Surface-code distance of every tile.
    pub distance: usize,
    /// Number of tiles.
    pub tiles: usize,
    /// Number of shards (worker threads); each owns a contiguous group
    /// of tiles.
    pub shards: usize,
    /// Per-round depolarizing data-noise probability.
    pub error_rate: f64,
    /// Master seed; per-tile streams derive from it via
    /// [`quest_core::tile::tile_seed`], so outcomes are independent of
    /// the shard count.
    pub seed: u64,
    /// The program.
    pub ops: Vec<WorkloadOp>,
}

/// A spec that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl WorkloadSpec {
    /// A memory workload: prepare every tile in `|0_L⟩`, error-correct
    /// for `cycles` rounds, read every tile out.
    pub fn memory(
        distance: usize,
        tiles: usize,
        shards: usize,
        error_rate: f64,
        seed: u64,
        cycles: u64,
    ) -> WorkloadSpec {
        let mut ops: Vec<WorkloadOp> = (0..tiles)
            .map(|tile| WorkloadOp::Prep {
                tile,
                basis: LogicalBasis::Zero,
            })
            .collect();
        ops.push(WorkloadOp::Cycles(cycles));
        ops.extend((0..tiles).map(|tile| WorkloadOp::MeasureZ { tile }));
        WorkloadSpec {
            distance,
            tiles,
            shards,
            error_rate,
            seed,
            ops,
        }
    }

    /// A Bell-pair workload over adjacent tile pairs: `|+_L⟩|0_L⟩` per
    /// pair, one projection cycle, transversal CNOT, `cycles` noisy
    /// rounds, then readout of every tile. Pairs `(2k, 2k+1)` stay
    /// co-sharded for every shard count dividing `tiles / 2`.
    pub fn bell_pairs(
        distance: usize,
        tiles: usize,
        shards: usize,
        error_rate: f64,
        seed: u64,
        cycles: u64,
    ) -> WorkloadSpec {
        assert!(
            tiles.is_multiple_of(2),
            "Bell-pair workload needs an even tile count"
        );
        let mut ops = Vec::new();
        for pair in 0..tiles / 2 {
            ops.push(WorkloadOp::Prep {
                tile: 2 * pair,
                basis: LogicalBasis::Plus,
            });
            ops.push(WorkloadOp::Prep {
                tile: 2 * pair + 1,
                basis: LogicalBasis::Zero,
            });
        }
        ops.push(WorkloadOp::Cycles(1));
        for pair in 0..tiles / 2 {
            ops.push(WorkloadOp::Cnot {
                control: 2 * pair,
                target: 2 * pair + 1,
            });
        }
        ops.push(WorkloadOp::Cycles(cycles));
        ops.extend((0..tiles).map(|tile| WorkloadOp::MeasureZ { tile }));
        WorkloadSpec {
            distance,
            tiles,
            shards,
            error_rate,
            seed,
            ops,
        }
    }

    /// The contiguous tile range owned by one shard (tiles are split as
    /// evenly as possible; the first `tiles % shards` shards hold one
    /// extra tile).
    pub fn tile_range(&self, shard: usize) -> Range<usize> {
        let base = self.tiles / self.shards;
        let rem = self.tiles % self.shards;
        let start = shard * base + shard.min(rem);
        let len = base + usize::from(shard < rem);
        start..start + len
    }

    /// The shard owning a tile.
    pub fn shard_of(&self, tile: usize) -> usize {
        (0..self.shards)
            .find(|&s| self.tile_range(s).contains(&tile))
            .expect("tile out of range")
    }

    /// Checks the spec's structural invariants: valid distance and
    /// probability, at least one tile, `1 ≤ shards ≤ tiles`, all op tile
    /// indices in range, CNOT endpoints distinct and co-sharded.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.distance < 3 || self.distance.is_multiple_of(2) {
            return Err(SpecError(format!(
                "distance must be an odd number ≥ 3, got {}",
                self.distance
            )));
        }
        if self.tiles == 0 {
            return Err(SpecError("need at least one tile".into()));
        }
        if self.shards == 0 || self.shards > self.tiles {
            return Err(SpecError(format!(
                "shards must be in 1..={}, got {}",
                self.tiles, self.shards
            )));
        }
        if !(0.0..=1.0).contains(&self.error_rate) {
            return Err(SpecError(format!(
                "error rate {} outside [0, 1]",
                self.error_rate
            )));
        }
        for (i, op) in self.ops.iter().enumerate() {
            let check = |tile: usize| {
                if tile >= self.tiles {
                    Err(SpecError(format!(
                        "op {i} ({op:?}) references tile {tile}, but there are {} tiles",
                        self.tiles
                    )))
                } else {
                    Ok(())
                }
            };
            match *op {
                WorkloadOp::Prep { tile, .. } | WorkloadOp::MeasureZ { tile } => check(tile)?,
                WorkloadOp::Cycles(_) => {}
                WorkloadOp::Cnot { control, target } => {
                    check(control)?;
                    check(target)?;
                    if control == target {
                        return Err(SpecError(format!(
                            "op {i}: CNOT control and target tiles coincide ({control})"
                        )));
                    }
                    if self.shard_of(control) != self.shard_of(target) {
                        return Err(SpecError(format!(
                            "op {i}: CNOT({control}, {target}) crosses shards {} and {}; \
                             entangled tiles must be co-sharded (lower the shard count \
                             or regroup the tiles)",
                            self.shard_of(control),
                            self.shard_of(target)
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total QECC cycles the spec runs on each tile.
    pub fn total_cycles(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                WorkloadOp::Cycles(n) => *n,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_and_remainders() {
        let spec = WorkloadSpec::memory(3, 10, 4, 0.0, 1, 5);
        let ranges: Vec<_> = (0..4).map(|s| spec.tile_range(s)).collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(spec.shard_of(0), 0);
        assert_eq!(spec.shard_of(5), 1);
        assert_eq!(spec.shard_of(9), 3);
    }

    #[test]
    fn memory_spec_validates() {
        assert!(WorkloadSpec::memory(3, 8, 4, 1e-3, 7, 20)
            .validate()
            .is_ok());
    }

    #[test]
    fn bell_pairs_co_sharded_at_power_of_two_shards() {
        for shards in [1, 2, 4] {
            let spec = WorkloadSpec::bell_pairs(3, 8, shards, 0.0, 7, 3);
            assert!(spec.validate().is_ok(), "shards={shards}");
        }
    }

    #[test]
    fn cross_shard_cnot_rejected() {
        let mut spec = WorkloadSpec::memory(3, 4, 4, 0.0, 1, 1);
        spec.ops.push(WorkloadOp::Cnot {
            control: 0,
            target: 1,
        });
        let err = spec.validate().unwrap_err();
        assert!(err.0.contains("co-sharded"), "{err}");
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(WorkloadSpec::memory(4, 2, 1, 0.0, 1, 1).validate().is_err());
        assert!(WorkloadSpec::memory(3, 2, 3, 0.0, 1, 1).validate().is_err());
        let mut spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        spec.error_rate = 1.5;
        assert!(spec.validate().is_err());
        spec.error_rate = 0.0;
        spec.ops.push(WorkloadOp::MeasureZ { tile: 2 });
        assert!(spec.validate().is_err());
    }
}
