//! Workload description and shard planning.

use quest_core::tile::LogicalBasis;
use quest_core::{DecoderChoice, DeliveryMode, FaultPlan, MCE_IBUF_BYTES};
use quest_isa::{InstrClass, LogicalInstr, LogicalProgram};
use quest_surface::TableDecoder;
use std::fmt;
use std::ops::Range;

/// Largest distance at which [`DecoderChoice::Table`]'s complete lookup
/// memory is feasible: a rotated distance-`d` code has `(d² - 1) / 2`
/// checks per stabilizer kind, and the table enumerates `2^checks`
/// syndromes, capped at [`TableDecoder::MAX_CHECKS`].
pub const TABLE_DECODER_MAX_DISTANCE: usize = 5;

/// One step of a runtime workload, executed in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Prepare a tile's logical qubit.
    Prep {
        /// Target tile.
        tile: usize,
        /// Preparation basis.
        basis: LogicalBasis,
    },
    /// Run this many noisy QECC cycles on every tile (barrier per cycle).
    Cycles(u64),
    /// Transversal logical CNOT between two tiles. Both tiles must live
    /// on the same shard (the runtime keeps entangled tiles co-sharded so
    /// their joint stabilizer state stays inside one worker's tableau).
    Cnot {
        /// Control tile.
        control: usize,
        /// Target tile.
        target: usize,
    },
    /// Deliver one logical instruction to a tile through the engine's
    /// delivery policy (bus-accounted under the spec's [`DeliveryMode`]).
    Logical {
        /// Target tile.
        tile: usize,
        /// The instruction.
        instr: LogicalInstr,
        /// Its instruction class (selects the bus traffic class).
        class: InstrClass,
    },
    /// Replay the spec's distillation kernel ([`WorkloadSpec::kernel`])
    /// this many times on a tile. Under
    /// [`DeliveryMode::QuestMceCache`] the kernel crosses the bus once
    /// and replays from the tile's instruction cache thereafter.
    KernelReplay {
        /// Target tile.
        tile: usize,
        /// Number of kernel executions.
        replays: u64,
    },
    /// Issue a master → MCE sync token to a tile (cache management and
    /// logical-qubit movement, §7).
    Sync {
        /// Target tile.
        tile: usize,
    },
    /// Destructive logical-Z readout of a tile; the outcome is appended
    /// to the run report.
    MeasureZ {
        /// Tile to read out.
        tile: usize,
    },
}

/// A complete workload for [`Runtime::run`](crate::Runtime::run).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Surface-code distance of every tile.
    pub distance: usize,
    /// Number of tiles.
    pub tiles: usize,
    /// Number of shards (worker threads); each owns a contiguous group
    /// of tiles.
    pub shards: usize,
    /// Per-round depolarizing data-noise probability.
    pub error_rate: f64,
    /// Master seed; per-tile streams derive from it via
    /// [`quest_core::tile::tile_seed`], so outcomes are independent of
    /// the shard count.
    pub seed: u64,
    /// Instruction-delivery architecture to account
    /// ([`DeliveryMode::QuestMce`] in the stock constructors).
    pub delivery: DeliveryMode,
    /// The shared distillation kernel replayed by
    /// [`WorkloadOp::KernelReplay`] (empty when unused).
    pub kernel: Vec<LogicalInstr>,
    /// Classical-fault injection plan ([`FaultPlan::none`] by default —
    /// a strict no-op). Faulty plans run only on the concurrent runtime;
    /// fault decisions are seeded from [`WorkloadSpec::seed`], so a
    /// faulty run is as reproducible as a clean one.
    pub faults: FaultPlan,
    /// Global decoder backend for the master controller and the decode
    /// pool ([`DecoderChoice::UnionFind`] in the stock constructors).
    /// Validated: [`DecoderChoice::Table`] is rejected above
    /// [`TABLE_DECODER_MAX_DISTANCE`].
    pub decoder: DecoderChoice,
    /// The program.
    pub ops: Vec<WorkloadOp>,
}

/// Why a [`WorkloadSpec`] failed [`WorkloadSpec::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The code distance is even or below 3.
    InvalidDistance(usize),
    /// The spec has no tiles.
    NoTiles,
    /// The shard count is zero or exceeds the tile count.
    BadShardCount {
        /// Tiles in the spec.
        tiles: usize,
        /// Offending shard count.
        shards: usize,
    },
    /// The error rate is outside `[0, 1]`.
    InvalidErrorRate(f64),
    /// An op references a tile the spec does not have.
    TileOutOfRange {
        /// Index of the offending op.
        op: usize,
        /// The referenced tile.
        tile: usize,
        /// Tiles in the spec.
        tiles: usize,
    },
    /// A CNOT's control and target coincide.
    CnotSameTile {
        /// Index of the offending op.
        op: usize,
        /// The repeated tile.
        tile: usize,
    },
    /// A CNOT's endpoints live on different shards.
    CnotCrossShard {
        /// Index of the offending op.
        op: usize,
        /// Control tile.
        control: usize,
        /// Target tile.
        target: usize,
        /// Shard owning the control.
        control_shard: usize,
        /// Shard owning the target.
        target_shard: usize,
    },
    /// A CNOT acts on a tile before both of its decoder references are
    /// established (a preparation changes basis and the references
    /// re-form on the next QECC cycle; a CNOT before that cycle would
    /// read an undefined syndrome reference).
    CnotBeforeReference {
        /// Index of the offending op.
        op: usize,
        /// The unreferenced tile.
        tile: usize,
    },
    /// The distillation kernel does not fit the MCE instruction buffer,
    /// so the cache fill demanded by [`DeliveryMode::QuestMceCache`]
    /// would overflow.
    KernelTooLarge {
        /// Encoded kernel size.
        bytes: usize,
        /// Instruction-buffer capacity.
        capacity: usize,
    },
    /// [`WorkloadSpec::bell_pairs`] needs an even tile count.
    OddBellTiles(usize),
    /// A fault-plan rate is outside `[0, 1]`.
    InvalidFaultRate {
        /// Which rate (`"drop"`, `"corrupt"` or `"stall"`).
        which: &'static str,
        /// The offending value.
        rate: f64,
    },
    /// [`DecoderChoice::Table`] was requested at a distance whose check
    /// count overflows the complete lookup memory.
    TableDecoderInfeasible {
        /// The requested distance.
        distance: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload spec: ")?;
        match *self {
            SpecError::InvalidDistance(d) => {
                write!(f, "distance must be an odd number >= 3, got {d}")
            }
            SpecError::NoTiles => write!(f, "need at least one tile"),
            SpecError::BadShardCount { tiles, shards } => {
                write!(f, "shards must be in 1..={tiles}, got {shards}")
            }
            SpecError::InvalidErrorRate(p) => write!(f, "error rate {p} outside [0, 1]"),
            SpecError::TileOutOfRange { op, tile, tiles } => {
                write!(
                    f,
                    "op {op} references tile {tile}, but there are {tiles} tiles"
                )
            }
            SpecError::CnotSameTile { op, tile } => {
                write!(
                    f,
                    "op {op}: CNOT control and target tiles coincide ({tile})"
                )
            }
            SpecError::CnotCrossShard {
                op,
                control,
                target,
                control_shard,
                target_shard,
            } => write!(
                f,
                "op {op}: CNOT({control}, {target}) crosses shards {control_shard} and \
                 {target_shard}; entangled tiles must be co-sharded (lower the shard \
                 count or regroup the tiles)"
            ),
            SpecError::CnotBeforeReference { op, tile } => write!(
                f,
                "op {op}: CNOT uses tile {tile} before its decoder references settle; \
                 run at least one QECC cycle after preparation"
            ),
            SpecError::KernelTooLarge { bytes, capacity } => write!(
                f,
                "distillation kernel is {bytes} bytes encoded, larger than the \
                 {capacity}-byte MCE instruction buffer"
            ),
            SpecError::OddBellTiles(tiles) => {
                write!(
                    f,
                    "Bell-pair workload needs an even tile count, got {tiles}"
                )
            }
            SpecError::InvalidFaultRate { which, rate } => {
                write!(f, "fault {which} rate {rate} outside [0, 1]")
            }
            SpecError::TableDecoderInfeasible { distance } => write!(
                f,
                "the table decoder enumerates 2^checks syndromes and is only \
                 feasible up to distance {TABLE_DECODER_MAX_DISTANCE} \
                 ({} checks); got distance {distance}",
                TableDecoder::MAX_CHECKS
            ),
        }
    }
}

impl std::error::Error for SpecError {}

impl WorkloadSpec {
    /// A memory workload: prepare every tile in `|0_L⟩`, error-correct
    /// for `cycles` rounds, read every tile out.
    pub fn memory(
        distance: usize,
        tiles: usize,
        shards: usize,
        error_rate: f64,
        seed: u64,
        cycles: u64,
    ) -> WorkloadSpec {
        let mut ops: Vec<WorkloadOp> = (0..tiles)
            .map(|tile| WorkloadOp::Prep {
                tile,
                basis: LogicalBasis::Zero,
            })
            .collect();
        ops.push(WorkloadOp::Cycles(cycles));
        ops.extend((0..tiles).map(|tile| WorkloadOp::MeasureZ { tile }));
        WorkloadSpec {
            distance,
            tiles,
            shards,
            error_rate,
            seed,
            delivery: DeliveryMode::QuestMce,
            kernel: Vec::new(),
            faults: FaultPlan::none(),
            decoder: DecoderChoice::default(),
            ops,
        }
    }

    /// A Bell-pair workload over adjacent tile pairs: `|+_L⟩|0_L⟩` per
    /// pair, one projection cycle, transversal CNOT, `cycles` noisy
    /// rounds, then readout of every tile. Pairs `(2k, 2k+1)` stay
    /// co-sharded for every shard count dividing `tiles / 2`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::OddBellTiles`] when `tiles` is odd.
    pub fn bell_pairs(
        distance: usize,
        tiles: usize,
        shards: usize,
        error_rate: f64,
        seed: u64,
        cycles: u64,
    ) -> Result<WorkloadSpec, SpecError> {
        if !tiles.is_multiple_of(2) {
            return Err(SpecError::OddBellTiles(tiles));
        }
        let mut ops = Vec::new();
        for pair in 0..tiles / 2 {
            ops.push(WorkloadOp::Prep {
                tile: 2 * pair,
                basis: LogicalBasis::Plus,
            });
            ops.push(WorkloadOp::Prep {
                tile: 2 * pair + 1,
                basis: LogicalBasis::Zero,
            });
        }
        ops.push(WorkloadOp::Cycles(1));
        for pair in 0..tiles / 2 {
            ops.push(WorkloadOp::Cnot {
                control: 2 * pair,
                target: 2 * pair + 1,
            });
        }
        ops.push(WorkloadOp::Cycles(cycles));
        ops.extend((0..tiles).map(|tile| WorkloadOp::MeasureZ { tile }));
        Ok(WorkloadSpec {
            distance,
            tiles,
            shards,
            error_rate,
            seed,
            delivery: DeliveryMode::QuestMce,
            kernel: Vec::new(),
            faults: FaultPlan::none(),
            decoder: DecoderChoice::default(),
            ops,
        })
    }

    /// A delivery-mode memory workload mirroring
    /// [`QuestSystem::run_memory_workload`](quest_core::QuestSystem::run_memory_workload)
    /// on every tile: the program's non-distillation instructions are
    /// delivered per tile, its distillation-class instructions form the
    /// shared kernel replayed `replays` times per tile, then `cycles`
    /// noisy rounds, one sync token per tile, and readout of every tile.
    ///
    /// With `tiles = 1` this reproduces the single-tile system's run —
    /// bus ledger, decode counters and outcome — under every
    /// [`DeliveryMode`]; sharded, it runs the same Figure-14 experiment
    /// concurrently.
    #[allow(clippy::too_many_arguments)]
    pub fn delivery_memory(
        distance: usize,
        tiles: usize,
        shards: usize,
        error_rate: f64,
        seed: u64,
        cycles: u64,
        program: &LogicalProgram,
        replays: u64,
        delivery: DeliveryMode,
    ) -> WorkloadSpec {
        let kernel: Vec<LogicalInstr> = program
            .iter()
            .filter(|(_, c)| *c == InstrClass::Distillation)
            .map(|(i, _)| *i)
            .collect();
        let mut ops = Vec::new();
        for tile in 0..tiles {
            for &(instr, class) in program {
                if class != InstrClass::Distillation {
                    ops.push(WorkloadOp::Logical { tile, instr, class });
                }
            }
            ops.push(WorkloadOp::KernelReplay { tile, replays });
        }
        ops.push(WorkloadOp::Cycles(cycles));
        ops.extend((0..tiles).map(|tile| WorkloadOp::Sync { tile }));
        ops.extend((0..tiles).map(|tile| WorkloadOp::MeasureZ { tile }));
        WorkloadSpec {
            distance,
            tiles,
            shards,
            error_rate,
            seed,
            delivery,
            kernel,
            faults: FaultPlan::none(),
            decoder: DecoderChoice::default(),
            ops,
        }
    }

    /// The contiguous tile range owned by one shard (tiles are split as
    /// evenly as possible; the first `tiles % shards` shards hold one
    /// extra tile).
    pub fn tile_range(&self, shard: usize) -> Range<usize> {
        let base = self.tiles / self.shards;
        let rem = self.tiles % self.shards;
        let start = shard * base + shard.min(rem);
        let len = base + usize::from(shard < rem);
        start..start + len
    }

    /// The shard owning a tile: the arithmetic inverse of
    /// [`WorkloadSpec::tile_range`]'s block distribution, O(1) and total.
    /// The first `rem` shards hold `base + 1` tiles (ending at `cut`);
    /// the rest hold `base`. An out-of-range tile (rejected by
    /// [`WorkloadSpec::validate`] before any executor calls this) clamps
    /// to the last shard.
    pub fn shard_of(&self, tile: usize) -> usize {
        let base = self.tiles / self.shards;
        let rem = self.tiles % self.shards;
        let cut = rem * (base + 1);
        let shard = if tile < cut {
            tile / (base + 1)
        } else {
            // base == 0 (more shards than tiles) means every tile sits
            // in the first (base + 1)-sized region, so only out-of-range
            // input lands on the fallback.
            (tile - cut)
                .checked_div(base)
                .map_or(self.shards.saturating_sub(1), |q| rem + q)
        };
        shard.min(self.shards.saturating_sub(1))
    }

    /// Encoded size of the distillation kernel on the bus / in the cache.
    pub fn kernel_bytes(&self) -> usize {
        self.kernel.len() * LogicalInstr::ENCODED_BYTES
    }

    /// Checks the spec's structural invariants: valid distance and
    /// probability, at least one tile, `1 ≤ shards ≤ tiles`, all op tile
    /// indices in range, CNOT endpoints distinct, co-sharded and
    /// reference-settled, and (under [`DeliveryMode::QuestMceCache`]) a
    /// kernel that fits the instruction cache.
    ///
    /// Everything that would make the engine panic at run time is
    /// rejected here, so a validated spec runs on both the reference
    /// executor and the concurrent runtime without panicking.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.distance < 3 || self.distance.is_multiple_of(2) {
            return Err(SpecError::InvalidDistance(self.distance));
        }
        if self.tiles == 0 {
            return Err(SpecError::NoTiles);
        }
        if self.shards == 0 || self.shards > self.tiles {
            return Err(SpecError::BadShardCount {
                tiles: self.tiles,
                shards: self.shards,
            });
        }
        if !(0.0..=1.0).contains(&self.error_rate) {
            return Err(SpecError::InvalidErrorRate(self.error_rate));
        }
        if let Err((which, rate)) = self.faults.check_rates() {
            return Err(SpecError::InvalidFaultRate { which, rate });
        }
        if self.decoder == DecoderChoice::Table && self.distance > TABLE_DECODER_MAX_DISTANCE {
            return Err(SpecError::TableDecoderInfeasible {
                distance: self.distance,
            });
        }
        // Decoder-reference tracking: at boot a tile's Z pipeline has a
        // deterministic reference and its X pipeline forms one on the
        // first QECC cycle; a preparation re-forms the non-prepared
        // basis's reference on the next cycle. A transversal CNOT reads
        // and cross-propagates both references of both tiles.
        let mut refs: Vec<(bool, bool)> = vec![(true, false); self.tiles];
        let mut kernel_fills = false;
        for (i, op) in self.ops.iter().enumerate() {
            let check = |tile: usize| {
                if tile >= self.tiles {
                    Err(SpecError::TileOutOfRange {
                        op: i,
                        tile,
                        tiles: self.tiles,
                    })
                } else {
                    Ok(())
                }
            };
            match *op {
                WorkloadOp::Prep { tile, basis } => {
                    check(tile)?;
                    refs[tile] = match basis {
                        LogicalBasis::Zero => (true, false),
                        LogicalBasis::Plus => (false, true),
                    };
                }
                WorkloadOp::MeasureZ { tile } | WorkloadOp::Sync { tile } => check(tile)?,
                WorkloadOp::Logical { tile, .. } => check(tile)?,
                WorkloadOp::KernelReplay { tile, replays } => {
                    check(tile)?;
                    kernel_fills |= replays > 0 && !self.kernel.is_empty();
                }
                WorkloadOp::Cycles(n) => {
                    if n > 0 {
                        refs.iter_mut().for_each(|r| *r = (true, true));
                    }
                }
                WorkloadOp::Cnot { control, target } => {
                    check(control)?;
                    check(target)?;
                    if control == target {
                        return Err(SpecError::CnotSameTile {
                            op: i,
                            tile: control,
                        });
                    }
                    if self.shard_of(control) != self.shard_of(target) {
                        return Err(SpecError::CnotCrossShard {
                            op: i,
                            control,
                            target,
                            control_shard: self.shard_of(control),
                            target_shard: self.shard_of(target),
                        });
                    }
                    for tile in [control, target] {
                        if refs[tile] != (true, true) {
                            return Err(SpecError::CnotBeforeReference { op: i, tile });
                        }
                    }
                }
            }
        }
        if self.delivery == DeliveryMode::QuestMceCache
            && kernel_fills
            && self.kernel_bytes() > MCE_IBUF_BYTES
        {
            return Err(SpecError::KernelTooLarge {
                bytes: self.kernel_bytes(),
                capacity: MCE_IBUF_BYTES,
            });
        }
        Ok(())
    }

    /// Total QECC cycles the spec runs on each tile.
    pub fn total_cycles(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                WorkloadOp::Cycles(n) => *n,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_isa::LogicalQubit;

    #[test]
    fn even_split_and_remainders() {
        let spec = WorkloadSpec::memory(3, 10, 4, 0.0, 1, 5);
        let ranges: Vec<_> = (0..4).map(|s| spec.tile_range(s)).collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(spec.shard_of(0), 0);
        assert_eq!(spec.shard_of(5), 1);
        assert_eq!(spec.shard_of(9), 3);
    }

    #[test]
    fn shard_of_inverts_tile_range_exhaustively() {
        for tiles in 1..=12 {
            for shards in 1..=tiles {
                let spec = WorkloadSpec::memory(3, tiles, shards, 0.0, 1, 1);
                for shard in 0..shards {
                    for tile in spec.tile_range(shard) {
                        assert_eq!(
                            spec.shard_of(tile),
                            shard,
                            "tiles={tiles} shards={shards} tile={tile}"
                        );
                    }
                }
                // Out-of-range input clamps instead of panicking.
                assert_eq!(spec.shard_of(tiles + 5), shards - 1);
            }
        }
    }

    #[test]
    fn memory_spec_validates() {
        assert!(WorkloadSpec::memory(3, 8, 4, 1e-3, 7, 20)
            .validate()
            .is_ok());
    }

    #[test]
    fn bell_pairs_co_sharded_at_power_of_two_shards() {
        for shards in [1, 2, 4] {
            let spec = WorkloadSpec::bell_pairs(3, 8, shards, 0.0, 7, 3).unwrap();
            assert!(spec.validate().is_ok(), "shards={shards}");
        }
        assert_eq!(
            WorkloadSpec::bell_pairs(3, 5, 1, 0.0, 7, 3).unwrap_err(),
            SpecError::OddBellTiles(5)
        );
    }

    #[test]
    fn cross_shard_cnot_rejected() {
        let mut spec = WorkloadSpec::memory(3, 4, 4, 0.0, 1, 1);
        spec.ops.push(WorkloadOp::Cnot {
            control: 0,
            target: 1,
        });
        let err = spec.validate().unwrap_err();
        assert!(matches!(err, SpecError::CnotCrossShard { .. }), "{err}");
        assert!(err.to_string().contains("co-sharded"), "{err}");
    }

    #[test]
    fn cnot_before_reference_rejected() {
        // Straight after boot the X references have not formed yet.
        let mut spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        spec.ops.insert(
            0,
            WorkloadOp::Cnot {
                control: 0,
                target: 1,
            },
        );
        assert!(matches!(
            spec.validate().unwrap_err(),
            SpecError::CnotBeforeReference { op: 0, .. }
        ));
        // A preparation invalidates the reference until the next cycle.
        let mut spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        spec.ops.push(WorkloadOp::Prep {
            tile: 0,
            basis: LogicalBasis::Plus,
        });
        spec.ops.push(WorkloadOp::Cnot {
            control: 0,
            target: 1,
        });
        assert!(matches!(
            spec.validate().unwrap_err(),
            SpecError::CnotBeforeReference { tile: 0, .. }
        ));
        // One cycle in between settles it.
        let mut spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        spec.ops.push(WorkloadOp::Cnot {
            control: 0,
            target: 1,
        });
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn oversized_kernel_rejected_only_when_it_would_fill() {
        let program = {
            let mut p = LogicalProgram::new();
            for _ in 0..(MCE_IBUF_BYTES / LogicalInstr::ENCODED_BYTES + 1) {
                p.push(LogicalInstr::T(LogicalQubit(0)), InstrClass::Distillation);
            }
            p
        };
        let cached = WorkloadSpec::delivery_memory(
            3,
            1,
            1,
            0.0,
            1,
            1,
            &program,
            2,
            DeliveryMode::QuestMceCache,
        );
        assert!(matches!(
            cached.validate().unwrap_err(),
            SpecError::KernelTooLarge { .. }
        ));
        // The uncached modes never fill, so the same kernel is fine.
        let uncached = WorkloadSpec {
            delivery: DeliveryMode::QuestMce,
            ..cached.clone()
        };
        assert!(uncached.validate().is_ok());
        // And a cached spec that never replays never fills either.
        let unreplayed = WorkloadSpec {
            ops: cached
                .ops
                .iter()
                .map(|op| match *op {
                    WorkloadOp::KernelReplay { tile, .. } => {
                        WorkloadOp::KernelReplay { tile, replays: 0 }
                    }
                    other => other,
                })
                .collect(),
            ..cached
        };
        assert!(unreplayed.validate().is_ok());
    }

    #[test]
    fn delivery_memory_spec_shape() {
        let mut program = LogicalProgram::new();
        program.push(LogicalInstr::H(LogicalQubit(0)), InstrClass::Algorithmic);
        program.push(LogicalInstr::T(LogicalQubit(0)), InstrClass::Distillation);
        let spec = WorkloadSpec::delivery_memory(
            3,
            2,
            2,
            0.0,
            1,
            5,
            &program,
            7,
            DeliveryMode::QuestMceCache,
        );
        assert!(spec.validate().is_ok());
        assert_eq!(spec.kernel.len(), 1);
        assert_eq!(spec.total_cycles(), 5);
        let replays: Vec<_> = spec
            .ops
            .iter()
            .filter(|op| matches!(op, WorkloadOp::KernelReplay { .. }))
            .collect();
        assert_eq!(replays.len(), 2, "one kernel replay op per tile");
    }

    #[test]
    fn bad_parameters_rejected() {
        assert_eq!(
            WorkloadSpec::memory(4, 2, 1, 0.0, 1, 1).validate(),
            Err(SpecError::InvalidDistance(4))
        );
        assert_eq!(
            WorkloadSpec::memory(3, 2, 3, 0.0, 1, 1).validate(),
            Err(SpecError::BadShardCount {
                tiles: 2,
                shards: 3
            })
        );
        let mut spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        spec.error_rate = 1.5;
        assert_eq!(spec.validate(), Err(SpecError::InvalidErrorRate(1.5)));
        spec.error_rate = 0.0;
        spec.ops.push(WorkloadOp::MeasureZ { tile: 2 });
        assert!(matches!(
            spec.validate().unwrap_err(),
            SpecError::TileOutOfRange { tile: 2, .. }
        ));
        spec.ops.clear();
        spec.tiles = 0;
        spec.shards = 0;
        assert_eq!(spec.validate(), Err(SpecError::NoTiles));
    }

    #[test]
    fn table_decoder_rejected_above_its_feasible_distance() {
        let mut spec = WorkloadSpec::memory(7, 2, 1, 0.0, 1, 1);
        assert!(spec.validate().is_ok(), "default decoder works at d=7");
        spec.decoder = DecoderChoice::Table;
        assert_eq!(
            spec.validate(),
            Err(SpecError::TableDecoderInfeasible { distance: 7 })
        );
        // Every backend validates at the table's feasible distances.
        for distance in [3, 5] {
            for decoder in DecoderChoice::ALL {
                let mut spec = WorkloadSpec::memory(distance, 2, 1, 0.0, 1, 1);
                spec.decoder = decoder;
                assert!(spec.validate().is_ok(), "d={distance} {decoder}");
            }
        }
    }

    #[test]
    fn bad_fault_rates_rejected() {
        let mut spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        assert!(spec.faults.is_none(), "stock constructors inject nothing");
        spec.faults.stall_rate = -0.1;
        assert_eq!(
            spec.validate(),
            Err(SpecError::InvalidFaultRate {
                which: "stall",
                rate: -0.1
            })
        );
        spec.faults.stall_rate = 0.5;
        spec.faults.quarantine_cycles = 10;
        assert!(spec.validate().is_ok(), "in-range rates are fine");
    }
}
