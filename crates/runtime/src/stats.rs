//! Runtime observability: per-shard counters, pool statistics, phase
//! wall-clock, and the run report.

use crate::pool::PoolStats;
use quest_core::MasterStats;
use std::fmt;
use std::time::Duration;
// This module is the workspace's only sanctioned home for wall-clock
// reads (lint.toml `[ql02] clock_allow`): timings measured here are
// *reported*, never fed back into the simulation, so they cannot break
// run-for-run determinism.
use std::time::Instant;

/// A phase timer: the only way runtime code reads the wall clock.
///
/// Observability-only by construction — a [`Stopwatch`] can do nothing
/// but measure the time since [`Stopwatch::start`], and the result lands
/// in [`PhaseTimings`], which no simulation path reads.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Wall-clock elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Counters for one shard worker, collected by the master.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// First tile (global id) owned by the shard.
    pub first_tile: usize,
    /// Number of tiles owned.
    pub tiles: usize,
    /// QECC cycles executed per tile on this shard.
    pub cycles: u64,
    /// Escalations this shard sent to the global decoder.
    pub escalations: u64,
    /// Upstream envelopes the shard sent (syndromes, barriers, outcomes).
    pub upstream_messages: u64,
    /// High-water occupancy of the shard → master channel.
    pub max_upstream_depth: usize,
    /// High-water occupancy of the master → shard channel.
    pub max_downstream_depth: usize,
}

impl ShardStats {
    /// Escalations per tile-cycle on this shard.
    pub fn escalation_rate(&self) -> f64 {
        let tile_cycles = self.cycles * self.tiles as u64;
        if tile_cycles == 0 {
            0.0
        } else {
            self.escalations as f64 / tile_cycles as f64
        }
    }
}

/// Wall-clock spent in each master-side phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// QECC cycles: barrier rounds including shard compute and syndrome
    /// collection.
    pub cycles: Duration,
    /// Global decoding: batch fan-out, pool decode, correction delivery.
    pub decode: Duration,
    /// Logical operations (preparations, CNOTs).
    pub logical: Duration,
    /// Destructive readout.
    pub readout: Duration,
}

impl PhaseTimings {
    /// Total accounted wall-clock.
    pub fn total(&self) -> Duration {
        self.cycles + self.decode + self.logical + self.readout
    }
}

/// Everything the runtime observed during one run.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Per-shard counters.
    pub shards: Vec<ShardStats>,
    /// Global-decode pool counters.
    pub decode: PoolStats,
    /// Master-controller counters (dispatches, global decodes, syncs).
    pub master: MasterStats,
    /// Packets minted on the modelled interconnect.
    pub packets_sent: u64,
    /// Wire bytes (payload + headers) on the modelled interconnect.
    pub wire_bytes: u64,
    /// Wall-clock per phase.
    pub phases: PhaseTimings,
}

impl RuntimeStats {
    /// Escalations per tile-cycle across all shards.
    pub fn escalation_rate(&self) -> f64 {
        let tile_cycles: u64 = self.shards.iter().map(|s| s.cycles * s.tiles as u64).sum();
        if tile_cycles == 0 {
            0.0
        } else {
            let escalations: u64 = self.shards.iter().map(|s| s.escalations).sum();
            escalations as f64 / tile_cycles as f64
        }
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "shards: {}", self.shards.len())?;
        for s in &self.shards {
            writeln!(
                f,
                "  shard {}: tiles {}..{}, {} cycles, {} escalations \
                 ({:.4}/tile-cycle), depth up {} / down {}",
                s.shard,
                s.first_tile,
                s.first_tile + s.tiles,
                s.cycles,
                s.escalations,
                s.escalation_rate(),
                s.max_upstream_depth,
                s.max_downstream_depth,
            )?;
        }
        writeln!(
            f,
            "decode pool: {} workers, {} batches, {} jobs (max {}, mean {:.2})",
            self.decode.workers,
            self.decode.batches,
            self.decode.jobs,
            self.decode.max_batch_jobs,
            self.decode.mean_batch_jobs(),
        )?;
        if self.decode.deaths > 0 {
            writeln!(
                f,
                "  pool supervision: {} worker deaths, {} respawned",
                self.decode.deaths, self.decode.respawns,
            )?;
        }
        writeln!(
            f,
            "master: {} global decodes, {} sync tokens; network: {} packets, {} wire bytes",
            self.master.global_decodes, self.master.sync_tokens, self.packets_sent, self.wire_bytes,
        )?;
        write!(
            f,
            "phases: cycles {:?}, decode {:?}, logical {:?}, readout {:?}",
            self.phases.cycles, self.phases.decode, self.phases.logical, self.phases.readout,
        )
    }
}

/// Result of [`Runtime::run`](crate::Runtime::run): the unified
/// [`RunReport`](quest_core::RunReport) every execution path produces —
/// bit-identical to the single-threaded reference for any shard count —
/// plus the concurrent runtime's own observability counters.
///
/// Dereferences to the inner report, so `report.bus_bytes()`,
/// `report.outcomes`, `report.logical_ok()` etc. work directly.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// The unified physics/accounting report (what determinism
    /// guarantees cover).
    pub report: quest_core::RunReport,
    /// Concurrency observability (thread/channel/pool counters; varies
    /// with sharding and machine, excluded from determinism guarantees).
    pub stats: RuntimeStats,
}

impl std::ops::Deref for RuntimeReport {
    type Target = quest_core::RunReport;

    fn deref(&self) -> &quest_core::RunReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_rate_handles_zero_cycles() {
        let stats = RuntimeStats::default();
        assert_eq!(stats.escalation_rate(), 0.0);
        let shard = ShardStats::default();
        assert_eq!(shard.escalation_rate(), 0.0);
    }

    #[test]
    fn display_is_total_and_readable() {
        let stats = RuntimeStats {
            shards: vec![ShardStats {
                shard: 0,
                first_tile: 0,
                tiles: 4,
                cycles: 10,
                escalations: 2,
                upstream_messages: 12,
                max_upstream_depth: 3,
                max_downstream_depth: 1,
            }],
            ..RuntimeStats::default()
        };
        let s = stats.to_string();
        assert!(s.contains("shard 0"));
        assert!(s.contains("decode pool"));
    }
}
