//! Shared global-decode worker pool.
//!
//! Escalations from all shards converge at the master, which packages
//! them into per-cycle batches and fans the batch out to this pool. Each
//! worker owns a backend built from the spec's [`DecoderChoice`] and
//! prebuilt single-round [`BatchGraphs`], decoding its chunk with
//! [`decode_batch_backend`] — the same graphs and backend kind the
//! single-threaded master uses, so pooled decoding changes throughput,
//! never corrections. Per-chunk [`CostReport`]s ride back with the
//! corrections and merge (order-invariantly) into one pool-level cost,
//! which therefore matches the reference executor's bit for bit.
//!
//! The pool is supervised: a worker that panics mid-chunk (including the
//! fault layer's injected kill) is caught by `catch_unwind` inside the
//! worker thread, reports the undecoded chunk back, and the supervisor
//! respawns a replacement and requeues the chunk — no correction is
//! lost, no mutex is poisoned, and the run's output is bit-identical to
//! a run without the death. When the respawn budget is exhausted the
//! batch fails with a typed [`RuntimeError::DecodePoolFailed`] instead
//! of hanging or aborting.

use crate::error::RuntimeError;
use quest_surface::decoder::batch::{BatchGraphs, DecodeJob};
use quest_surface::decoder::{decode_batch_backend, CostReport, DecoderChoice};
use quest_surface::{RotatedLattice, StabKind};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// One unit of pool work: a chunk of jobs with tags identifying where
/// each correction must return to.
struct Chunk {
    /// `(tile, kind)` per job, parallel to `jobs`.
    tags: Vec<(usize, StabKind)>,
    jobs: Vec<DecodeJob>,
    /// Fault-injection flag: the worker that picks this chunk up
    /// panics instead of decoding it (exercising the containment and
    /// respawn path end to end).
    die: bool,
}

/// One decoded chunk.
struct ChunkResult {
    tags: Vec<(usize, StabKind)>,
    /// Data-qubit flips per job.
    flips: Vec<BTreeSet<usize>>,
    /// Decode cost of exactly this chunk's jobs.
    cost: CostReport,
}

/// What a worker thread reports upstream.
enum WorkerMessage {
    /// A chunk decoded successfully.
    Done(ChunkResult),
    /// The worker died (panicked) holding this still-undecoded chunk;
    /// the supervisor must requeue it and replace the worker.
    Died { chunk: Chunk },
}

/// Aggregate pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Batches submitted (one per cycle with at least one escalation).
    pub batches: u64,
    /// Total decode jobs across all batches.
    pub jobs: u64,
    /// Largest single batch.
    pub max_batch_jobs: u64,
    /// Worker threads that died mid-chunk.
    pub deaths: u64,
    /// Replacement workers the supervisor spawned.
    pub respawns: u64,
}

impl PoolStats {
    /// Mean jobs per batch.
    pub fn mean_batch_jobs(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.jobs as f64 / self.batches as f64
        }
    }
}

/// Handle to the pool, owned by the master thread. The lifetimes tie the
/// pool to the thread scope its workers run in, letting the supervisor
/// respawn replacements into the same scope mid-run.
pub(crate) struct DecodePool<'scope, 'env> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    lattice: &'env RotatedLattice,
    choice: DecoderChoice,
    chunk_tx: Sender<Chunk>,
    chunk_rx: Arc<Mutex<Receiver<Chunk>>>,
    result_tx: Sender<WorkerMessage>,
    result_rx: Receiver<WorkerMessage>,
    handles: Vec<std::thread::ScopedJoinHandle<'scope, ()>>,
    stats: PoolStats,
    cost: CostReport,
}

impl<'scope, 'env> DecodePool<'scope, 'env> {
    /// Spawns `workers` decode threads inside `scope`, each owning one
    /// backend built from `choice`.
    pub(crate) fn spawn(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        lattice: &'env RotatedLattice,
        choice: DecoderChoice,
        workers: usize,
    ) -> DecodePool<'scope, 'env> {
        assert!(workers > 0, "decode pool needs at least one worker");
        let (chunk_tx, chunk_rx) = channel::<Chunk>();
        let (result_tx, result_rx) = channel::<WorkerMessage>();
        let mut pool = DecodePool {
            scope,
            lattice,
            choice,
            chunk_tx,
            chunk_rx: Arc::new(Mutex::new(chunk_rx)),
            result_tx,
            result_rx,
            handles: Vec::with_capacity(workers),
            stats: PoolStats {
                workers,
                ..PoolStats::default()
            },
            cost: CostReport::default(),
        };
        for _ in 0..workers {
            pool.spawn_worker();
        }
        pool
    }

    /// Spawns one worker thread pulling from the shared chunk queue.
    fn spawn_worker(&mut self) {
        let chunk_rx = Arc::clone(&self.chunk_rx);
        let result_tx = self.result_tx.clone();
        let lattice = self.lattice;
        let choice = self.choice;
        self.handles.push(self.scope.spawn(move || {
            let graphs = BatchGraphs::new(lattice);
            let mut backend = choice.backend();
            loop {
                // Holding the lock only for the recv keeps workers
                // pulling chunks as they free up. A poisoned lock (a
                // sibling died between lock and unlock) is recovered,
                // not propagated: the queue itself is always valid.
                let next = {
                    let rx = chunk_rx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    rx.recv()
                };
                let mut chunk = match next {
                    Ok(chunk) => chunk,
                    Err(_) => return, // pool shut down: queue closed
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if chunk.die {
                        // quest-lint: allow(QL01) -- deliberate fault injection: exercises the supervisor's requeue-and-respawn path
                        panic!("injected decode-worker death");
                    }
                    // Scope the cost accumulator to this chunk so the
                    // result carries exactly these jobs' cost (a dead
                    // chunk's partial cost is discarded with the worker,
                    // so the requeued decode is counted exactly once).
                    backend.reset_cost();
                    let corrections = decode_batch_backend(backend.as_mut(), &graphs, &chunk.jobs);
                    (corrections, backend.cost())
                }));
                match outcome {
                    Ok((corrections, cost)) => {
                        let result = ChunkResult {
                            tags: std::mem::take(&mut chunk.tags),
                            flips: corrections.into_iter().map(|c| c.data_flips).collect(),
                            cost,
                        };
                        if result_tx.send(WorkerMessage::Done(result)).is_err() {
                            return; // pool gone: nobody wants the result
                        }
                    }
                    Err(_) => {
                        // Dying breath: hand the chunk back so the
                        // supervisor can requeue it, then exit without
                        // unwinding (the scope must never see a panic).
                        chunk.die = false;
                        let _ = result_tx.send(WorkerMessage::Died { chunk });
                        return;
                    }
                }
            }
        }));
    }

    /// Decodes one batch, blocking until every job is resolved. Returns
    /// `(tile, kind, data_flips)` per job, in arbitrary order (the
    /// caller orders them before anything order-sensitive).
    ///
    /// With `kill_one` set, the worker picking up the batch's first
    /// chunk dies instead of decoding it — the supervisor requeues the
    /// chunk on a respawned worker, so the corrections are still exact.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DecodePoolFailed`] when the queue is closed or
    /// the respawn budget (one per original worker) is exhausted.
    pub(crate) fn decode(
        &mut self,
        batch: Vec<(usize, StabKind, DecodeJob)>,
        kill_one: bool,
    ) -> Result<Vec<(usize, StabKind, BTreeSet<usize>)>, RuntimeError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.batches += 1;
        self.stats.jobs += batch.len() as u64;
        self.stats.max_batch_jobs = self.stats.max_batch_jobs.max(batch.len() as u64);

        let chunk_size = batch.len().div_ceil(self.stats.workers);
        let mut chunks_sent = 0usize;
        let mut iter = batch.into_iter().peekable();
        while iter.peek().is_some() {
            let mut tags = Vec::with_capacity(chunk_size);
            let mut jobs = Vec::with_capacity(chunk_size);
            for (tile, kind, job) in iter.by_ref().take(chunk_size) {
                tags.push((tile, kind));
                jobs.push(job);
            }
            self.submit(Chunk {
                tags,
                jobs,
                die: kill_one && chunks_sent == 0,
            })?;
            chunks_sent += 1;
        }

        let mut out = Vec::new();
        let mut chunks_done = 0usize;
        while chunks_done < chunks_sent {
            match self.result_rx.recv() {
                Ok(WorkerMessage::Done(result)) => {
                    self.cost.merge(&result.cost);
                    for ((tile, kind), flips) in result.tags.into_iter().zip(result.flips) {
                        out.push((tile, kind, flips));
                    }
                    chunks_done += 1;
                }
                Ok(WorkerMessage::Died { chunk }) => {
                    self.stats.deaths += 1;
                    if self.stats.respawns >= self.stats.workers as u64 {
                        return Err(RuntimeError::DecodePoolFailed {
                            detail: format!(
                                "respawn budget exhausted after {} worker deaths",
                                self.stats.deaths
                            ),
                        });
                    }
                    self.stats.respawns += 1;
                    self.spawn_worker();
                    self.submit(chunk)?;
                }
                Err(_) => {
                    return Err(RuntimeError::DecodePoolFailed {
                        detail: "all decode workers disconnected mid-batch".into(),
                    });
                }
            }
        }
        Ok(out)
    }

    fn submit(&self, chunk: Chunk) -> Result<(), RuntimeError> {
        self.chunk_tx
            .send(chunk)
            .map_err(|_| RuntimeError::DecodePoolFailed {
                detail: "job queue closed: no decode workers left".into(),
            })
    }

    /// Statistics so far.
    pub(crate) fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Decode cost merged across every completed chunk. Per-decode
    /// cycles are pure functions of `(graph, events)` and the merge is
    /// order-invariant, so this matches the single-threaded reference
    /// for any worker count.
    pub(crate) fn cost(&self) -> CostReport {
        self.cost
    }

    /// Orderly teardown: closes the job queue first (so idle workers
    /// exit their `recv`), then joins every worker handle — consuming
    /// any panic result so the enclosing thread scope never re-panics.
    /// Safe with jobs still queued: workers drain the closed queue and
    /// exit when it empties.
    pub(crate) fn shutdown(self) -> PoolStats {
        let DecodePool {
            chunk_tx,
            handles,
            stats,
            ..
        } = self;
        drop(chunk_tx);
        for handle in handles {
            let _ = handle.join();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_surface::decoder::Decoder;
    use quest_surface::{DecodingGraph, UnionFindDecoder};

    fn demo_batch() -> Vec<(usize, StabKind, DecodeJob)> {
        vec![
            (
                0,
                StabKind::Z,
                DecodeJob {
                    kind: StabKind::Z,
                    events: vec![0, 1],
                },
            ),
            (
                1,
                StabKind::X,
                DecodeJob {
                    kind: StabKind::X,
                    events: vec![2],
                },
            ),
            (
                2,
                StabKind::Z,
                DecodeJob {
                    kind: StabKind::Z,
                    events: vec![4],
                },
            ),
            (
                3,
                StabKind::Z,
                DecodeJob {
                    kind: StabKind::Z,
                    events: vec![],
                },
            ),
            (
                4,
                StabKind::X,
                DecodeJob {
                    kind: StabKind::X,
                    events: vec![1, 3],
                },
            ),
        ]
    }

    fn assert_exact(lattice: &RotatedLattice, got: Vec<(usize, StabKind, BTreeSet<usize>)>) {
        let mut got = got;
        got.sort_by_key(|&(tile, _, _)| tile);
        let uf = UnionFindDecoder::new();
        for ((tile, kind, job), (gt, gk, flips)) in demo_batch().into_iter().zip(got) {
            assert_eq!((tile, kind), (gt, gk));
            let graph = DecodingGraph::new(lattice, job.kind, 1);
            assert_eq!(flips, uf.decode(&graph, &job.events).data_flips);
        }
    }

    #[test]
    fn pool_matches_direct_decoding() {
        let lattice = RotatedLattice::new(5);
        std::thread::scope(|scope| {
            let mut pool = DecodePool::spawn(scope, &lattice, DecoderChoice::default(), 3);
            let got = pool.decode(demo_batch(), false).unwrap();
            assert_exact(&lattice, got);
            let stats = pool.stats();
            assert_eq!(stats.batches, 1);
            assert_eq!(stats.jobs, 5);
            assert_eq!(stats.max_batch_jobs, 5);
            assert_eq!(stats.deaths, 0);
            pool.shutdown();
        });
    }

    #[test]
    fn empty_batch_is_free() {
        let lattice = RotatedLattice::new(3);
        std::thread::scope(|scope| {
            let mut pool = DecodePool::spawn(scope, &lattice, DecoderChoice::default(), 2);
            assert!(pool.decode(Vec::new(), false).unwrap().is_empty());
            assert_eq!(pool.stats().batches, 0);
            pool.shutdown();
        });
    }

    #[test]
    fn killed_worker_is_respawned_and_loses_no_corrections() {
        let lattice = RotatedLattice::new(5);
        std::thread::scope(|scope| {
            let mut pool = DecodePool::spawn(scope, &lattice, DecoderChoice::default(), 2);
            let got = pool.decode(demo_batch(), true).unwrap();
            assert_exact(&lattice, got);
            let stats = pool.stats();
            assert_eq!(stats.deaths, 1);
            assert_eq!(stats.respawns, 1);
            // The respawned pool keeps decoding exactly.
            let again = pool.decode(demo_batch(), false).unwrap();
            assert_exact(&lattice, again);
            let stats = pool.shutdown();
            assert_eq!(stats.batches, 2);
        });
    }

    #[test]
    fn pool_cost_matches_sequential_for_every_backend() {
        // The decode pool's merged CostReport must equal a sequential
        // decode of the same jobs on one backend — for every selectable
        // backend, and even when a worker death forces a requeue.
        let lattice = RotatedLattice::new(5);
        for choice in DecoderChoice::ALL {
            let graphs = BatchGraphs::new(&lattice);
            let mut reference = choice.backend();
            let jobs: Vec<DecodeJob> = demo_batch().into_iter().map(|(_, _, j)| j).collect();
            decode_batch_backend(reference.as_mut(), &graphs, &jobs);
            for kill_one in [false, true] {
                std::thread::scope(|scope| {
                    let mut pool = DecodePool::spawn(scope, &lattice, choice, 3);
                    let got = pool.decode(demo_batch(), kill_one).unwrap();
                    assert_eq!(got.len(), jobs.len());
                    assert_eq!(
                        pool.cost(),
                        reference.cost(),
                        "{choice} kill={kill_one}: pool cost diverged"
                    );
                    pool.shutdown();
                });
            }
        }
    }

    #[test]
    fn respawn_budget_exhaustion_is_a_typed_error() {
        let lattice = RotatedLattice::new(5);
        std::thread::scope(|scope| {
            let mut pool = DecodePool::spawn(scope, &lattice, DecoderChoice::default(), 1);
            // One worker, one respawn in the budget: the second kill
            // must fail the batch instead of hanging.
            assert!(pool.decode(demo_batch(), true).is_ok());
            let err = pool.decode(demo_batch(), true).unwrap_err();
            assert!(matches!(err, RuntimeError::DecodePoolFailed { .. }));
            assert!(err.to_string().contains("respawn budget"));
            pool.shutdown();
        });
    }

    #[test]
    fn dropping_a_loaded_pool_neither_hangs_nor_aborts() {
        let lattice = RotatedLattice::new(5);
        std::thread::scope(|scope| {
            let pool = DecodePool::spawn(scope, &lattice, DecoderChoice::default(), 2);
            // Queue work the pool will never be asked to collect, then
            // tear down while it is still in flight.
            for _ in 0..16 {
                let mut tags = Vec::new();
                let mut jobs = Vec::new();
                for (tile, kind, job) in demo_batch() {
                    tags.push((tile, kind));
                    jobs.push(job);
                }
                pool.submit(Chunk {
                    tags,
                    jobs,
                    die: false,
                })
                .unwrap();
            }
            pool.shutdown();
        });
    }
}
