//! Shared global-decode worker pool.
//!
//! Escalations from all shards converge at the master, which packages
//! them into per-cycle batches and fans the batch out to this pool. Each
//! worker owns a [`UnionFindDecoder`] and prebuilt single-round
//! [`BatchGraphs`], decoding its chunk with
//! [`decode_batch`](quest_surface::decoder::batch::decode_batch) — the
//! same graph and decoder the single-threaded master uses, so pooled
//! decoding changes throughput, never corrections.

use quest_surface::decoder::batch::{decode_batch, BatchGraphs, DecodeJob};
use quest_surface::{RotatedLattice, StabKind, UnionFindDecoder};
use std::collections::BTreeSet;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// One unit of pool work: a chunk of jobs with tags identifying where
/// each correction must return to.
struct Chunk {
    /// `(tile, kind)` per job, parallel to `jobs`.
    tags: Vec<(usize, StabKind)>,
    jobs: Vec<DecodeJob>,
}

/// One decoded chunk.
struct ChunkResult {
    tags: Vec<(usize, StabKind)>,
    /// Data-qubit flips per job.
    flips: Vec<BTreeSet<usize>>,
}

/// Aggregate pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Batches submitted (one per cycle with at least one escalation).
    pub batches: u64,
    /// Total decode jobs across all batches.
    pub jobs: u64,
    /// Largest single batch.
    pub max_batch_jobs: u64,
}

impl PoolStats {
    /// Mean jobs per batch.
    pub fn mean_batch_jobs(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.jobs as f64 / self.batches as f64
        }
    }
}

/// Handle to the pool, owned by the master thread.
pub(crate) struct DecodePool {
    chunk_tx: Sender<Chunk>,
    result_rx: Receiver<ChunkResult>,
    stats: PoolStats,
}

impl DecodePool {
    /// Spawns `workers` decode threads inside `scope`.
    pub(crate) fn spawn<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        lattice: &RotatedLattice,
        workers: usize,
    ) -> DecodePool {
        assert!(workers > 0, "decode pool needs at least one worker");
        let (chunk_tx, chunk_rx) = channel::<Chunk>();
        let (result_tx, result_rx) = channel::<ChunkResult>();
        let chunk_rx = Arc::new(Mutex::new(chunk_rx));
        for _ in 0..workers {
            let chunk_rx = Arc::clone(&chunk_rx);
            let result_tx = result_tx.clone();
            let lattice = lattice.clone();
            scope.spawn(move || {
                let graphs = BatchGraphs::new(&lattice);
                let decoder = UnionFindDecoder::new();
                loop {
                    // Holding the lock only for the recv keeps workers
                    // pulling chunks as they free up.
                    let chunk = match chunk_rx.lock().expect("pool queue poisoned").recv() {
                        Ok(chunk) => chunk,
                        Err(_) => return, // pool dropped: shut down
                    };
                    let corrections = decode_batch(&decoder, &graphs, &chunk.jobs);
                    let result = ChunkResult {
                        tags: chunk.tags,
                        flips: corrections.into_iter().map(|c| c.data_flips).collect(),
                    };
                    if result_tx.send(result).is_err() {
                        return;
                    }
                }
            });
        }
        DecodePool {
            chunk_tx,
            result_rx,
            stats: PoolStats {
                workers,
                ..PoolStats::default()
            },
        }
    }

    /// Decodes one batch, blocking until every job is resolved. Returns
    /// `(tile, kind, data_flips)` per job, in arbitrary order (each
    /// correction targets a distinct decoder pipeline, and frame updates
    /// commute).
    pub(crate) fn decode(
        &mut self,
        batch: Vec<(usize, StabKind, DecodeJob)>,
    ) -> Vec<(usize, StabKind, BTreeSet<usize>)> {
        if batch.is_empty() {
            return Vec::new();
        }
        self.stats.batches += 1;
        self.stats.jobs += batch.len() as u64;
        self.stats.max_batch_jobs = self.stats.max_batch_jobs.max(batch.len() as u64);

        let chunk_size = batch.len().div_ceil(self.stats.workers);
        let mut chunks_sent = 0usize;
        let mut iter = batch.into_iter().peekable();
        while iter.peek().is_some() {
            let mut tags = Vec::with_capacity(chunk_size);
            let mut jobs = Vec::with_capacity(chunk_size);
            for (tile, kind, job) in iter.by_ref().take(chunk_size) {
                tags.push((tile, kind));
                jobs.push(job);
            }
            self.chunk_tx
                .send(Chunk { tags, jobs })
                .expect("decode pool worker died");
            chunks_sent += 1;
        }

        let mut out = Vec::new();
        for _ in 0..chunks_sent {
            let result = self.result_rx.recv().expect("decode pool worker died");
            for ((tile, kind), flips) in result.tags.into_iter().zip(result.flips) {
                out.push((tile, kind, flips));
            }
        }
        out
    }

    /// Statistics so far.
    pub(crate) fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_surface::decoder::Decoder;
    use quest_surface::DecodingGraph;

    #[test]
    fn pool_matches_direct_decoding() {
        let lattice = RotatedLattice::new(5);
        std::thread::scope(|scope| {
            let mut pool = DecodePool::spawn(scope, &lattice, 3);
            let batch: Vec<(usize, StabKind, DecodeJob)> = vec![
                (
                    0,
                    StabKind::Z,
                    DecodeJob {
                        kind: StabKind::Z,
                        events: vec![0, 1],
                    },
                ),
                (
                    1,
                    StabKind::X,
                    DecodeJob {
                        kind: StabKind::X,
                        events: vec![2],
                    },
                ),
                (
                    2,
                    StabKind::Z,
                    DecodeJob {
                        kind: StabKind::Z,
                        events: vec![4],
                    },
                ),
                (
                    3,
                    StabKind::Z,
                    DecodeJob {
                        kind: StabKind::Z,
                        events: vec![],
                    },
                ),
                (
                    4,
                    StabKind::X,
                    DecodeJob {
                        kind: StabKind::X,
                        events: vec![1, 3],
                    },
                ),
            ];
            let mut got = pool.decode(batch.clone());
            got.sort_by_key(|&(tile, _, _)| tile);
            let uf = UnionFindDecoder::new();
            for ((tile, kind, job), (gt, gk, flips)) in batch.into_iter().zip(got) {
                assert_eq!((tile, kind), (gt, gk));
                let graph = DecodingGraph::new(&lattice, job.kind, 1);
                assert_eq!(flips, uf.decode(&graph, &job.events).data_flips);
            }
            assert_eq!(pool.stats().batches, 1);
            assert_eq!(pool.stats().jobs, 5);
            assert_eq!(pool.stats().max_batch_jobs, 5);
            drop(pool); // closes the queue so workers exit the scope
        });
    }

    #[test]
    fn empty_batch_is_free() {
        let lattice = RotatedLattice::new(3);
        std::thread::scope(|scope| {
            let mut pool = DecodePool::spawn(scope, &lattice, 2);
            assert!(pool.decode(Vec::new()).is_empty());
            assert_eq!(pool.stats().batches, 0);
            drop(pool);
        });
    }
}
