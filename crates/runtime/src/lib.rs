//! `quest-runtime`: a concurrent, sharded simulation runtime for
//! multi-tile QuEST systems.
//!
//! The single-threaded [`MultiTileSystem`](quest_core::MultiTileSystem)
//! drives every tile from one loop over one tableau. This crate executes
//! the same physics as a concurrent engine shaped like the paper's
//! control processor (§4.2):
//!
//! * **Shard workers** — one thread per shard, each owning a contiguous
//!   group of tiles, their MCEs, a tableau spanning only those tiles,
//!   and one RNG stream per tile derived from the master seed.
//! * **Master thread** — the caller's thread; dispatches workload
//!   operations downstream and collects syndromes upstream over bounded
//!   MPSC channels whose messages are
//!   [`Packet`](quest_core::network::Packet)-shaped, so bus and packet
//!   accounting fall out of real message flow.
//! * **Global-decode pool** — a shared worker pool resolving each
//!   cycle's escalations as one batch through
//!   [`quest_surface::decoder::batch`].
//! * **Cycle barriers** — every QECC cycle is a barrier round
//!   (dispatch → shard compute → syndrome flush → batch decode →
//!   correction delivery), so transversal cross-tile CNOTs always see
//!   settled frames, exactly like the single-threaded loop.
//!
//! Instruction delivery goes through the shared
//! [`quest_core::DeliveryEngine`]: the master thread
//! performs the bus-accounting half and the owning shard the
//! pipeline-execution half, so all three Figure-14
//! [`DeliveryMode`]s run sharded with the exact ledger of the
//! single-threaded systems.
//!
//! # Determinism
//!
//! For a fixed master seed, a run's [`RunReport`] — logical outcomes,
//! per-class bus ledger, decode counters — is bit-identical for every
//! shard count, and identical to the single-threaded reference
//! ([`run_reference`]): each tile consumes only its own RNG stream in a
//! fixed order, corrections always land before the next cycle, and bus
//! tallies are order-invariant sums.
//!
//! # Fault injection and recovery
//!
//! A spec may carry a [`FaultPlan`]: dropped/corrupted bus packets
//! (CRC-checked, repaired by bounded retransmission accounted under
//! [`Traffic::Retransmit`](quest_core::Traffic)), MCE stalls that
//! degrade a tile to software-managed delivery for a quarantine window,
//! and scheduled decode-worker/shard-thread deaths the runtime contains
//! (supervisor respawn, or a clean typed [`RuntimeError`]). Fault
//! decisions are pure functions of the master seed and per-tile
//! counters, so the determinism guarantee extends to faulty runs: same
//! seed + same plan ⇒ bit-identical [`RunReport`] (including its
//! [`RecoveryStats`]) at every shard count. An empty plan is a strict
//! no-op.
//!
//! # Example
//!
//! ```
//! use quest_runtime::{Runtime, WorkloadSpec};
//!
//! let spec = WorkloadSpec::memory(3, 4, 2, 1e-3, 7, 10);
//! let report = Runtime::new().run(&spec)?;
//! assert_eq!(report.outcomes.len(), 4);
//! // Same seed, different sharding: identical physics and accounting.
//! let spec1 = WorkloadSpec { shards: 1, ..spec };
//! assert_eq!(Runtime::new().run(&spec1)?.report, report.report);
//! # Ok::<(), quest_runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
// The panic-free contract (PR 2/3), enforced three ways: quest-lint's
// QL01 rule, this clippy deny, and the runtime's catch_unwind
// containment as a last resort. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod control;
pub mod error;
mod message;
mod pool;
pub mod reference;
pub mod snapshot;
pub mod spec;
pub mod stats;

mod shard;

pub use control::{CancelToken, RunControl, RunProgress};
pub use error::RuntimeError;
pub use pool::PoolStats;
pub use quest_core::tile::LogicalBasis;
pub use quest_core::{
    CostReport, DecoderChoice, DeliveryMode, FaultPlan, LinkFailure, RecoveryStats, RunReport,
    ShardPanicPlan,
};
pub use reference::run_reference;
pub use snapshot::{CheckpointSink, RunSnapshot, SNAPSHOT_VERSION};
pub use spec::{SpecError, WorkloadOp, WorkloadSpec, TABLE_DECODER_MAX_DISTANCE};
pub use stats::{PhaseTimings, RuntimeReport, RuntimeStats, ShardStats};

use message::{channel, DepthGauge, Envelope, Payload, Rx, Tx};
use pool::DecodePool;
use quest_core::network::{Network, PacketKind};
use quest_core::{DeliveryEngine, FaultSession, MasterController, Mce, MCE_IBUF_BYTES};
use quest_isa::LogicalInstr;
use quest_surface::decoder::batch::DecodeJob;
use quest_surface::{RotatedLattice, StabKind};
use shard::ShardWorker;
use snapshot::ShardSnapshot;
use stats::Stopwatch;
use std::sync::Arc;

/// Per-direction bound of each master ↔ shard channel. Deep enough that
/// neither side blocks in the steady state (a shard enqueues at most two
/// escalations per tile per cycle); shallow enough to be a real
/// backpressure bound.
const CHANNEL_BOUND: usize = 1024;

/// The concurrent runtime. Construction is cheap; threads live only for
/// the duration of [`Runtime::run`].
#[derive(Debug, Clone)]
pub struct Runtime {
    decode_workers: usize,
    fanout: usize,
}

impl Default for Runtime {
    fn default() -> Runtime {
        Runtime::new()
    }
}

impl Runtime {
    /// A runtime with a decode pool sized to the machine (capped at 4 —
    /// global decoding is a small fraction of cycle work).
    pub fn new() -> Runtime {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(2)
            .clamp(1, 4);
        Runtime {
            decode_workers: workers,
            fanout: 4,
        }
    }

    /// Overrides the decode-pool size, clamped to at least one worker
    /// (results are identical for any size; only throughput changes).
    pub fn with_decode_workers(mut self, workers: usize) -> Runtime {
        self.decode_workers = workers.max(1);
        self
    }

    /// Overrides the modelled interconnect tree fan-out, clamped to at
    /// least 2.
    pub fn with_fanout(mut self, fanout: usize) -> Runtime {
        self.fanout = fanout.max(2);
        self
    }

    /// Executes a workload and returns the unified [`RunReport`] plus
    /// runtime statistics.
    ///
    /// Equivalent to [`Runtime::run_controlled`] with an empty
    /// [`RunControl`] — no cancellation, no progress reporting.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if the spec fails
    /// [`WorkloadSpec::validate`], or when the spec's [`FaultPlan`]
    /// injects an unrecoverable failure mid-run — a bus link out of
    /// retries ([`RuntimeError::Link`]), a shard thread panicking
    /// ([`RuntimeError::ShardFailed`]) or the decode pool dying
    /// ([`RuntimeError::DecodePoolFailed`]). A validated spec never
    /// panics the engine; every failure is a typed error and all threads
    /// are joined before this returns.
    pub fn run(&self, spec: &WorkloadSpec) -> Result<RuntimeReport, RuntimeError> {
        self.run_controlled(spec, &RunControl::new())
    }

    /// Executes a workload under a [`RunControl`]: an optional
    /// [`CancelToken`] polled at every operation and QECC-cycle
    /// checkpoint, and an optional progress callback invoked after every
    /// cycle.
    ///
    /// `run_controlled` is re-entrant: a `Runtime` holds only
    /// configuration, so one value (or clones of it) can run many
    /// workloads concurrently from different threads — each run spawns,
    /// owns and joins its own shard workers and decode pool. The serving
    /// layer (`quest-serve`) leans on exactly this to execute many
    /// tenants' jobs on one fixed worker pool.
    ///
    /// The hooks are observers only: a run that completes returns a
    /// [`RunReport`] bit-identical to [`Runtime::run`]'s, regardless of
    /// how often the callback fires or how late an un-tripped token is
    /// checked.
    ///
    /// # Errors
    ///
    /// Everything [`Runtime::run`] returns, plus
    /// [`RuntimeError::Cancelled`] when the token trips mid-run: the
    /// run winds down at the next checkpoint with every thread joined
    /// and reports how many cycles had completed.
    pub fn run_controlled(
        &self,
        spec: &WorkloadSpec,
        control: &RunControl<'_>,
    ) -> Result<RuntimeReport, RuntimeError> {
        self.run_inner(spec, control, None)
    }

    /// Resumes a checkpointed run from a [`RunSnapshot`] (taken by a
    /// [`CheckpointSink`] attached to an earlier attempt) and drives it
    /// to completion under `control`.
    ///
    /// The resumed run is bit-identical to the uninterrupted run of the
    /// snapshot's spec: every shard's MCEs, tableau and RNG streams, the
    /// master's bus/interconnect/fault accounting and the decode-cost
    /// ledger continue exactly where the snapshot froze them. Snapshots
    /// taken mid-resume (via another sink) compose — a run can be killed
    /// and resumed any number of times.
    ///
    /// # Errors
    ///
    /// Everything [`Runtime::run_controlled`] returns, plus
    /// [`RuntimeError::Protocol`] when the snapshot's version does not
    /// match this runtime's [`SNAPSHOT_VERSION`]. An armed fault that
    /// was not [disarmed](RunSnapshot::disarm_shard_panic) re-fires
    /// deterministically, exactly as it would have in the original run.
    pub fn resume(
        &self,
        snapshot: &RunSnapshot,
        control: &RunControl<'_>,
    ) -> Result<RuntimeReport, RuntimeError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(RuntimeError::Protocol {
                context: "snapshot resume",
                payload: format!(
                    "snapshot version {} but this runtime speaks {}",
                    snapshot.version, SNAPSHOT_VERSION
                ),
            });
        }
        if snapshot.shards.len() != snapshot.spec.shards {
            return Err(RuntimeError::Protocol {
                context: "snapshot resume",
                payload: format!(
                    "snapshot holds {} shard images for a {}-shard spec",
                    snapshot.shards.len(),
                    snapshot.spec.shards
                ),
            });
        }
        self.run_inner(&snapshot.spec, control, Some(snapshot))
    }

    fn run_inner(
        &self,
        spec: &WorkloadSpec,
        control: &RunControl<'_>,
        resume: Option<&RunSnapshot>,
    ) -> Result<RuntimeReport, RuntimeError> {
        spec.validate()?;
        let lattice = RotatedLattice::new(spec.distance);
        // One template MCE yields the microcode cycle length for the
        // software baseline's per-cycle bus accounting.
        let cycle_len = Mce::new(&lattice, MCE_IBUF_BYTES).microcode().cycle_len();

        std::thread::scope(|scope| {
            // Wire one bounded channel pair per shard and spawn workers.
            let mut down_txs: Vec<Tx<Envelope>> = Vec::with_capacity(spec.shards);
            let mut up_rxs: Vec<Rx<Envelope>> = Vec::with_capacity(spec.shards);
            let mut down_gauges: Vec<DepthGauge> = Vec::with_capacity(spec.shards);
            let mut up_gauges: Vec<DepthGauge> = Vec::with_capacity(spec.shards);
            for s in 0..spec.shards {
                let (down_tx, down_rx, down_gauge) = channel(CHANNEL_BOUND);
                let (up_tx, up_rx, up_gauge) = channel(CHANNEL_BOUND);
                let panic_after = spec
                    .faults
                    .shard_panic
                    .and_then(|p| (p.shard == s).then_some(p.after_cycles));
                match resume {
                    Some(snap) => {
                        let worker = ShardWorker::from_snapshot(
                            s,
                            spec.tile_range(s),
                            spec.error_rate,
                            spec.delivery,
                            snap.shards[s].clone(),
                            down_rx,
                            up_tx,
                            panic_after,
                        );
                        scope.spawn(move || worker.run());
                    }
                    None => {
                        let worker = ShardWorker::new(
                            s,
                            spec.tile_range(s),
                            &lattice,
                            spec.error_rate,
                            spec.delivery,
                            spec.seed,
                            down_rx,
                            up_tx,
                            panic_after,
                        );
                        scope.spawn(move || worker.run());
                    }
                }
                down_txs.push(down_tx);
                up_rxs.push(up_rx);
                down_gauges.push(down_gauge);
                up_gauges.push(up_gauge);
            }
            let pool = DecodePool::spawn(scope, &lattice, spec.decoder, self.decode_workers);

            // Accounting state either starts fresh or continues exactly
            // where the snapshot froze it; everything else (threads,
            // channels, pool) is rebuilt the same way for both paths.
            let mut master = Master {
                spec,
                control,
                cycles_total: spec.total_cycles(),
                engine: resume.map_or_else(|| DeliveryEngine::new(spec.delivery), |r| r.engine),
                // Degraded tiles fall back to software-managed delivery:
                // their QECC stream crosses the bus like the baseline's.
                degraded_engine: resume.map_or_else(
                    || DeliveryEngine::new(DeliveryMode::SoftwareBaseline),
                    |r| r.degraded_engine,
                ),
                faults: resume.map_or_else(
                    || FaultSession::new(spec.faults, spec.seed, spec.tiles),
                    |r| r.faults.clone(),
                ),
                kernel: spec.kernel.clone().into(),
                filled: resume.map_or_else(|| vec![false; spec.tiles], |r| r.filled.clone()),
                num_qubits: lattice.num_qubits(),
                cycle_len,
                controller: resume.map_or_else(
                    || MasterController::with_decoder(spec.decoder),
                    |r| r.controller.clone(),
                ),
                network: resume.map_or_else(
                    || Network::new(spec.tiles, self.fanout),
                    |r| r.network.clone(),
                ),
                pool,
                down_txs,
                up_rxs,
                shard_stats: resume.map_or_else(
                    || {
                        (0..spec.shards)
                            .map(|s| {
                                let range = spec.tile_range(s);
                                ShardStats {
                                    shard: s,
                                    first_tile: range.start,
                                    tiles: range.len(),
                                    ..ShardStats::default()
                                }
                            })
                            .collect()
                    },
                    |r| r.shard_stats.clone(),
                ),
                outcomes: resume.map_or_else(Vec::new, |r| r.outcomes.clone()),
                qecc_cycles: resume.map_or(0, |r| r.qecc_cycles),
                local_decodes: 0,
                phases: PhaseTimings::default(),
                resume_op: resume.map_or(0, |r| r.op_index),
                resume_cycles: resume.map_or(0, |r| r.cycles_into_op),
                pool_stats_base: resume.map_or_else(PoolStats::default, |r| r.pool_stats),
                pool_cost_base: resume.map_or_else(CostReport::default, |r| r.pool_cost),
            };
            // On error, dropping the master closes every channel: shard
            // workers see the disconnect and exit cleanly (they never
            // unwind), the pool drains and stops, and the scope joins
            // everything — a typed error, never a hang or abort.
            master.execute()?;
            Ok(master.report(&down_gauges, &up_gauges))
        })
    }
}

/// Master-thread state for one run.
struct Master<'a, 'scope, 'env> {
    spec: &'a WorkloadSpec,
    /// Cooperative cancellation and progress hooks for this run.
    control: &'a RunControl<'a>,
    /// Total QECC cycles the spec runs (progress denominator).
    cycles_total: u64,
    engine: DeliveryEngine,
    /// Software-baseline engine accounting quarantined tiles' cycles.
    degraded_engine: DeliveryEngine,
    /// Fault injection and recovery state (master-owned, so fault
    /// decisions are independent of sharding and thread scheduling).
    faults: FaultSession,
    /// The shared distillation kernel, shipped to shards by reference.
    kernel: Arc<[LogicalInstr]>,
    /// Per-tile "kernel block resident in the tile's cache" flags.
    filled: Vec<bool>,
    num_qubits: usize,
    cycle_len: usize,
    controller: MasterController,
    network: Network,
    pool: DecodePool<'scope, 'env>,
    down_txs: Vec<Tx<Envelope>>,
    up_rxs: Vec<Rx<Envelope>>,
    shard_stats: Vec<ShardStats>,
    outcomes: Vec<(usize, bool)>,
    qecc_cycles: u64,
    local_decodes: u64,
    phases: PhaseTimings,
    /// Resume position: index of the op (always a `Cycles` op, or 0 on a
    /// fresh run) execution starts at, and how many of its cycles the
    /// snapshot already completed.
    resume_op: usize,
    resume_cycles: u64,
    /// Decode-pool counters inherited from the run(s) before the
    /// snapshot; the live pool only sees post-resume work, so reported
    /// totals and the fault layer's kill threshold add these baselines.
    pool_stats_base: PoolStats,
    pool_cost_base: CostReport,
}

impl Master<'_, '_, '_> {
    /// One reliable transfer of `bytes` to or from `tile`: mints the
    /// interconnect packets, rolls the fault layer, and accounts any
    /// retransmissions on both the interconnect and the bus ledger
    /// ([`Traffic::Retransmit`](quest_core::Traffic)).
    ///
    /// With an empty fault plan this is exactly the pre-fault-layer
    /// `network.send` — a strict no-op on every counter.
    fn deliver(&mut self, tile: usize, bytes: u64, kind: PacketKind) -> Result<(), RuntimeError> {
        if bytes == 0 {
            return Ok(());
        }
        self.network.send(tile, bytes, kind);
        let delivery = self.faults.transfer(tile, bytes, kind)?;
        if delivery.retransmissions > 0 {
            self.controller
                .note_retransmission(delivery.retransmitted_bytes);
            for _ in 0..delivery.retransmissions {
                self.network.send(tile, bytes, kind);
            }
        }
        Ok(())
    }

    /// The typed error for a dead shard worker, harvesting the worker's
    /// dying `Failed` report for a precise detail when one is in flight.
    fn shard_failed(&mut self, shard: usize) -> RuntimeError {
        loop {
            match self.up_rxs[shard].recv() {
                Ok(env) => {
                    if let Payload::Failed { shard: s, detail } = env.payload {
                        return RuntimeError::ShardFailed { shard: s, detail };
                    }
                    // Drain whatever else was in flight ahead of it.
                }
                Err(_) => {
                    return RuntimeError::ShardFailed {
                        shard,
                        detail: "worker exited without a failure report".into(),
                    }
                }
            }
        }
    }

    /// Receives one upstream envelope, converting a worker death — a
    /// `Failed` report or a bare disconnect — into the typed error.
    fn recv_up(&mut self, shard: usize) -> Result<Envelope, RuntimeError> {
        match self.up_rxs[shard].recv() {
            Ok(env) => {
                self.shard_stats[shard].upstream_messages += 1;
                if let Payload::Failed { shard: s, detail } = env.payload {
                    return Err(RuntimeError::ShardFailed { shard: s, detail });
                }
                Ok(env)
            }
            Err(_) => Err(RuntimeError::ShardFailed {
                shard,
                detail: "worker exited without a failure report".into(),
            }),
        }
    }

    /// Sends one downstream envelope, minting interconnect packets for
    /// its wire bytes against the destination tile and rolling the fault
    /// layer for the transfer.
    fn send_down(&mut self, shard: usize, tile: usize, env: Envelope) -> Result<(), RuntimeError> {
        self.deliver(tile, env.wire_bytes, env.kind)?;
        self.down_txs[shard]
            .send(env)
            .map_err(|_| self.shard_failed(shard))
    }

    /// The typed error for a cooperative cancellation observed at a
    /// checkpoint. Dropping the master afterwards closes every channel,
    /// so shards and the pool wind down exactly as on any other error.
    fn cancelled(&self) -> RuntimeError {
        RuntimeError::Cancelled {
            cycles_done: self.qecc_cycles,
        }
    }

    fn execute(&mut self) -> Result<(), RuntimeError> {
        for (op_index, op) in self.spec.ops.iter().enumerate() {
            // On a resumed run, everything before the snapshot position
            // already happened — its effects live in the restored state.
            if op_index < self.resume_op {
                continue;
            }
            // Operation-boundary checkpoint: a tripped token strands at
            // most one op (cycles have their own per-cycle checkpoint).
            if self.control.cancelled() {
                return Err(self.cancelled());
            }
            match *op {
                WorkloadOp::Prep { tile, basis } => {
                    let start = Stopwatch::start();
                    let shard = self.spec.shard_of(tile);
                    self.send_down(
                        shard,
                        tile,
                        Envelope::control(PacketKind::Downstream, Payload::Prep { tile, basis }),
                    )?;
                    self.phases.logical += start.elapsed();
                }
                WorkloadOp::Cnot { control, target } => {
                    let start = Stopwatch::start();
                    let shard = self.spec.shard_of(control);
                    // Two sync tokens coordinate the gate — the only bus
                    // cost of a transversal CNOT, exactly as in the
                    // single-threaded master.
                    self.controller.sync_remote(0);
                    self.controller.sync_remote(0);
                    self.deliver(
                        control,
                        quest_core::master::SYNC_TOKEN_BYTES,
                        PacketKind::Downstream,
                    )?;
                    self.deliver(
                        target,
                        quest_core::master::SYNC_TOKEN_BYTES,
                        PacketKind::Downstream,
                    )?;
                    self.down_txs[shard]
                        .send(Envelope::control(
                            PacketKind::Downstream,
                            Payload::Cnot { control, target },
                        ))
                        .map_err(|_| self.shard_failed(shard))?;
                    self.phases.logical += start.elapsed();
                }
                WorkloadOp::Logical { tile, instr, class } => {
                    let start = Stopwatch::start();
                    let shard = self.spec.shard_of(tile);
                    // Master half: bus accounting; shard half: delivery.
                    self.engine.dispatch_remote(&mut self.controller, class);
                    self.send_down(
                        shard,
                        tile,
                        Envelope::instructions(
                            self.engine.instr_bytes(),
                            Payload::Logical { tile, instr },
                        ),
                    )?;
                    self.phases.logical += start.elapsed();
                }
                WorkloadOp::KernelReplay { tile, replays } => {
                    let start = Stopwatch::start();
                    let shard = self.spec.shard_of(tile);
                    // Master half: fill-once / per-replay accounting. The
                    // envelope's wire bytes are exactly the bytes this op
                    // put on the bus ledger.
                    let before = self.controller.bus().total();
                    let newly_filled = self.engine.kernel_remote(
                        &mut self.controller,
                        self.kernel.len(),
                        replays,
                        self.filled[tile],
                    );
                    self.filled[tile] |= newly_filled;
                    let wire_bytes = self.controller.bus().total() - before;
                    self.send_down(
                        shard,
                        tile,
                        Envelope::instructions(
                            wire_bytes,
                            Payload::Kernel {
                                tile,
                                kernel: Arc::clone(&self.kernel),
                                replays,
                            },
                        ),
                    )?;
                    self.phases.logical += start.elapsed();
                }
                WorkloadOp::Sync { tile } => {
                    let start = Stopwatch::start();
                    // A sync token has no shard-side effect; it is pure
                    // master-side bus traffic.
                    self.controller.sync_remote(0);
                    self.deliver(
                        tile,
                        quest_core::master::SYNC_TOKEN_BYTES,
                        PacketKind::Downstream,
                    )?;
                    self.phases.logical += start.elapsed();
                }
                WorkloadOp::Cycles(n) => {
                    // A snapshot mid-op resumes inside the op: the first
                    // `resume_cycles` iterations already completed.
                    let done = if op_index == self.resume_op {
                        self.resume_cycles.min(n)
                    } else {
                        0
                    };
                    for k in done..n {
                        if self.control.cancelled() {
                            return Err(self.cancelled());
                        }
                        self.run_cycle()?;
                        self.checkpoint(op_index, k + 1)?;
                        self.control.report(self.qecc_cycles, self.cycles_total);
                    }
                }
                WorkloadOp::MeasureZ { tile } => {
                    let start = Stopwatch::start();
                    let shard = self.spec.shard_of(tile);
                    self.send_down(
                        shard,
                        tile,
                        Envelope::control(PacketKind::Downstream, Payload::MeasureZ { tile }),
                    )?;
                    // The upstream channel is drained to its barrier
                    // between cycles, so the next message is the outcome.
                    let env = self.recv_up(shard)?;
                    match env.payload {
                        Payload::Outcome {
                            tile,
                            value,
                            final_events,
                        } => {
                            // Residual final-round events cross the bus
                            // upstream, like any other syndrome traffic.
                            self.deliver(tile, env.wire_bytes, env.kind)?;
                            self.controller.note_readout_syndrome(final_events);
                            self.outcomes.push((tile, value));
                        }
                        other => {
                            return Err(RuntimeError::Protocol {
                                context: "readout (awaiting outcome)",
                                payload: format!("{other:?}"),
                            })
                        }
                    }
                    self.phases.readout += start.elapsed();
                }
            }
        }
        for shard in 0..self.spec.shards {
            self.down_txs[shard]
                .send(Envelope::control(PacketKind::Downstream, Payload::Shutdown))
                .map_err(|_| self.shard_failed(shard))?;
        }
        // Collect each worker's sign-off: the local-decode counters only
        // the shard threads could observe.
        for shard in 0..self.spec.shards {
            let env = self.recv_up(shard)?;
            match env.payload {
                Payload::Closing {
                    shard: s,
                    local_decodes,
                } => {
                    debug_assert_eq!(s, shard);
                    self.local_decodes += local_decodes;
                }
                other => {
                    return Err(RuntimeError::Protocol {
                        context: "shutdown (awaiting sign-off)",
                        payload: format!("{other:?}"),
                    })
                }
            }
        }
        Ok(())
    }

    /// Pool counters as the full run sees them: the pre-snapshot
    /// baseline plus whatever the live pool has done since.
    fn merged_pool_stats(&self) -> PoolStats {
        let live = self.pool.stats();
        PoolStats {
            workers: live.workers,
            batches: self.pool_stats_base.batches + live.batches,
            jobs: self.pool_stats_base.jobs + live.jobs,
            max_batch_jobs: self.pool_stats_base.max_batch_jobs.max(live.max_batch_jobs),
            deaths: self.pool_stats_base.deaths + live.deaths,
            respawns: self.pool_stats_base.respawns + live.respawns,
        }
    }

    /// The run's decode-cost ledger: baseline merged with the live pool
    /// (merge is order-invariant sums and maxes, so splitting a run at
    /// any cycle leaves the final ledger bit-identical).
    fn merged_pool_cost(&self) -> CostReport {
        let mut cost = self.pool_cost_base;
        cost.merge(&self.pool.cost());
        cost
    }

    /// Deposits a [`RunSnapshot`] into the attached sink when the
    /// barrier after this cycle matches its cadence (or was forced).
    ///
    /// The shard-state collection rides the regular channels as
    /// zero-byte control envelopes *after* the cycle's corrections, so
    /// FIFO order guarantees the snapshot sees settled frames; nothing
    /// here touches the network, fault or bus ledgers — checkpointing is
    /// a pure observer.
    fn checkpoint(&mut self, op_index: usize, cycles_into_op: u64) -> Result<(), RuntimeError> {
        let Some(sink) = self.control.checkpoints() else {
            return Ok(());
        };
        if !sink.wants(self.qecc_cycles) {
            return Ok(());
        }
        for shard in 0..self.spec.shards {
            self.down_txs[shard]
                .send(Envelope::control(PacketKind::Downstream, Payload::Snapshot))
                .map_err(|_| self.shard_failed(shard))?;
        }
        let mut shards: Vec<ShardSnapshot> = Vec::with_capacity(self.spec.shards);
        for shard in 0..self.spec.shards {
            // Receive directly (not recv_up): observer traffic must not
            // perturb even the upstream-message statistics.
            let env = match self.up_rxs[shard].recv() {
                Ok(env) => env,
                Err(_) => {
                    return Err(RuntimeError::ShardFailed {
                        shard,
                        detail: "worker exited without a failure report".into(),
                    })
                }
            };
            match env.payload {
                Payload::ShardState { shard: s, state } => {
                    debug_assert_eq!(s, shard);
                    shards.push(*state);
                }
                Payload::Failed { shard: s, detail } => {
                    return Err(RuntimeError::ShardFailed { shard: s, detail })
                }
                other => {
                    return Err(RuntimeError::Protocol {
                        context: "checkpoint (awaiting shard state)",
                        payload: format!("{other:?}"),
                    })
                }
            }
        }
        sink.store(RunSnapshot {
            version: SNAPSHOT_VERSION,
            spec: self.spec.clone(),
            op_index,
            cycles_into_op,
            qecc_cycles: self.qecc_cycles,
            engine: self.engine,
            degraded_engine: self.degraded_engine,
            faults: self.faults.clone(),
            filled: self.filled.clone(),
            controller: self.controller.clone(),
            network: self.network.clone(),
            outcomes: self.outcomes.clone(),
            shard_stats: self.shard_stats.clone(),
            pool_stats: self.merged_pool_stats(),
            pool_cost: self.merged_pool_cost(),
            shards,
        });
        Ok(())
    }

    /// One barrier round: broadcast the cycle, collect every shard's
    /// syndromes up to its barrier, decode the batch in the pool, push
    /// corrections back down.
    fn run_cycle(&mut self) -> Result<(), RuntimeError> {
        let start = Stopwatch::start();
        self.faults.begin_cycle(self.qecc_cycles);
        for shard in 0..self.spec.shards {
            self.down_txs[shard]
                .send(Envelope::control(PacketKind::Downstream, Payload::Cycle))
                .map_err(|_| self.shard_failed(shard))?;
        }

        let mut batch: Vec<(usize, StabKind, DecodeJob)> = Vec::new();
        for shard in 0..self.spec.shards {
            loop {
                let env = self.recv_up(shard)?;
                match env.payload {
                    Payload::Syndrome {
                        tile,
                        kind,
                        escalation,
                    } => {
                        // Real message flow drives the ledgers: upstream
                        // packets on the interconnect, syndrome bytes and
                        // a global decode on the master's bus counters.
                        self.deliver(tile, env.wire_bytes, env.kind)?;
                        self.controller
                            .note_escalation(escalation.events.len() as u64);
                        self.shard_stats[shard].escalations += 1;
                        batch.push((
                            tile,
                            kind,
                            DecodeJob {
                                kind,
                                events: escalation.events,
                            },
                        ));
                    }
                    Payload::CycleDone { shard: s } => {
                        debug_assert_eq!(s, shard);
                        self.shard_stats[shard].cycles += 1;
                        break;
                    }
                    other => {
                        return Err(RuntimeError::Protocol {
                            context: "cycle barrier",
                            payload: format!("{other:?}"),
                        })
                    }
                }
            }
        }
        // Under the software baseline every tile's cycle crosses the
        // bus; a quarantined tile is accounted the same way — the
        // watchdog degraded it to software-managed delivery, so its
        // QECC stream is back on the bus for the quarantine window.
        for tile in 0..self.spec.tiles {
            let engine = if self.faults.tile_degraded(tile) {
                &self.degraded_engine
            } else {
                &self.engine
            };
            engine.account_cycle(&mut self.controller, self.num_qubits, self.cycle_len);
        }
        self.qecc_cycles += 1;
        self.phases.cycles += start.elapsed();

        let start = Stopwatch::start();
        // The scheduled decode-worker kill fires on the batch that
        // crosses the job threshold — a pure function of the (shard-count
        // invariant) escalation totals, so faulty runs stay reproducible.
        let kill_one = !batch.is_empty()
            && self.faults.take_decode_kill(
                self.pool_stats_base.jobs + self.pool.stats().jobs + batch.len() as u64,
            );
        let mut corrections = self.pool.decode(batch, kill_one)?;
        // Workers finish chunks in arbitrary order; fix a canonical
        // (tile, kind) order so the fault layer's per-lane rolls — and
        // with them the whole faulty run — never depend on pool timing.
        corrections.sort_by_key(|&(tile, kind, _)| {
            (
                tile,
                match kind {
                    StabKind::Z => 0u8,
                    StabKind::X => 1u8,
                },
            )
        });
        for (tile, kind, flips) in corrections {
            let shard = self.spec.shard_of(tile);
            let env = Envelope::correction(tile, kind, flips.into_iter().collect());
            self.send_down(shard, tile, env)?;
        }
        self.phases.decode += start.elapsed();
        Ok(())
    }

    fn report(mut self, down_gauges: &[DepthGauge], up_gauges: &[DepthGauge]) -> RuntimeReport {
        for (s, stats) in self.shard_stats.iter_mut().enumerate() {
            stats.max_downstream_depth = down_gauges[s].high_water();
            stats.max_upstream_depth = up_gauges[s].high_water();
        }
        let escalations = self.shard_stats.iter().map(|s| s.escalations).sum();
        // The pool's merged decode-cost ledger must be read before the
        // shutdown consumes the pool. The master's own backend never ran
        // a decode (escalations all go through the pool), so the pool
        // ledger — merged onto any pre-resume baseline — IS the run's
        // global decode cost.
        let decode_cost = self.merged_pool_cost();
        let pool_stats = self.merged_pool_stats();
        let live_stats = self.pool.shutdown();
        debug_assert_eq!(live_stats.jobs + self.pool_stats_base.jobs, pool_stats.jobs);
        self.faults
            .note_pool_recoveries(pool_stats.deaths, pool_stats.respawns);
        RuntimeReport {
            report: RunReport {
                delivery: self.spec.delivery,
                outcomes: self.outcomes,
                bus: *self.controller.bus(),
                qecc_cycles: self.qecc_cycles,
                local_decodes: self.local_decodes,
                escalations,
                master: self.controller.stats(),
                decode_cost,
                recovery: self.faults.stats(),
            },
            stats: RuntimeStats {
                shards: self.shard_stats,
                decode: pool_stats,
                master: self.controller.stats(),
                packets_sent: self.network.packets_sent(),
                wire_bytes: self.network.total_bytes(),
                phases: self.phases,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_memory_reads_all_zero() {
        let spec = WorkloadSpec::memory(3, 4, 2, 0.0, 11, 5);
        let report = Runtime::new().run(&spec).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        assert!(report.logical_ok());
        assert_eq!(report.bus_bytes(), 0, "noiseless memory moves no bus bytes");
        assert_eq!(report.qecc_cycles, 5);
        assert_eq!(report.local_decodes, 0);
        assert_eq!(report.escalations, 0);
        assert_eq!(report.stats.shards.len(), 2);
        assert!(report.stats.shards.iter().all(|s| s.cycles == 5));
    }

    #[test]
    fn bell_pairs_correlate_within_pairs() {
        let spec = WorkloadSpec::bell_pairs(3, 4, 2, 0.0, 3, 2).unwrap();
        let report = Runtime::new().run(&spec).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        for pair in 0..2 {
            let a = report.outcome(2 * pair).unwrap();
            let b = report.outcome(2 * pair + 1).unwrap();
            assert_eq!(a, b, "Bell pair {pair} decorrelated");
        }
        // Each CNOT costs exactly two 2-byte sync tokens on the bus; the
        // only other traffic is the readout itself (the |+_L⟩ tiles'
        // frozen projection syndrome ships upstream with the outcome).
        use quest_core::Traffic;
        assert_eq!(report.bus_bytes_of(Traffic::Sync), 2 * 4);
        assert_eq!(
            report.bus_bytes(),
            2 * 4 + report.bus_bytes_of(Traffic::Syndrome)
        );
    }

    #[test]
    fn cross_shard_cnot_is_a_typed_error() {
        let mut spec = WorkloadSpec::memory(3, 4, 4, 0.0, 1, 1);
        spec.ops.insert(
            1,
            WorkloadOp::Cnot {
                control: 0,
                target: 3,
            },
        );
        let err = Runtime::new().run(&spec).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Spec(SpecError::CnotCrossShard { .. })),
            "{err:?}"
        );
        assert!(err.to_string().contains("co-sharded"), "{err}");
    }

    #[test]
    fn noisy_run_reports_consistent_stats() {
        let spec = WorkloadSpec::memory(3, 6, 3, 5e-3, 23, 30);
        let report = Runtime::new().run(&spec).unwrap();
        let escalations: u64 = report.stats.shards.iter().map(|s| s.escalations).sum();
        assert_eq!(report.escalations, escalations);
        assert_eq!(report.stats.decode.jobs, escalations);
        assert_eq!(report.master.global_decodes, escalations);
        if escalations > 0 {
            assert!(report.bus_bytes() > 0);
            assert!(report.stats.packets_sent > 0);
            assert!(report.stats.escalation_rate() > 0.0);
        }
        assert!(report.stats.phases.total().as_nanos() > 0);
    }

    #[test]
    fn progress_reports_every_cycle_and_results_are_unchanged() {
        let spec = WorkloadSpec::memory(3, 4, 2, 1e-3, 7, 10);
        let seen = std::sync::Mutex::new(Vec::new());
        let callback = |p: RunProgress| {
            if let Ok(mut v) = seen.lock() {
                v.push((p.cycles_done, p.cycles_total));
            }
        };
        let control = RunControl::new().with_progress(&callback);
        let observed = Runtime::new().run_controlled(&spec, &control).unwrap();
        let plain = Runtime::new().run(&spec).unwrap();
        assert_eq!(
            observed.report, plain.report,
            "progress observation must not perturb the run"
        );
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen, (1..=10).map(|c| (c, 10)).collect::<Vec<_>>());
    }

    #[test]
    fn pre_tripped_token_cancels_before_any_cycle() {
        let spec = WorkloadSpec::memory(3, 4, 2, 1e-3, 7, 10);
        let token = CancelToken::new();
        token.cancel();
        let control = RunControl::new().with_cancel(&token);
        let err = Runtime::new().run_controlled(&spec, &control).unwrap_err();
        assert_eq!(err, RuntimeError::Cancelled { cycles_done: 0 });
        assert!(err.to_string().contains("cancelled"), "{err}");
    }

    #[test]
    fn mid_run_cancellation_stops_at_a_cycle_checkpoint() {
        let spec = WorkloadSpec::memory(3, 4, 2, 1e-3, 7, 50);
        let token = CancelToken::new();
        let trip = token.clone();
        // Trip the token from inside the progress callback: cycle 5's
        // report fires it, so the checkpoint before cycle 6 observes it.
        let callback = move |p: RunProgress| {
            if p.cycles_done == 5 {
                trip.cancel();
            }
        };
        let control = RunControl::new()
            .with_cancel(&token)
            .with_progress(&callback);
        let err = Runtime::new().run_controlled(&spec, &control).unwrap_err();
        assert_eq!(err, RuntimeError::Cancelled { cycles_done: 5 });
    }

    #[test]
    fn snapshot_version_mismatch_is_a_typed_error() {
        let spec = WorkloadSpec::memory(3, 2, 1, 1e-3, 5, 4);
        let sink = CheckpointSink::every(1);
        let control = RunControl::new().with_checkpoints(&sink);
        Runtime::new().run_controlled(&spec, &control).unwrap();
        let mut snap = sink.take().unwrap();
        snap.version = SNAPSHOT_VERSION + 1;
        let err = Runtime::new()
            .resume(&snap, &RunControl::new())
            .unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Protocol {
                    context: "snapshot resume",
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("snapshot"), "{err}");
    }

    #[test]
    fn invalid_runtime_knobs_are_clamped() {
        let spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        let report = Runtime::new()
            .with_decode_workers(0)
            .with_fanout(0)
            .run(&spec)
            .unwrap();
        assert!(report.logical_ok());
    }
}
