//! Deterministic checkpoint/resume: run snapshots and the sink that
//! collects them.
//!
//! At the end of a QECC cycle the runtime sits at a natural barrier:
//! every shard has flushed its syndromes, the decode pool has returned
//! the cycle's corrections, and the master has delivered them. A
//! [`RunSnapshot`] taken there captures *everything* a bit-identical
//! resume needs — the master's accounting (bus ledger, interconnect,
//! fault-lane counters), each shard's MCE tile state, stabilizer
//! tableau and per-tile RNG streams, and the decode pool's cost ledger
//! folded down to a baseline. [`Runtime::resume`](crate::Runtime::resume)
//! rebuilds the whole machine from one and continues as if the
//! interruption never happened: the resumed run's
//! [`RunReport`](quest_core::RunReport) is bit-identical to the
//! uninterrupted run's, fault injection included.
//!
//! Snapshots are in-memory values, never serialized: they are the unit
//! of crash-safety *within* a process (a serve worker retrying a job),
//! not a persistence format. `SNAPSHOT_VERSION` still guards the
//! boundary so a snapshot can never silently resume on a runtime whose
//! cycle protocol changed underneath it.
//!
//! Everything here is deterministic plain state — no clocks, no hashed
//! containers (QL02): a snapshot of a run is as reproducible as the run
//! itself.

use crate::pool::PoolStats;
use crate::spec::WorkloadSpec;
use crate::stats::ShardStats;
use quest_core::network::Network;
use quest_core::{CostReport, DeliveryEngine, FaultSession, MasterController, Mce};
use quest_stabilizer::{StdRng, Tableau};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Version tag stamped into every snapshot. Bump when the cycle
/// protocol or any captured field changes meaning; `resume` rejects a
/// mismatched snapshot with a typed error instead of producing a
/// silently-divergent run.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One shard worker's owned state at a cycle barrier: its MCEs (local
/// decoders, microcode counters, caches), its tableau slice of the
/// substrate, and the per-tile RNG streams with their word positions.
#[derive(Debug, Clone)]
pub(crate) struct ShardSnapshot {
    pub(crate) mces: Vec<Mce>,
    pub(crate) substrate: Tableau,
    pub(crate) rngs: Vec<StdRng>,
    pub(crate) cycles_done: u64,
}

/// A complete, resumable image of a run at a QECC-cycle barrier.
///
/// Opaque by design: consumers inspect position via accessors and hand
/// the value back to [`Runtime::resume`](crate::Runtime::resume). The
/// only mutations offered are the `disarm_*` methods a retry supervisor
/// uses to strip the one-shot fault that killed the previous attempt.
#[derive(Debug, Clone)]
pub struct RunSnapshot {
    pub(crate) version: u32,
    /// The workload, owned — a snapshot outlives the borrowed spec of
    /// the run that produced it.
    pub(crate) spec: WorkloadSpec,
    /// Resume position: the op being executed and how many of its
    /// cycles already completed (non-`Cycles` ops never checkpoint, so
    /// the position always points into a `Cycles` op or one past it).
    pub(crate) op_index: usize,
    pub(crate) cycles_into_op: u64,
    pub(crate) qecc_cycles: u64,
    pub(crate) engine: DeliveryEngine,
    pub(crate) degraded_engine: DeliveryEngine,
    /// Fault layer mid-run: per-lane attempt counters, quarantines,
    /// recovery stats, and the armed state of one-shot drills.
    pub(crate) faults: FaultSession,
    pub(crate) filled: Vec<bool>,
    pub(crate) controller: MasterController,
    pub(crate) network: Network,
    pub(crate) outcomes: Vec<(usize, bool)>,
    pub(crate) shard_stats: Vec<ShardStats>,
    /// Decode-pool counters accumulated up to the barrier (the live
    /// pool dies with the run; a resumed run spawns a fresh pool and
    /// merges onto this baseline).
    pub(crate) pool_stats: PoolStats,
    pub(crate) pool_cost: CostReport,
    pub(crate) shards: Vec<ShardSnapshot>,
}

impl RunSnapshot {
    /// The snapshot format version this value was taken with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// QECC cycles completed when the snapshot was taken — the cycles a
    /// resume inherits instead of re-executing.
    pub fn cycles_done(&self) -> u64 {
        self.qecc_cycles
    }

    /// The workload this snapshot belongs to (faults included, as
    /// currently armed).
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Strips the scheduled shard-thread panic so a resumed attempt
    /// does not die the same death. Pre-panic cycles are unaffected by
    /// an armed-but-unfired plan, so resuming a disarmed snapshot is
    /// bit-identical to a clean run of the disarmed spec.
    pub fn disarm_shard_panic(&mut self) {
        self.spec.faults.shard_panic = None;
    }

    /// Strips the scheduled decode-worker kill (both the plan and the
    /// session's armed state) so a resumed attempt cannot re-fire it.
    pub fn disarm_decode_kill(&mut self) {
        self.spec.faults.kill_decode_worker_after_jobs = None;
        self.faults.disarm_decode_kill();
    }
}

#[derive(Debug, Default)]
struct SinkInner {
    slot: Mutex<Option<RunSnapshot>>,
    forced: AtomicBool,
}

/// Receives checkpoints from a controlled run.
///
/// Attach one with
/// [`RunControl::with_checkpoints`](crate::RunControl::with_checkpoints):
/// at every QECC-cycle barrier matching the cadence (or after
/// [`force`](CheckpointSink::force)), the master deposits a fresh
/// [`RunSnapshot`] into the sink's single slot, replacing the previous
/// one. Clones share the slot, so a supervisor on another thread can
/// [`take`](CheckpointSink::take) the latest snapshot after the run
/// died.
///
/// The sink is an observer: a run that completes produces a
/// bit-identical report whether or not one is attached.
#[derive(Debug, Clone)]
pub struct CheckpointSink {
    inner: Arc<SinkInner>,
    /// Checkpoint cadence in QECC cycles; 0 = only forced checkpoints.
    cadence: u64,
}

impl Default for CheckpointSink {
    /// A sink that checkpoints every cycle.
    fn default() -> CheckpointSink {
        CheckpointSink::every(1)
    }
}

impl CheckpointSink {
    /// A sink that checkpoints every `cadence` QECC cycles. A cadence
    /// of 0 disables periodic checkpoints — only
    /// [`force`](CheckpointSink::force) triggers one.
    pub fn every(cadence: u64) -> CheckpointSink {
        CheckpointSink {
            inner: Arc::new(SinkInner::default()),
            cadence,
        }
    }

    /// Requests one checkpoint at the next cycle barrier, regardless of
    /// cadence. Callable from any thread holding a clone.
    pub fn force(&self) {
        self.inner.forced.store(true, Ordering::Release);
    }

    /// Removes and returns the latest snapshot, if any was deposited.
    pub fn take(&self) -> Option<RunSnapshot> {
        self.slot().take()
    }

    /// Clones out the latest snapshot without consuming it.
    pub fn latest(&self) -> Option<RunSnapshot> {
        self.slot().clone()
    }

    /// Whether the barrier after `cycle` completed cycles should
    /// checkpoint. Consumes a pending force request.
    pub(crate) fn wants(&self, cycle: u64) -> bool {
        let forced = self.inner.forced.swap(false, Ordering::AcqRel);
        forced || (self.cadence > 0 && cycle.is_multiple_of(self.cadence))
    }

    /// Deposits a snapshot, replacing any previous one.
    pub(crate) fn store(&self, snapshot: RunSnapshot) {
        *self.slot() = Some(snapshot);
    }

    fn slot(&self) -> std::sync::MutexGuard<'_, Option<RunSnapshot>> {
        // A panic while holding this lock leaves plain data behind;
        // recovering the guard is always safe.
        self.inner
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_and_force_drive_wants() {
        let sink = CheckpointSink::every(5);
        assert!(sink.wants(5));
        assert!(sink.wants(10));
        assert!(!sink.wants(7));
        sink.force();
        assert!(sink.wants(7), "force overrides cadence");
        assert!(!sink.wants(7), "force is one-shot");
    }

    #[test]
    fn zero_cadence_means_forced_only() {
        let sink = CheckpointSink::every(0);
        assert!(!sink.wants(0));
        assert!(!sink.wants(1));
        sink.force();
        assert!(sink.wants(1));
    }

    #[test]
    fn clones_share_the_slot() {
        let sink = CheckpointSink::default();
        let observer = sink.clone();
        assert!(observer.take().is_none());
        observer.force();
        assert!(sink.wants(3), "force travels through the clone");
    }
}
