//! Cooperative run control: cancellation tokens and progress reporting.
//!
//! [`Runtime::run_controlled`](crate::Runtime::run_controlled) threads a
//! [`RunControl`] through the master loop. The master checks the cancel
//! token at every operation boundary and every QECC cycle — the
//! checkpoints that bound how much work a cancellation can strand — and
//! reports progress after each cycle. Both hooks are pure observers: a
//! run that completes produces a bit-identical
//! [`RunReport`](quest_core::RunReport) whether or not anyone is
//! watching, because neither hook feeds anything back into the physics
//! or the accounting.

use crate::snapshot::CheckpointSink;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable cancellation flag.
///
/// Cloning yields another handle to the same flag, so a server (or a
/// client on another thread) can trip it while the runtime polls it at
/// its checkpoints. Cancellation is cooperative and one-way: once
/// tripped it stays tripped, and the in-flight run winds down cleanly
/// with [`RuntimeError::Cancelled`](crate::RuntimeError::Cancelled) —
/// every shard thread joined, no partial report.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A progress checkpoint, reported after every QECC cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// QECC cycles completed so far.
    pub cycles_done: u64,
    /// Total QECC cycles the spec will run
    /// ([`WorkloadSpec::total_cycles`](crate::WorkloadSpec::total_cycles)).
    pub cycles_total: u64,
}

impl RunProgress {
    /// Completed fraction in `[0, 1]` (1 for a zero-cycle spec).
    pub fn fraction(&self) -> f64 {
        if self.cycles_total == 0 {
            1.0
        } else {
            self.cycles_done as f64 / self.cycles_total as f64
        }
    }
}

/// Observer hooks for one run: an optional cancel token and an optional
/// progress callback. [`RunControl::default`] observes nothing —
/// [`Runtime::run`](crate::Runtime::run) is exactly
/// `run_controlled(spec, &RunControl::default())`.
#[derive(Default)]
pub struct RunControl<'a> {
    pub(crate) cancel: Option<&'a CancelToken>,
    pub(crate) progress: Option<&'a (dyn Fn(RunProgress) + Sync)>,
    pub(crate) checkpoints: Option<&'a CheckpointSink>,
}

impl<'a> RunControl<'a> {
    /// An empty control block (no cancellation, no progress).
    pub fn new() -> RunControl<'a> {
        RunControl::default()
    }

    /// Polls `token` at every checkpoint; a tripped token ends the run
    /// with [`RuntimeError::Cancelled`](crate::RuntimeError::Cancelled).
    pub fn with_cancel(mut self, token: &'a CancelToken) -> RunControl<'a> {
        self.cancel = Some(token);
        self
    }

    /// Calls `callback` after every QECC cycle with the run's progress.
    pub fn with_progress(mut self, callback: &'a (dyn Fn(RunProgress) + Sync)) -> RunControl<'a> {
        self.progress = Some(callback);
        self
    }

    /// Deposits a [`RunSnapshot`](crate::RunSnapshot) into `sink` at
    /// every QECC-cycle barrier matching the sink's cadence (or on a
    /// forced request). Like the other hooks, checkpointing is a pure
    /// observer: the run's report is bit-identical with or without it.
    pub fn with_checkpoints(mut self, sink: &'a CheckpointSink) -> RunControl<'a> {
        self.checkpoints = Some(sink);
        self
    }

    /// The attached checkpoint sink, if any.
    pub(crate) fn checkpoints(&self) -> Option<&CheckpointSink> {
        self.checkpoints
    }

    /// True when the attached token (if any) has been tripped.
    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }

    /// Reports one progress checkpoint to the attached callback, if any.
    pub(crate) fn report(&self, cycles_done: u64, cycles_total: u64) {
        if let Some(callback) = self.progress {
            callback(RunProgress {
                cycles_done,
                cycles_total,
            });
        }
    }
}

impl std::fmt::Debug for RunControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("cancel", &self.cancel.map(CancelToken::is_cancelled))
            .field("progress", &self.progress.map(|_| "fn"))
            .field("checkpoints", &self.checkpoints.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trips_once_and_stays() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        token.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn progress_fraction_handles_zero_cycles() {
        let p = RunProgress {
            cycles_done: 0,
            cycles_total: 0,
        };
        assert_eq!(p.fraction(), 1.0);
        let p = RunProgress {
            cycles_done: 3,
            cycles_total: 12,
        };
        assert!((p.fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn control_reports_through_callback() {
        let seen = std::sync::Mutex::new(Vec::new());
        let callback = |p: RunProgress| {
            if let Ok(mut v) = seen.lock() {
                v.push(p.cycles_done);
            }
        };
        let control = RunControl::new().with_progress(&callback);
        control.report(1, 4);
        control.report(2, 4);
        assert_eq!(*seen.lock().unwrap(), vec![1, 2]);
        assert!(!control.cancelled(), "no token attached");
        let token = CancelToken::new();
        let control = RunControl::new().with_cancel(&token);
        token.cancel();
        assert!(control.cancelled());
    }
}
