//! Shard worker: one thread owning a contiguous group of tiles.
//!
//! Each shard holds its own MCEs and its own stabilizer tableau spanning
//! only its tiles. That is physically exact as long as entanglement never
//! crosses a shard boundary — tiles start in product states and the spec
//! validator rejects cross-shard CNOTs — and it is also where the
//! runtime's speedup comes from: stabilizer simulation cost grows
//! quadratically with tableau width, so four shards do sixteen times less
//! tableau work than one.
//!
//! Every tile draws from its own RNG stream
//! ([`tile_seed`](quest_core::tile::tile_seed)), in the same fixed order
//! the single-threaded reference uses (noise layer, then the microcode
//! cycle), so a shard's outcomes do not depend on which thread runs it.
//!
//! The worker is panic-contained: its serve loop runs under
//! `catch_unwind`, and any panic (including the fault layer's scheduled
//! one) is converted into an upstream [`Payload::Failed`] report so the
//! master can shut the run down with a typed error instead of the
//! process aborting. A disconnected channel — the master bailed out
//! early — is a clean exit, never a panic.

use crate::message::{Envelope, Payload, Rx, Tx};
use crate::snapshot::ShardSnapshot;
use quest_core::network::PacketKind;
use quest_core::tile;
use quest_core::{decode_totals, DeliveryEngine, DeliveryMode, Mce, MCE_IBUF_BYTES};
use quest_stabilizer::{PauliChannel, SeedableRng, StdRng, Tableau};
use quest_surface::RotatedLattice;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Best-effort panic message for a `Failed` report.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Owned state of one shard worker.
pub(crate) struct ShardWorker {
    shard: usize,
    /// Global tile ids owned by this shard.
    tiles: Range<usize>,
    mces: Vec<Mce>,
    substrate: Tableau,
    noise: PauliChannel,
    engine: DeliveryEngine,
    rngs: Vec<StdRng>,
    rx: Rx<Envelope>,
    tx: Tx<Envelope>,
    /// Fault injection: panic once this many QECC cycles completed.
    panic_after_cycles: Option<u64>,
    cycles_done: u64,
}

impl ShardWorker {
    /// Builds a shard over `tiles` (global ids), with per-tile RNG
    /// streams derived from `master_seed`. A `panic_after_cycles`
    /// schedule makes the worker panic mid-run (containment drill).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        shard: usize,
        tiles: Range<usize>,
        lattice: &RotatedLattice,
        error_rate: f64,
        delivery: DeliveryMode,
        master_seed: u64,
        rx: Rx<Envelope>,
        tx: Tx<Envelope>,
        panic_after_cycles: Option<u64>,
    ) -> ShardWorker {
        let tile_width = lattice.num_qubits();
        let mces: Vec<Mce> = (0..tiles.len())
            .map(|local| Mce::with_offset(lattice, MCE_IBUF_BYTES, local * tile_width))
            .collect();
        let rngs = tiles
            .clone()
            .map(|t| StdRng::seed_from_u64(tile::tile_seed(master_seed, t as u64)))
            .collect();
        ShardWorker {
            shard,
            substrate: Tableau::new(tiles.len() * tile_width),
            tiles,
            mces,
            noise: PauliChannel::depolarizing(error_rate),
            engine: DeliveryEngine::new(delivery),
            rngs,
            rx,
            tx,
            panic_after_cycles,
            cycles_done: 0,
        }
    }

    /// Rebuilds a shard worker from a checkpoint: MCEs, tableau, RNG
    /// streams and the cycle counter resume exactly where the snapshot
    /// froze them; the stateless noise channel and delivery engine are
    /// rebuilt from the spec. The panic schedule compares for *equality*
    /// against the restored counter, so a drill that already fired
    /// before the snapshot can never re-fire on resume.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_snapshot(
        shard: usize,
        tiles: Range<usize>,
        error_rate: f64,
        delivery: DeliveryMode,
        state: ShardSnapshot,
        rx: Rx<Envelope>,
        tx: Tx<Envelope>,
        panic_after_cycles: Option<u64>,
    ) -> ShardWorker {
        ShardWorker {
            shard,
            tiles,
            mces: state.mces,
            substrate: state.substrate,
            noise: PauliChannel::depolarizing(error_rate),
            engine: DeliveryEngine::new(delivery),
            rngs: state.rngs,
            rx,
            tx,
            panic_after_cycles,
            cycles_done: state.cycles_done,
        }
    }

    fn local(&self, tile: usize) -> usize {
        debug_assert!(self.tiles.contains(&tile), "tile {tile} not on this shard");
        tile - self.tiles.start
    }

    /// Thread entry point: the serve loop under panic containment. A
    /// caught panic is reported upstream as [`Payload::Failed`]; the
    /// thread itself always returns normally, so the enclosing scope
    /// never re-panics.
    pub(crate) fn run(self) {
        let shard = self.shard;
        let tx = self.tx.clone();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(move || self.serve())) {
            let _ = tx.send(Envelope::control(
                PacketKind::Upstream,
                Payload::Failed {
                    shard,
                    detail: panic_detail(payload.as_ref()),
                },
            ));
        }
    }

    /// Message loop; returns when the master sends `Shutdown` or hangs
    /// up (a disconnect means the master already shut down, possibly on
    /// an error of its own — exiting quietly is the right response).
    fn serve(mut self) {
        loop {
            let env = match self.rx.recv() {
                Ok(env) => env,
                Err(_) => return,
            };
            match env.payload {
                Payload::Cycle => {
                    if self.run_cycle().is_err() {
                        return;
                    }
                }
                Payload::Prep { tile, basis } => {
                    let l = self.local(tile);
                    tile::prep_logical(
                        &mut self.mces[l],
                        basis,
                        &mut self.substrate,
                        &mut self.rngs[l],
                    );
                }
                Payload::Cnot { control, target } => {
                    let (lc, lt) = (self.local(control), self.local(target));
                    if let Err(e) =
                        tile::transversal_cnot_physics(&mut self.mces, &mut self.substrate, lc, lt)
                    {
                        // Validated specs make this unreachable; report it
                        // like a caught panic and stop serving.
                        let _ = self.tx.send(Envelope::control(
                            PacketKind::Upstream,
                            Payload::Failed {
                                shard: self.shard,
                                detail: format!("transversal CNOT rejected: {e}"),
                            },
                        ));
                        return;
                    }
                }
                Payload::Logical { tile, instr } => {
                    let l = self.local(tile);
                    self.engine.dispatch_local(&mut self.mces[l], instr);
                }
                Payload::Kernel {
                    tile,
                    kernel,
                    replays,
                } => {
                    let l = self.local(tile);
                    self.engine
                        .kernel_local(&mut self.mces[l], &kernel, replays);
                }
                Payload::Correction { tile, kind, flips } => {
                    let l = self.local(tile);
                    self.mces[l]
                        .decoder_mut(kind)
                        .apply_global_correction(flips);
                }
                Payload::MeasureZ { tile } => {
                    let l = self.local(tile);
                    let readout = self.mces[l]
                        .measure_logical_z_details(&mut self.substrate, &mut self.rngs[l]);
                    if self
                        .tx
                        .send(Envelope::outcome(tile, readout.value, readout.final_events))
                        .is_err()
                    {
                        return;
                    }
                }
                Payload::Snapshot => {
                    // Deep-clone the owned state at the barrier. The
                    // clone observes; nothing about the run changes.
                    let state = ShardSnapshot {
                        mces: self.mces.clone(),
                        substrate: self.substrate.clone(),
                        rngs: self.rngs.clone(),
                        cycles_done: self.cycles_done,
                    };
                    if self
                        .tx
                        .send(Envelope::control(
                            PacketKind::Upstream,
                            Payload::ShardState {
                                shard: self.shard,
                                state: Box::new(state),
                            },
                        ))
                        .is_err()
                    {
                        return;
                    }
                }
                Payload::Shutdown => {
                    // Sign off with the counters only this thread saw.
                    let (local_decodes, _) = decode_totals(&self.mces);
                    let _ = self.tx.send(Envelope::control(
                        PacketKind::Upstream,
                        Payload::Closing {
                            shard: self.shard,
                            local_decodes,
                        },
                    ));
                    return;
                }
                Payload::Syndrome { .. }
                | Payload::CycleDone { .. }
                | Payload::Outcome { .. }
                | Payload::Closing { .. }
                | Payload::ShardState { .. }
                | Payload::Failed { .. } => {
                    // An upstream payload reaching a shard is a protocol
                    // bug in the master; report it and stop serving
                    // instead of panicking the worker thread.
                    let _ = self.tx.send(Envelope::control(
                        PacketKind::Upstream,
                        Payload::Failed {
                            shard: self.shard,
                            detail: format!("upstream payload at a shard worker: {:?}", env.kind),
                        },
                    ));
                    return;
                }
            }
        }
    }

    /// One noisy QECC cycle over every owned tile: the noise layer and
    /// microcode cycle consume each tile's own stream in reference order;
    /// escalations the local decoders could not resolve ship upstream,
    /// then the cycle barrier. `Err` means the master hung up.
    fn run_cycle(&mut self) -> Result<(), ()> {
        if self.panic_after_cycles == Some(self.cycles_done) {
            // quest-lint: allow(QL01) -- deliberate fault injection: this drill exercises the catch_unwind containment in run()
            panic!(
                "injected shard-worker panic after {} cycles",
                self.cycles_done
            );
        }
        for (mce, rng) in self.mces.iter().zip(self.rngs.iter_mut()) {
            tile::noise_layer(mce, &self.noise, &mut self.substrate, rng);
        }
        for local in 0..self.mces.len() {
            self.mces[local].run_qecc_cycle(&mut self.substrate, &mut self.rngs[local]);
            for (kind, escalation) in self.mces[local].take_escalations() {
                let tile = self.tiles.start + local;
                self.tx
                    .send(Envelope::syndrome(tile, kind, escalation))
                    .map_err(|_| ())?;
            }
        }
        self.cycles_done += 1;
        self.tx
            .send(Envelope::control(
                PacketKind::Upstream,
                Payload::CycleDone { shard: self.shard },
            ))
            .map_err(|_| ())
    }
}
