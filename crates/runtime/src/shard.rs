//! Shard worker: one thread owning a contiguous group of tiles.
//!
//! Each shard holds its own MCEs and its own stabilizer tableau spanning
//! only its tiles. That is physically exact as long as entanglement never
//! crosses a shard boundary — tiles start in product states and the spec
//! validator rejects cross-shard CNOTs — and it is also where the
//! runtime's speedup comes from: stabilizer simulation cost grows
//! quadratically with tableau width, so four shards do sixteen times less
//! tableau work than one.
//!
//! Every tile draws from its own RNG stream
//! ([`tile_seed`](quest_core::tile::tile_seed)), in the same fixed order
//! the single-threaded reference uses (noise layer, then the microcode
//! cycle), so a shard's outcomes do not depend on which thread runs it.

use crate::message::{Envelope, Payload, Rx, Tx};
use quest_core::network::PacketKind;
use quest_core::tile;
use quest_core::{decode_totals, DeliveryEngine, DeliveryMode, Mce, MCE_IBUF_BYTES};
use quest_stabilizer::{PauliChannel, SeedableRng, StdRng, Tableau};
use quest_surface::RotatedLattice;
use std::ops::Range;

/// Owned state of one shard worker.
pub(crate) struct ShardWorker {
    shard: usize,
    /// Global tile ids owned by this shard.
    tiles: Range<usize>,
    mces: Vec<Mce>,
    substrate: Tableau,
    noise: PauliChannel,
    engine: DeliveryEngine,
    rngs: Vec<StdRng>,
    rx: Rx<Envelope>,
    tx: Tx<Envelope>,
}

impl ShardWorker {
    /// Builds a shard over `tiles` (global ids), with per-tile RNG
    /// streams derived from `master_seed`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        shard: usize,
        tiles: Range<usize>,
        lattice: &RotatedLattice,
        error_rate: f64,
        delivery: DeliveryMode,
        master_seed: u64,
        rx: Rx<Envelope>,
        tx: Tx<Envelope>,
    ) -> ShardWorker {
        let tile_width = lattice.num_qubits();
        let mces: Vec<Mce> = (0..tiles.len())
            .map(|local| Mce::with_offset(lattice, MCE_IBUF_BYTES, local * tile_width))
            .collect();
        let rngs = tiles
            .clone()
            .map(|t| StdRng::seed_from_u64(tile::tile_seed(master_seed, t as u64)))
            .collect();
        ShardWorker {
            shard,
            substrate: Tableau::new(tiles.len() * tile_width),
            tiles,
            mces,
            noise: PauliChannel::depolarizing(error_rate),
            engine: DeliveryEngine::new(delivery),
            rngs,
            rx,
            tx,
        }
    }

    fn local(&self, tile: usize) -> usize {
        debug_assert!(self.tiles.contains(&tile), "tile {tile} not on this shard");
        tile - self.tiles.start
    }

    /// Message loop; returns when the master sends `Shutdown`.
    pub(crate) fn run(mut self) {
        loop {
            let env = self.rx.recv();
            match env.payload {
                Payload::Cycle => self.run_cycle(),
                Payload::Prep { tile, basis } => {
                    let l = self.local(tile);
                    tile::prep_logical(
                        &mut self.mces[l],
                        basis,
                        &mut self.substrate,
                        &mut self.rngs[l],
                    );
                }
                Payload::Cnot { control, target } => {
                    let (lc, lt) = (self.local(control), self.local(target));
                    tile::transversal_cnot_physics(&mut self.mces, &mut self.substrate, lc, lt);
                }
                Payload::Logical { tile, instr } => {
                    let l = self.local(tile);
                    self.engine.dispatch_local(&mut self.mces[l], instr);
                }
                Payload::Kernel {
                    tile,
                    kernel,
                    replays,
                } => {
                    let l = self.local(tile);
                    self.engine
                        .kernel_local(&mut self.mces[l], &kernel, replays);
                }
                Payload::Correction { tile, kind, flips } => {
                    let l = self.local(tile);
                    self.mces[l]
                        .decoder_mut(kind)
                        .apply_global_correction(flips);
                }
                Payload::MeasureZ { tile } => {
                    let l = self.local(tile);
                    let readout = self.mces[l]
                        .measure_logical_z_details(&mut self.substrate, &mut self.rngs[l]);
                    self.tx
                        .send(Envelope::outcome(tile, readout.value, readout.final_events));
                }
                Payload::Shutdown => {
                    // Sign off with the counters only this thread saw.
                    let (local_decodes, _) = decode_totals(&self.mces);
                    self.tx.send(Envelope::control(
                        PacketKind::Upstream,
                        Payload::Closing {
                            shard: self.shard,
                            local_decodes,
                        },
                    ));
                    return;
                }
                Payload::Syndrome { .. }
                | Payload::CycleDone { .. }
                | Payload::Outcome { .. }
                | Payload::Closing { .. } => {
                    unreachable!("upstream payload arrived at a shard worker")
                }
            }
        }
    }

    /// One noisy QECC cycle over every owned tile: the noise layer and
    /// microcode cycle consume each tile's own stream in reference order;
    /// escalations the local decoders could not resolve ship upstream,
    /// then the cycle barrier.
    fn run_cycle(&mut self) {
        for (mce, rng) in self.mces.iter().zip(self.rngs.iter_mut()) {
            tile::noise_layer(mce, &self.noise, &mut self.substrate, rng);
        }
        for local in 0..self.mces.len() {
            self.mces[local].run_qecc_cycle(&mut self.substrate, &mut self.rngs[local]);
            for (kind, escalation) in self.mces[local].take_escalations() {
                let tile = self.tiles.start + local;
                self.tx.send(Envelope::syndrome(tile, kind, escalation));
            }
        }
        self.tx.send(Envelope::control(
            PacketKind::Upstream,
            Payload::CycleDone { shard: self.shard },
        ));
    }
}
