//! Shared helpers for the figure/table regeneration benches.
//!
//! Every bench target in `benches/` regenerates one table or figure of
//! the paper and prints the rows/series in a uniform format so
//! `cargo bench --workspace` produces a complete reproduction report.

#![forbid(unsafe_code)]

/// Formats a value in scientific notation (`1.23e6`).
pub fn sci(v: f64) -> String {
    format!("{v:.2e}")
}

/// Formats bytes/second with an SI unit.
pub fn bandwidth(v: f64) -> String {
    const UNITS: [(&str, f64); 5] = [
        ("PB/s", 1e15),
        ("TB/s", 1e12),
        ("GB/s", 1e9),
        ("MB/s", 1e6),
        ("KB/s", 1e3),
    ];
    for (unit, scale) in UNITS {
        if v >= scale {
            return format!("{:.2} {unit}", v / scale);
        }
    }
    format!("{v:.1} B/s")
}

/// Prints a bench header naming the figure/table being regenerated.
pub fn header(experiment: &str, claim: &str) {
    println!();
    println!("==== {experiment} ====");
    println!("paper claim: {claim}");
    println!();
}

/// Prints one aligned row of label/value columns.
pub fn row(cols: &[&str]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>18}")).collect();
    println!("{}", line.join(" "));
}

/// Order-of-magnitude (base-10 log) of a positive value.
pub fn orders(v: f64) -> f64 {
    v.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_units() {
        assert_eq!(bandwidth(1.5e13), "15.00 TB/s");
        assert_eq!(bandwidth(2e8), "200.00 MB/s");
        assert_eq!(bandwidth(10.0), "10.0 B/s");
    }

    #[test]
    fn orders_of_magnitude() {
        assert!((orders(1e8) - 8.0).abs() < 1e-12);
    }
}
