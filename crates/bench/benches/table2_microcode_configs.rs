//! Table 2 — optimal microcode configuration per syndrome design, with JJ
//! count and power dissipation.
//!
//! Paper's rows: Steane (148 µops) → 4-channel 1 Kb x 4, 170,048 JJs,
//! 2.1 µW; Shor (300) → 2-channel, 168,264 JJs, 1.1 µW; SC-17 (136) →
//! 8-channel, 163,472 JJs, 5.6 µW; SC-13 (147) → 4-channel, 170,048 JJs,
//! 2.1 µW.

use quest_bench::{header, row};
use quest_core::throughput::table2;
use quest_core::TechnologyParams;

fn main() {
    header(
        "Table 2: QECC microcode design (optimal configuration per syndrome)",
        "Steane→4ch, Shor→2ch, SC-17→8ch, SC-13→4ch with the JJ counts and power of the paper",
    );
    row(&[
        "syndrome",
        "instructions",
        "optimal config",
        "JJs",
        "power",
        "qubits/MCE",
    ]);
    let rows = table2(&TechnologyParams::PROJECTED_F);
    for r in &rows {
        row(&[
            r.design.name,
            &r.design.microcode_uops.to_string(),
            &r.config.to_string(),
            &r.jj_count.to_string(),
            &format!("{:.1} uW", r.power_w * 1e6),
            &r.qubits_serviced.to_string(),
        ]);
    }
    println!();
    let channels: Vec<usize> = rows.iter().map(|r| r.config.channels()).collect();
    let jjs: Vec<u64> = rows.iter().map(|r| r.jj_count).collect();
    println!("check: channel assignment {channels:?} (paper: [4, 2, 8, 4]); JJ counts {jjs:?}");
    assert_eq!(channels, vec![4, 2, 8, 4]);
    assert_eq!(jjs, vec![170_048, 168_264, 163_472, 170_048]);
}
