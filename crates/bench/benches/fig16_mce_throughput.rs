//! Figure 16 — MCE throughput (qubits serviced per MCE) for three qubit
//! technologies and four syndrome designs, each at its optimal microcode
//! configuration.
//!
//! Paper: technology parameters and syndrome design significantly affect
//! MCE throughput; slower qubits leave more time per instruction slot to
//! stream µops, so Experimental_S services the most qubits per MCE; the
//! compact SC-17 design sustains the most qubits at any technology.

use quest_bench::{header, row};
use quest_core::throughput::figure16_point;
use quest_core::TechnologyParams;
use quest_surface::SyndromeDesign;

fn main() {
    header(
        "Figure 16: qubits serviced per MCE (technology x syndrome design)",
        "throughput ordered Experimental_S > Projected_F > Projected_D; SC-17 highest per technology",
    );
    // Also print Table 1 (the input technology parameters) for reference.
    println!("Table 1 (inputs):");
    row(&[
        "parameter set",
        "t_prep",
        "t_single",
        "t_meas",
        "t_cnot",
        "T_ecc",
    ]);
    for t in TechnologyParams::ALL {
        row(&[
            t.name,
            &format!("{:.0} ns", t.t_prep * 1e9),
            &format!("{:.0} ns", t.t_single * 1e9),
            &format!("{:.0} ns", t.t_meas * 1e9),
            &format!("{:.0} ns", t.t_cnot * 1e9),
            &format!("{:.0} ns", t.t_ecc_round * 1e9),
        ]);
    }
    println!();
    row(&["syndrome", "Experimental_S", "Projected_F", "Projected_D"]);
    for design in &SyndromeDesign::ALL {
        let pts: Vec<usize> = TechnologyParams::ALL
            .iter()
            .map(|t| figure16_point(design, t))
            .collect();
        row(&[
            design.name,
            &pts[0].to_string(),
            &pts[1].to_string(),
            &pts[2].to_string(),
        ]);
        assert!(
            pts[0] > pts[1] && pts[1] > pts[2],
            "{}: throughput must fall with faster qubits: {pts:?}",
            design.name
        );
    }
    println!();
    // SC-17 dominates at every technology.
    for t in &TechnologyParams::ALL {
        let sc17 = figure16_point(&SyndromeDesign::SC17, t);
        for d in &SyndromeDesign::ALL {
            assert!(
                figure16_point(d, t) <= sc17,
                "{} beats SC-17 at {}",
                d.name,
                t.name
            );
        }
    }
    println!("check: SC-17 services the most qubits per MCE at every technology point");
}
