//! Figure 6 — ratio of QECC instructions to regular (algorithmic logical)
//! instructions across the workload suite.
//!
//! Paper: QECC needs an instruction overhead of 4 to 9 orders of
//! magnitude; ~99.999% of the stream is error correction. Our suite spans
//! ~7–8.5 orders (the paper's unpublished problem sizes reach smaller
//! low-end instances); the dominance claim (>10⁵, i.e. >99.999%) holds
//! for every workload.

use quest_bench::{header, orders, row, sci};
use quest_estimate::analyze_suite;

fn main() {
    header(
        "Figure 6: QECC-to-regular instruction ratio per workload",
        "QECC dominates by 4–9 orders of magnitude (≥99.999% of the stream)",
    );
    row(&["workload", "distance", "phys qubits", "ratio", "orders"]);
    let mut min_orders = f64::INFINITY;
    let mut max_orders: f64 = 0.0;
    for e in analyze_suite(1e-4) {
        let r = e.qecc_to_logical_ratio();
        min_orders = min_orders.min(orders(r));
        max_orders = max_orders.max(orders(r));
        row(&[
            e.workload.name,
            &e.distance.to_string(),
            &sci(e.physical_qubits),
            &sci(r),
            &format!("{:.1}", orders(r)),
        ]);
    }
    println!();
    println!(
        "check: ratios span 10^{min_orders:.1} – 10^{max_orders:.1} (paper: 10^4 – 10^9); \
         every workload exceeds 10^5 (the 99.999% claim)"
    );
    assert!(min_orders >= 5.0, "QECC does not dominate by 5 orders");
}
