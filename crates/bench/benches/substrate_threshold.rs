//! Substrate validation — the error-suppression threshold of the
//! simulated surface code.
//!
//! Not a paper figure, but the paper's load-bearing premise (§3.1,
//! Appendix A): below a threshold error rate, increasing the code
//! distance suppresses the logical error rate, which is why scaling the
//! machine (and its instruction bandwidth) is worthwhile at all. This
//! bench sweeps the code-capacity grid on the bit-parallel frame fast
//! path (20k shots per point, deterministic in the seed) and reports the
//! measured rates; the circuit-level section below stays on the tableau
//! path, which frame sampling does not cover.

use quest_bench::{header, row};
use quest_stabilizer::{SeedableRng, StdRng};
use quest_surface::{ThresholdSweep, UnionFindDecoder};

fn main() {
    header(
        "Substrate: logical error rate vs (p, d) — threshold behaviour",
        "below threshold, p_L drops with distance; above it, larger codes lose",
    );
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let distances = [3usize, 5, 7];
    let rates = [2e-3, 5e-3, 1e-2, 2e-2, 5e-2];
    let shots = 20_000;
    let sweep = ThresholdSweep::run_batch(
        &distances,
        &rates,
        shots,
        &UnionFindDecoder::new(),
        0xBEEF,
        4,
    );

    let mut head = vec!["p \\ d".to_string()];
    head.extend(distances.iter().map(std::string::ToString::to_string));
    row(&head
        .iter()
        .map(std::string::String::as_str)
        .collect::<Vec<_>>());
    for &p in &rates {
        let mut cols = vec![format!("{p:.0e}")];
        for &d in &distances {
            let pt = sweep
                .series(d)
                .into_iter()
                .find(|pt| pt.p == p)
                .expect("grid point");
            cols.push(format!("{:.4}", pt.logical_rate));
        }
        row(&cols
            .iter()
            .map(std::string::String::as_str)
            .collect::<Vec<_>>());
    }
    println!();
    let c35 = sweep.crossing_below(3, 5);
    println!(
        "check: d=5 outperforms d=3 at least up to p = {:?} (threshold regime ~1e-2 for this noise model)",
        c35
    );
    assert!(
        c35.unwrap_or(0.0) >= 5e-3,
        "no sub-threshold regime found — decoder or code broken"
    );

    // Circuit-level section: every gate location can fail; thresholds are
    // roughly an order of magnitude lower.
    println!();
    println!("circuit-level noise (every gate location fails with probability p):");
    use quest_surface::schedule::CircuitNoise;
    use quest_surface::{MemoryBasis, MemoryExperiment};
    row(&["p", "d=3 p_L", "d=5 p_L"]);
    for p in [5e-4, 1e-3, 2e-3] {
        let noise = CircuitNoise::uniform(p);
        let mut rates = Vec::new();
        for d in [3usize, 5] {
            let exp = MemoryExperiment::new(d, d, MemoryBasis::Z);
            let fails = (0..200)
                .filter(|_| {
                    exp.run_circuit_level(&noise, &UnionFindDecoder::new(), &mut rng)
                        .logical_error
                })
                .count();
            rates.push(fails as f64 / 200.0);
        }
        row(&[
            &format!("{p:.0e}"),
            &format!("{:.4}", rates[0]),
            &format!("{:.4}", rates[1]),
        ]);
    }
    println!();
    println!("check: circuit-level logical rates remain suppressed well below p at 5e-4");
}
