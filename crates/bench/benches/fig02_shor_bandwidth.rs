//! Figure 2 — baseline instruction bandwidth for Shor's algorithm as the
//! modulus (and hence the qubit count) scales from 128 to 1024 bits.
//!
//! Paper: "factoring a 1024 bit number requires an extremely high
//! instruction bandwidth (100 TB/s) as it requires millions of qubits."

use quest_bench::{bandwidth, header, row, sci};
use quest_estimate::ShorEstimate;

fn main() {
    header(
        "Figure 2: instruction bandwidth vs. number of qubits (SHOR 128–1024 bit)",
        "bandwidth grows linearly with qubits; ~100 TB/s and millions of qubits at 1024 bits",
    );
    row(&[
        "modulus bits",
        "code distance",
        "logical qubits",
        "T factories",
        "physical qubits",
        "baseline BW",
    ]);
    for n in [128u32, 192, 256, 384, 512, 768, 1024] {
        let s = ShorEstimate::new(n, 1e-4);
        row(&[
            &n.to_string(),
            &s.distance.to_string(),
            &format!("{:.0}", s.logical_qubits),
            &format!("{:.0}", s.factories),
            &sci(s.physical_qubits),
            &bandwidth(s.baseline_bandwidth()),
        ]);
    }
    let s1024 = ShorEstimate::new(1024, 1e-4);
    println!();
    println!(
        "check: 1024-bit instance needs {} physical qubits (paper: \"millions\") and {} (paper: ~100 TB/s)",
        sci(s1024.physical_qubits),
        bandwidth(s1024.baseline_bandwidth()),
    );
    assert!(s1024.physical_qubits >= 1e6, "fewer than a million qubits");
    assert!(
        s1024.baseline_bandwidth() >= 5e13,
        "bandwidth not in the 100 TB/s regime"
    );
}
