//! Ablation — two-level decoding: how much syndrome traffic the MCE's
//! local lookup decoder keeps off the global bus (§4.2).
//!
//! The local decoder resolves isolated single-qubit errors inside the
//! MCE; only complex patterns escalate to the master controller's global
//! decoder. At realistic error rates, the overwhelming majority of
//! eventful rounds decode locally.

use quest_bench::{header, row};
use quest_core::{DeliveryMode, QuestSystem};
use quest_isa::LogicalProgram;
use quest_stabilizer::{SeedableRng, StdRng};

fn main() {
    header(
        "Ablation: local LUT decoding vs. escalation to the global decoder",
        "isolated single-qubit errors (the common case) never leave the MCE",
    );
    row(&[
        "error rate",
        "distance",
        "cycles",
        "local decodes",
        "escalations",
        "local share",
    ]);
    let mut rng = StdRng::seed_from_u64(2024);
    for (p, d) in [
        (1e-3, 3usize),
        (3e-3, 3),
        (1e-3, 5),
        (3e-3, 5),
        (1e-2, 5), // high enough that multi-error rounds escalate
    ] {
        let cycles = 400u64;
        let mut sys = QuestSystem::new(d, p).expect("valid parameters");
        let run = sys.run_memory_workload(
            cycles,
            &LogicalProgram::new(),
            0,
            DeliveryMode::QuestMce,
            &mut rng,
        );
        let eventful = run.local_decodes + run.escalations;
        let share = if eventful == 0 {
            1.0
        } else {
            run.local_decodes as f64 / eventful as f64
        };
        row(&[
            &format!("{p:.0e}"),
            &d.to_string(),
            &cycles.to_string(),
            &run.local_decodes.to_string(),
            &run.escalations.to_string(),
            &format!("{:.1}%", share * 100.0),
        ]);
        assert!(
            share >= 0.5,
            "local decoder must handle most eventful rounds (got {share})"
        );
    }
    println!();
    println!("check: the local decoder resolves the majority of eventful rounds at every point");
}
