//! Perf-smoke for the bit-parallel frame sampler: a small code-capacity
//! threshold sweep that must finish fast and reproduce the physics.
//!
//! Run by the CI `perf-smoke` job on every push: sweeps d ∈ {3, 5, 7}
//! over a rate grid bracketing the code-capacity threshold (5000
//! shots/point at d ∈ {3, 5}; 2000 at d = 7, whose lattice is ~5× the
//! work per shot), asserts the whole sweep completes in under 60
//! seconds, asserts both the d3/d5 and the d5/d7 crossings land inside
//! the bracket, and emits the measurements as
//! `BENCH_frame_sampler.json` at the repo root for trend tracking.

use quest_bench::{header, row};
use quest_surface::{ThresholdSweep, UnionFindDecoder};
use std::io::Write as _;
use std::time::Instant;

const SHOTS: usize = 5000;
const SHOTS_D7: usize = 2000;
const SEED: u64 = 0xF7A3;
const WORKERS: usize = 4;
const TIME_BUDGET_SECS: f64 = 60.0;

/// Committed snapshot lives at the repo root (two levels above this
/// package), so the path is the same wherever cargo sets the CWD.
const REPORT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_frame_sampler.json"
);

fn main() {
    header(
        "Perf-smoke: frame-sampled threshold sweep (d in {3,5,7})",
        "the fast path stays fast and both crossings stay inside the bracket",
    );
    // Bracket the code-capacity threshold (~1e-2 for this noise model):
    // each larger code must win at the low end and lose at the high end.
    let rates = [2e-3, 5e-3, 1e-2, 3e-2, 8e-2];
    let decoder = UnionFindDecoder::new();
    let started = Instant::now();
    let mut sweep = ThresholdSweep::run_batch(&[3, 5], &rates, SHOTS, &decoder, SEED, WORKERS);
    let d7 = ThresholdSweep::run_batch(&[7], &rates, SHOTS_D7, &decoder, SEED, WORKERS);
    sweep.points.extend(d7.points);
    let elapsed = started.elapsed().as_secs_f64();

    row(&["p", "d=3 p_L", "d=5 p_L", "d=7 p_L"]);
    for &p in &rates {
        let find = |d: usize| {
            sweep
                .series(d)
                .into_iter()
                .find(|pt| pt.p == p)
                .map_or(f64::NAN, |pt| pt.logical_rate)
        };
        row(&[
            &format!("{p:.0e}"),
            &format!("{:.4}", find(3)),
            &format!("{:.4}", find(5)),
            &format!("{:.4}", find(7)),
        ]);
    }
    println!();
    let total_shots: usize = sweep.points.iter().map(|pt| pt.shots).sum();
    println!(
        "swept {total_shots} shots in {elapsed:.2}s ({:.0} shots/s)",
        total_shots as f64 / elapsed
    );

    // Both crossings must sit strictly inside the bracket: the larger
    // code wins at the grid's low end, the smaller at its high end.
    let lo = rates[0];
    let hi = *rates.last().unwrap_or(&lo);
    let mut crossings = Vec::new();
    for (d_small, d_large) in [(3usize, 5usize), (5, 7)] {
        let crossing = sweep.crossing_below(d_small, d_large);
        println!("empirical d{d_small}/d{d_large} crossing lower bound: {crossing:?}");
        let c = crossing.unwrap_or(0.0);
        assert!(
            c >= lo && c < hi,
            "d{d_small}/d{d_large} crossing {c:?} escaped the bracket [{lo:e}, {hi:e}) \
             — physics or sampler regression"
        );
        crossings.push((d_small, d_large, c));
    }
    assert!(
        elapsed < TIME_BUDGET_SECS,
        "perf-smoke blew its {TIME_BUDGET_SECS}s budget: {elapsed:.2}s — frame path regressed"
    );

    write_report(&sweep, elapsed, &crossings);
}

/// Emits the sweep as a small JSON report for CI trend tracking. Written
/// by hand (no serde in the workspace): a flat object with one array of
/// crossings and one array of points (each carrying its own shot count,
/// since d = 7 runs lighter than the rest).
fn write_report(sweep: &ThresholdSweep, elapsed: f64, crossings: &[(usize, usize, f64)]) {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"elapsed_secs\": {elapsed:.3},\n"));
    json.push_str("  \"crossings\": [\n");
    for (i, (d_small, d_large, c)) in crossings.iter().enumerate() {
        let sep = if i + 1 == crossings.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"d_small\": {d_small}, \"d_large\": {d_large}, \"lower_bound\": {c:e}}}{sep}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"points\": [\n");
    for (i, pt) in sweep.points.iter().enumerate() {
        let sep = if i + 1 == sweep.points.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"distance\": {}, \"p\": {:e}, \"logical_rate\": {:e}, \"shots\": {}}}{sep}\n",
            pt.distance, pt.p, pt.logical_rate, pt.shots
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::File::create(REPORT_PATH).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote BENCH_frame_sampler.json"),
        Err(e) => println!("could not write BENCH_frame_sampler.json: {e}"),
    }
}
