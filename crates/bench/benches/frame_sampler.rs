//! Perf-smoke for the wide-word frame sampler: a small code-capacity
//! threshold sweep that must finish fast and reproduce the physics.
//!
//! Run by the CI `perf-smoke` job on every push. Three passes:
//!
//! 1. **Production sweep** at the default 512-bit lane width with the
//!    default deterministic early exit: d ∈ {3, 5} at 5000 shots/point,
//!    d = 7 at 2000 (its lattice is ~5× the work per shot), over a rate
//!    grid bracketing the code-capacity threshold. Asserts the d3/d5
//!    and d5/d7 crossings land inside the bracket and records elapsed
//!    time against the committed pre-wide-word baseline.
//! 2. **64-bit lane re-run** of the same sweep, asserted bit-identical
//!    point by point — lane width must never change a result.
//! 3. **Early-exit verdict guard** at one pinned d5/d7 point pair: the
//!    full-shot sweep and the early-exited sweep must report the same
//!    crossing verdict, and the early run must actually stop short
//!    (otherwise the guard is vacuous).
//!
//! The whole bench must finish in under 60 seconds; measurements are
//! emitted as `BENCH_frame_sampler.json` at the repo root.

use quest_bench::{header, row};
use quest_surface::{EarlyExit, LaneWidth, SweepConfig, ThresholdSweep, UnionFindDecoder};
use std::io::Write as _;
use std::time::Instant;

const SHOTS: usize = 5000;
const SHOTS_D7: usize = 2000;
const SEED: u64 = 0xF7A3;
const WORKERS: usize = 4;
const TIME_BUDGET_SECS: f64 = 60.0;

/// `elapsed_secs` of the committed PR-7 snapshot: the same grids, shot
/// counts, seed and decoder on the single-lane engine, before the
/// wide-word rewrite. Denominator of the recorded total speedup.
const BASELINE_TOTAL_SECS: f64 = 0.150;
/// The d = 7 sweep alone on the PR-7 engine, measured at the same
/// grid/shots/seed immediately before the rewrite (the committed
/// snapshot only recorded the total). Denominator of the d7 speedup.
const BASELINE_D7_SECS: f64 = 0.067;

/// Committed snapshot lives at the repo root (two levels above this
/// package), so the path is the same wherever cargo sets the CWD.
const REPORT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_frame_sampler.json"
);

fn sweep_cfg(width: LaneWidth, early_exit: Option<EarlyExit>) -> SweepConfig {
    SweepConfig {
        width,
        early_exit,
        workers: WORKERS,
    }
}

fn main() {
    header(
        "Perf-smoke: frame-sampled threshold sweep (d in {3,5,7})",
        "the wide fast path stays fast, width never changes results, \
         and both crossings stay inside the bracket",
    );
    // Bracket the code-capacity threshold (~1e-2 for this noise model):
    // each larger code must win at the low end and lose at the high end.
    let rates = [2e-3, 5e-3, 1e-2, 3e-2, 8e-2];
    let decoder = UnionFindDecoder::new();
    let exit = EarlyExit::default();
    let started = Instant::now();

    // Pass 1: production sweep at the default 512-bit lanes + early exit.
    let wide_cfg = sweep_cfg(LaneWidth::X8, Some(exit));
    let t0 = Instant::now();
    let mut sweep =
        ThresholdSweep::run_batch_configured(&[3, 5], &rates, SHOTS, &decoder, SEED, &wide_cfg);
    let d35_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let d7 =
        ThresholdSweep::run_batch_configured(&[7], &rates, SHOTS_D7, &decoder, SEED, &wide_cfg);
    let d7_secs = t1.elapsed().as_secs_f64();
    sweep.points.extend(d7.points.iter().copied());
    let wide_secs = d35_secs + d7_secs;

    // Pass 2: identical sweep on 64-bit lanes; results must be
    // bit-identical, so every crossing/bracket assertion below holds for
    // both widths at once.
    let narrow_cfg = sweep_cfg(LaneWidth::X1, Some(exit));
    let t2 = Instant::now();
    let mut narrow =
        ThresholdSweep::run_batch_configured(&[3, 5], &rates, SHOTS, &decoder, SEED, &narrow_cfg);
    let narrow_d7 =
        ThresholdSweep::run_batch_configured(&[7], &rates, SHOTS_D7, &decoder, SEED, &narrow_cfg);
    let narrow_secs = t2.elapsed().as_secs_f64();
    narrow.points.extend(narrow_d7.points.iter().copied());
    assert_eq!(
        sweep.points, narrow.points,
        "64-bit lanes disagree with 512-bit lanes — width invariance broken"
    );

    row(&["p", "d=3 p_L", "d=5 p_L", "d=7 p_L"]);
    for &p in &rates {
        let find = |d: usize| {
            sweep
                .series(d)
                .into_iter()
                .find(|pt| pt.p == p)
                .map_or(f64::NAN, |pt| pt.logical_rate)
        };
        row(&[
            &format!("{p:.0e}"),
            &format!("{:.4}", find(3)),
            &format!("{:.4}", find(5)),
            &format!("{:.4}", find(7)),
        ]);
    }
    println!();
    let total_shots: usize = sweep.points.iter().map(|pt| pt.shots).sum();
    let shots_per_sec = total_shots as f64 / wide_secs;
    println!(
        "swept {total_shots} shots in {wide_secs:.3}s ({shots_per_sec:.0} shots/s, 512-bit lanes)"
    );
    println!("same sweep on 64-bit lanes: {narrow_secs:.3}s (identical results)");
    println!(
        "speedup vs PR-7 snapshot: {:.1}x total ({BASELINE_TOTAL_SECS:.3}s -> {wide_secs:.3}s), \
         {:.1}x at d=7 ({BASELINE_D7_SECS:.3}s -> {d7_secs:.3}s)",
        BASELINE_TOTAL_SECS / wide_secs,
        BASELINE_D7_SECS / d7_secs,
    );

    // Both crossings must sit strictly inside the bracket: the larger
    // code wins at the grid's low end, the smaller at its high end.
    let lo = rates[0];
    let hi = *rates.last().unwrap_or(&lo);
    let mut crossings = Vec::new();
    for (d_small, d_large) in [(3usize, 5usize), (5, 7)] {
        let crossing = sweep.crossing_below(d_small, d_large);
        println!("empirical d{d_small}/d{d_large} crossing lower bound: {crossing:?}");
        let c = crossing.unwrap_or(0.0);
        assert!(
            c >= lo && c < hi,
            "d{d_small}/d{d_large} crossing {c:?} escaped the bracket [{lo:e}, {hi:e}) \
             — physics or sampler regression"
        );
        crossings.push((d_small, d_large, c));
    }

    // Pass 3: early exit must never flip a crossing verdict. Pin one
    // d5/d7 comparison where the early exit demonstrably engages (the
    // high-rate point stops at the first milestone) and check the
    // verdict against the full-shot run.
    let pinned_rates = [5e-3, 8e-2];
    let pinned_shots = 2048;
    let full = ThresholdSweep::run_batch_configured(
        &[5, 7],
        &pinned_rates,
        pinned_shots,
        &decoder,
        SEED,
        &sweep_cfg(LaneWidth::X8, None),
    );
    let early = ThresholdSweep::run_batch_configured(
        &[5, 7],
        &pinned_rates,
        pinned_shots,
        &decoder,
        SEED,
        &sweep_cfg(LaneWidth::X8, Some(exit)),
    );
    assert!(
        early.points.iter().any(|pt| pt.shots < pinned_shots),
        "pinned early-exit run never stopped short — guard is vacuous"
    );
    assert_eq!(
        full.crossing_below(5, 7),
        early.crossing_below(5, 7),
        "early exit changed the pinned d5/d7 crossing verdict"
    );
    println!(
        "early-exit verdict guard: d5/d7 crossing {:?} unchanged by early exit",
        full.crossing_below(5, 7)
    );

    let elapsed = started.elapsed().as_secs_f64();
    assert!(
        elapsed < TIME_BUDGET_SECS,
        "perf-smoke blew its {TIME_BUDGET_SECS}s budget: {elapsed:.2}s — frame path regressed"
    );

    write_report(
        &sweep,
        &crossings,
        &exit,
        &Timings {
            wide_secs,
            narrow_secs,
            d7_secs,
            shots_per_sec,
        },
    );
}

struct Timings {
    wide_secs: f64,
    narrow_secs: f64,
    d7_secs: f64,
    shots_per_sec: f64,
}

/// Emits the sweep as a small JSON report for CI trend tracking. Written
/// by hand (no serde in the workspace): schema 2 adds the lane width,
/// throughput, early-exit knobs, the 64-bit comparison run, and the
/// measured speedups over the committed pre-wide-word baseline.
fn write_report(
    sweep: &ThresholdSweep,
    crossings: &[(usize, usize, f64)],
    exit: &EarlyExit,
    t: &Timings,
) {
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": 2,\n");
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!(
        "  \"lane_width\": \"{}\",\n",
        LaneWidth::X8.name()
    ));
    json.push_str(&format!("  \"elapsed_secs\": {:.3},\n", t.wide_secs));
    json.push_str(&format!("  \"shots_per_sec\": {:.0},\n", t.shots_per_sec));
    json.push_str(&format!("  \"d7_sweep_secs\": {:.3},\n", t.d7_secs));
    json.push_str(&format!(
        "  \"early_exit\": {{\"min_shots\": {}, \"check_every\": {}, \"target_failures\": {}}},\n",
        exit.min_shots, exit.check_every, exit.target_failures
    ));
    json.push_str(&format!(
        "  \"widths\": [\n    {{\"lane_width\": \"{}\", \"elapsed_secs\": {:.3}}},\n    \
         {{\"lane_width\": \"{}\", \"elapsed_secs\": {:.3}}}\n  ],\n",
        LaneWidth::X1.name(),
        t.narrow_secs,
        LaneWidth::X8.name(),
        t.wide_secs,
    ));
    json.push_str(&format!(
        "  \"baseline\": {{\"source\": \"PR-7 single-lane engine, same grids/shots/seed\", \
         \"elapsed_secs\": {BASELINE_TOTAL_SECS:.3}, \"d7_sweep_secs\": {BASELINE_D7_SECS:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"speedup\": {{\"total\": {:.2}, \"d7_sweep\": {:.2}}},\n",
        BASELINE_TOTAL_SECS / t.wide_secs,
        BASELINE_D7_SECS / t.d7_secs,
    ));
    json.push_str("  \"crossings\": [\n");
    for (i, (d_small, d_large, c)) in crossings.iter().enumerate() {
        let sep = if i + 1 == crossings.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"d_small\": {d_small}, \"d_large\": {d_large}, \"lower_bound\": {c:e}}}{sep}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"points\": [\n");
    for (i, pt) in sweep.points.iter().enumerate() {
        let sep = if i + 1 == sweep.points.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"distance\": {}, \"p\": {:e}, \"logical_rate\": {:e}, \"shots\": {}}}{sep}\n",
            pt.distance, pt.p, pt.logical_rate, pt.shots
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::File::create(REPORT_PATH).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote BENCH_frame_sampler.json"),
        Err(e) => println!("could not write BENCH_frame_sampler.json: {e}"),
    }
}
