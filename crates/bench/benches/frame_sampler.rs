//! Perf-smoke for the bit-parallel frame sampler: a small code-capacity
//! threshold sweep that must finish fast and reproduce the physics.
//!
//! Run by the CI `perf-smoke` job on every push: sweeps d ∈ {3, 5} over a
//! rate grid bracketing the code-capacity threshold at 5000 shots/point,
//! asserts the whole sweep completes in under 60 seconds, asserts the
//! crossing between d=3 and d=5 lands inside the bracket, and emits the
//! measurements as `BENCH_frame_sampler.json` for trend tracking.

use quest_bench::{header, row};
use quest_surface::{ThresholdSweep, UnionFindDecoder};
use std::io::Write as _;
use std::time::Instant;

const SHOTS: usize = 5000;
const SEED: u64 = 0xF7A3;
const WORKERS: usize = 4;
const TIME_BUDGET_SECS: f64 = 60.0;

fn main() {
    header(
        "Perf-smoke: frame-sampled threshold sweep (d in {3,5}, 5000 shots/point)",
        "the fast path stays fast and the crossing stays inside the bracket",
    );
    let distances = [3usize, 5];
    // Bracket the code-capacity threshold (~1e-2 for this noise model):
    // d=5 must win at the low end and lose at the high end.
    let rates = [2e-3, 5e-3, 1e-2, 3e-2, 8e-2];
    let started = Instant::now();
    let sweep = ThresholdSweep::run_batch(
        &distances,
        &rates,
        SHOTS,
        &UnionFindDecoder::new(),
        SEED,
        WORKERS,
    );
    let elapsed = started.elapsed().as_secs_f64();

    row(&["p", "d=3 p_L", "d=5 p_L"]);
    for &p in &rates {
        let find = |d: usize| {
            sweep
                .series(d)
                .into_iter()
                .find(|pt| pt.p == p)
                .map_or(f64::NAN, |pt| pt.logical_rate)
        };
        row(&[
            &format!("{p:.0e}"),
            &format!("{:.4}", find(3)),
            &format!("{:.4}", find(5)),
        ]);
    }
    println!();
    let total_shots = distances.len() * rates.len() * SHOTS;
    println!(
        "swept {total_shots} shots in {elapsed:.2}s ({:.0} shots/s)",
        total_shots as f64 / elapsed
    );

    let crossing = sweep.crossing_below(3, 5);
    println!("empirical d3/d5 crossing lower bound: {crossing:?}");

    // The crossing must sit strictly inside the bracket: d=5 wins at the
    // grid's low end, d=3 wins at its high end.
    let lo = rates[0];
    let hi = *rates.last().unwrap_or(&lo);
    let c = crossing.unwrap_or(0.0);
    assert!(
        c >= lo && c < hi,
        "crossing {c:?} escaped the bracket [{lo:e}, {hi:e}) — physics or sampler regression"
    );
    assert!(
        elapsed < TIME_BUDGET_SECS,
        "perf-smoke blew its {TIME_BUDGET_SECS}s budget: {elapsed:.2}s — frame path regressed"
    );

    write_report(&sweep, elapsed, c);
}

/// Emits the sweep as a small JSON report for CI trend tracking. Written
/// by hand (no serde in the workspace): the shape is a flat object with
/// one array of points.
fn write_report(sweep: &ThresholdSweep, elapsed: f64, crossing: f64) {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"shots_per_point\": {SHOTS},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"elapsed_secs\": {elapsed:.3},\n"));
    json.push_str(&format!("  \"crossing_lower_bound\": {crossing:e},\n"));
    json.push_str("  \"points\": [\n");
    for (i, pt) in sweep.points.iter().enumerate() {
        let sep = if i + 1 == sweep.points.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"distance\": {}, \"p\": {:e}, \"logical_rate\": {:e}}}{sep}\n",
            pt.distance, pt.p, pt.logical_rate
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::File::create("BENCH_frame_sampler.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
    {
        Ok(()) => println!("wrote BENCH_frame_sampler.json"),
        Err(e) => println!("could not write BENCH_frame_sampler.json: {e}"),
    }
}
