//! Figure 13 — ratio of T-factory (magic-state distillation) logical
//! instructions to the workload's algorithmic logical instructions.
//!
//! Paper: T gates are 25–30% of the stream, each needing a distilled
//! magic state; distillation kernels dominate the logical instruction
//! stream, which is why caching them buys ~3 more orders of magnitude.

use quest_bench::{header, row, sci};
use quest_estimate::analyze_suite;

fn main() {
    header(
        "Figure 13: T-factory to algorithmic instruction ratio per workload",
        "distillation dominates the logical stream (ratios of ~10^1.5–10^3)",
    );
    row(&[
        "workload",
        "T fraction",
        "distill levels",
        "factories",
        "instrs/state",
        "ratio",
    ]);
    for e in analyze_suite(1e-4) {
        row(&[
            e.workload.name,
            &format!("{:.2}", e.workload.t_fraction),
            &e.distillation.levels.to_string(),
            &format!("{:.0}", e.distillation.factories),
            &format!("{:.0}", e.distillation.instrs_per_state),
            &sci(e.t_factory_ratio()),
        ]);
    }
    println!();
    let suite = analyze_suite(1e-4);
    let max = suite
        .iter()
        .map(quest_estimate::BandwidthEstimate::t_factory_ratio)
        .fold(0.0f64, f64::max);
    let min = suite
        .iter()
        .map(quest_estimate::BandwidthEstimate::t_factory_ratio)
        .fold(f64::INFINITY, f64::min);
    println!(
        "check: every workload's logical stream is dominated by distillation \
         (ratios {:.0}–{:.0}; two-level workloads ≈ 720, matching the ~10^3 cache gain of §5.3)",
        min, max
    );
    assert!(min >= 10.0, "distillation must dominate");
    assert!(max >= 500.0, "two-level workloads must reach ~10^3");
}
