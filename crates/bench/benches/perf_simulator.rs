//! Criterion micro-benchmarks of the substrate itself: stabilizer
//! simulation throughput, decoder latency, and the MCE replay loop.
//!
//! These are genuine performance benchmarks (the figure benches above are
//! reproduction harnesses); they track the cost of the building blocks a
//! downstream user would scale up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quest_core::Mce;
use quest_stabilizer::{SeedableRng, StdRng, Tableau};
use quest_surface::decoder::Decoder;
use quest_surface::{
    DecodingGraph, MemoryBasis, MemoryExperiment, MemoryNoise, RotatedLattice, StabKind,
    SyndromeCircuit, UnionFindDecoder,
};

fn bench_tableau(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau");
    for n in [25usize, 100, 400] {
        group.bench_with_input(BenchmarkId::new("cnot_layer", n), &n, |b, &n| {
            let mut t = Tableau::new(n);
            b.iter(|| {
                for q in 0..n / 2 {
                    t.cnot(q, n / 2 + q);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("measure_all", n), &n, |b, &n| {
            let mut t = Tableau::new(n);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                for q in 0..n {
                    t.h(q);
                    t.measure(q, &mut rng);
                }
            });
        });
    }
    group.finish();
}

fn bench_syndrome_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("syndrome_round");
    for d in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let lat = RotatedLattice::new(d);
            let sc = SyndromeCircuit::new(&lat);
            let mut t = Tableau::new(lat.num_qubits());
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| sc.run_round(&mut t, &mut rng));
        });
    }
    group.finish();
}

fn bench_union_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_find_decode");
    for d in [5usize, 7, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let lat = RotatedLattice::new(d);
            let g = DecodingGraph::new(&lat, StabKind::Z, d);
            // A fixed random-ish event set.
            let events: Vec<usize> = (0..g.boundary()).step_by(7).take(8).collect();
            let dec = UnionFindDecoder::new();
            b.iter(|| dec.decode(&g, &events));
        });
    }
    group.finish();
}

fn bench_mce_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("mce_qecc_cycle");
    for d in [3usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let lat = RotatedLattice::new(d);
            let mut mce = Mce::new(&lat, 4096);
            let mut t = Tableau::new(lat.num_qubits());
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| mce.run_qecc_cycle(&mut t, &mut rng));
        });
    }
    group.finish();
}

fn bench_memory_shot(c: &mut Criterion) {
    c.bench_function("memory_experiment_d3_shot", |b| {
        let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
        let noise = MemoryNoise::phenomenological(1e-3);
        let dec = UnionFindDecoder::new();
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| exp.run(&noise, &dec, &mut rng));
    });
}

criterion_group!(
    benches,
    bench_tableau,
    bench_syndrome_round,
    bench_union_find,
    bench_mce_cycle,
    bench_memory_shot
);
criterion_main!(benches);
