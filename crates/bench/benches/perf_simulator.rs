//! Criterion micro-benchmarks of the substrate itself: stabilizer
//! simulation throughput, decoder latency, and the MCE replay loop.
//!
//! These are genuine performance benchmarks (the figure benches above are
//! reproduction harnesses); they track the cost of the building blocks a
//! downstream user would scale up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quest_core::Mce;
use quest_stabilizer::{SeedableRng, StdRng, Tableau};
use quest_surface::decoder::Decoder;
use quest_surface::{
    DecodingGraph, MemoryBasis, MemoryExperiment, MemoryNoise, RotatedLattice, StabKind,
    SyndromeCircuit, UnionFindDecoder,
};

fn bench_tableau(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau");
    for n in [25usize, 100, 400] {
        group.bench_with_input(BenchmarkId::new("cnot_layer", n), &n, |b, &n| {
            let mut t = Tableau::new(n);
            b.iter(|| {
                for q in 0..n / 2 {
                    t.cnot(q, n / 2 + q);
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("measure_all", n), &n, |b, &n| {
            let mut t = Tableau::new(n);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                for q in 0..n {
                    t.h(q);
                    t.measure(q, &mut rng);
                }
            });
        });
    }
    group.finish();
}

fn bench_syndrome_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("syndrome_round");
    for d in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let lat = RotatedLattice::new(d);
            let sc = SyndromeCircuit::new(&lat);
            let mut t = Tableau::new(lat.num_qubits());
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| sc.run_round(&mut t, &mut rng));
        });
    }
    group.finish();
}

fn bench_union_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_find_decode");
    for d in [5usize, 7, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let lat = RotatedLattice::new(d);
            let g = DecodingGraph::new(&lat, StabKind::Z, d);
            // A fixed random-ish event set.
            let events: Vec<usize> = (0..g.boundary()).step_by(7).take(8).collect();
            let dec = UnionFindDecoder::new();
            b.iter(|| dec.decode(&g, &events));
        });
    }
    group.finish();
}

fn bench_mce_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("mce_qecc_cycle");
    for d in [3usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let lat = RotatedLattice::new(d);
            let mut mce = Mce::new(&lat, 4096);
            let mut t = Tableau::new(lat.num_qubits());
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| mce.run_qecc_cycle(&mut t, &mut rng));
        });
    }
    group.finish();
}

fn bench_memory_shot(c: &mut Criterion) {
    c.bench_function("memory_experiment_d3_shot", |b| {
        let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
        let noise = MemoryNoise::phenomenological(1e-3);
        let dec = UnionFindDecoder::new();
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| exp.run(&noise, &dec, &mut rng));
    });
}

fn bench_frame_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_batch_1k_shots");
    for d in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let exp = MemoryExperiment::new(d, d, MemoryBasis::Z);
            let noise = MemoryNoise::code_capacity(1e-2);
            let dec = UnionFindDecoder::new();
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                exp.run_batch(&noise, &dec, 1024, seed)
            });
        });
    }
    group.finish();
}

/// Head-to-head throughput: d=7 code-capacity memory, per-shot tableau
/// loop vs. the bit-parallel frame batch. The wide-word engine with the
/// incremental decoder measures ~800x on the reference container; the
/// floor is set at a conservative 200x (the pre-wide-word engine floored
/// at 20x) so CI noise never trips it while any real fast-path
/// regression still does.
fn frame_throughput_comparison(_c: &mut Criterion) {
    use std::time::Instant;
    let exp = MemoryExperiment::new(7, 7, MemoryBasis::Z);
    let noise = MemoryNoise::code_capacity(1e-2);
    let dec = UnionFindDecoder::new();

    let legacy_shots = 200usize;
    let mut rng = StdRng::seed_from_u64(5);
    let t0 = Instant::now();
    let legacy_rate = exp.logical_error_rate(&noise, &dec, legacy_shots, &mut rng);
    let legacy_elapsed = t0.elapsed().as_secs_f64();
    let legacy_per_sec = legacy_shots as f64 / legacy_elapsed;

    let batch_shots = 20_000usize;
    let t1 = Instant::now();
    let batch = exp.run_batch(&noise, &dec, batch_shots, 5);
    let batch_elapsed = t1.elapsed().as_secs_f64();
    let batch_per_sec = batch_shots as f64 / batch_elapsed;

    let speedup = batch_per_sec / legacy_per_sec;
    println!(
        "frame_vs_tableau_throughput_d7: tableau {legacy_per_sec:.0} shots/s \
         ({legacy_shots} shots, p_L={legacy_rate:.4}), frame {batch_per_sec:.0} shots/s \
         ({batch_shots} shots, p_L={:.4}), speedup {speedup:.1}x",
        batch.logical_error_rate()
    );
    assert!(
        speedup >= 200.0,
        "frame fast path must be at least 200x the per-shot tableau loop at d=7, got {speedup:.1}x"
    );
}

criterion_group!(
    benches,
    bench_tableau,
    bench_syndrome_round,
    bench_union_find,
    bench_mce_cycle,
    bench_memory_shot,
    bench_frame_batch,
    frame_throughput_comparison
);
criterion_main!(benches);
