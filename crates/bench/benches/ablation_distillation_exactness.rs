//! Ablation — validating the analytical distillation model against an
//! exact enumeration of one 15-to-1 round.
//!
//! The bandwidth model (§5.2, Figures 13–15) relies on the Bravyi–Kitaev
//! suppression `p_out = 35·p³`. This bench enumerates all 2¹⁵ Z-error
//! patterns of one round over the [[15,1,3]] punctured Reed–Muller code
//! and compares the exact output error with the analytical constant.

use quest_bench::{header, row, sci};
use quest_estimate::distill_sim::{exact_round, undetected_weight_distribution};
use quest_estimate::distillation::output_error;

fn main() {
    header(
        "Ablation: 15-to-1 distillation — exact enumeration vs. the 35·p^3 model",
        "output error = 35·p^3 to leading order; singles/doubles always detected",
    );
    let dist = undetected_weight_distribution();
    println!(
        "undetected-pattern weight distribution: w0={} w1={} w2={} w3={} (35 weight-3 codewords drive the error floor)\n",
        dist[0], dist[1], dist[2], dist[3]
    );
    row(&[
        "input error p",
        "P(accept)",
        "exact p_out",
        "35·p^3 model",
        "relative gap",
    ]);
    for p in [3e-3, 1e-3, 3e-4, 1e-4] {
        let (p_acc, p_out) = exact_round(p);
        let model = output_error(p, 1);
        row(&[
            &sci(p),
            &format!("{p_acc:.4}"),
            &sci(p_out),
            &sci(model),
            &format!("{:+.2}%", (p_out / model - 1.0) * 100.0),
        ]);
        assert!((p_out / model - 1.0).abs() < 0.1, "model diverged at p={p}");
    }
    println!();
    println!("check: the analytical constant used by Figures 13–15 is exact to <10% over the operating range");
}
