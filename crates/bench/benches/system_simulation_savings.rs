//! Simulation cross-check of Figure 14 — the bandwidth asymmetry measured
//! from the cycle-level system simulation, not the analytical model.
//!
//! The same noisy error-corrected memory workload runs in all three
//! delivery modes through the unified execution layer: a
//! [`WorkloadSpec`] carrying the logical program and its distillation
//! kernel, executed *sharded* on the concurrent runtime (4 tiles on
//! 2 shards) and cross-checked byte-for-byte against the
//! single-threaded reference executor. Every byte on the global bus is
//! counted. On small tiles the absolute savings are bounded by the tile
//! size (a d=5 tile has 49 qubits, not millions), but the *structure* of
//! the paper's claim is visible directly: the baseline traffic scales
//! with (qubits × cycles × tiles) while QuEST traffic stays constant in
//! cycle count.

use quest_bench::{header, row, sci};
use quest_core::DeliveryMode;
use quest_estimate::Workload;
use quest_runtime::{run_reference, FaultPlan, Runtime, WorkloadSpec};

const DISTANCE: usize = 5;
const TILES: usize = 4;
const SHARDS: usize = 2;

fn bus_bytes(cycles: u64, mode: DeliveryMode) -> u64 {
    // Algorithmic stream from the workload model plus the real 15-to-1
    // distillation kernel (the cacheable part, §5.3), replayed 50x on
    // every tile. Identical seed per mode: the noise history (and hence
    // syndrome traffic) is the same in all three runs.
    let program = quest_estimate::kernels::workload_with_kernel(&Workload::QLS, 200);
    let spec =
        WorkloadSpec::delivery_memory(DISTANCE, TILES, SHARDS, 1e-3, 7, cycles, &program, 50, mode);
    let report = Runtime::new().run(&spec).expect("valid delivery workload");
    let reference = run_reference(&spec).expect("valid delivery workload");
    assert_eq!(
        report.report, reference,
        "sharded runtime diverged from the reference executor"
    );
    report.bus_bytes()
}

fn main() {
    header(
        "Simulation: measured global-bus bytes per delivery mode (4 d=5 tiles, 2 shards)",
        "baseline grows with cycles; QuEST bus traffic is cycle-independent",
    );
    row(&[
        "cycles",
        "baseline bytes",
        "QuEST bytes",
        "QuEST+cache bytes",
        "savings",
    ]);
    let mut last = (0u64, 0u64);
    for cycles in [100u64, 200, 400] {
        let b = bus_bytes(cycles, DeliveryMode::SoftwareBaseline);
        let q = bus_bytes(cycles, DeliveryMode::QuestMce);
        let c = bus_bytes(cycles, DeliveryMode::QuestMceCache);
        row(&[
            &cycles.to_string(),
            &b.to_string(),
            &q.to_string(),
            &c.to_string(),
            &sci(b as f64 / c as f64),
        ]);
        assert!(b > 2 * q, "baseline must beat QuEST-MCE");
        assert!(b > 30 * c, "baseline must dwarf QuEST+cache");
        assert!(q > 10 * c, "cache must cut distillation traffic");
        last = (b, c);
    }
    println!();
    println!(
        "check: at 400 cycles the simulated baseline moved {}x more bytes than QuEST+cache \
         (4 tiles of 49 qubits; the analytical model extrapolates the per-qubit asymmetry to \
         millions of qubits), sharded runtime bit-identical to the reference",
        sci(last.0 as f64 / last.1 as f64)
    );

    // One degraded configuration: the same 400-cycle QuEST+cache
    // workload under injected bus faults and MCE stalls. Recovery costs
    // real bytes (retransmissions, quarantined tiles streaming the
    // software baseline) but stays far from the baseline's firehose —
    // and the faulty run is still bit-identical across shard counts.
    let faulty = faulty_bus_bytes(400, SHARDS);
    assert_eq!(
        faulty,
        faulty_bus_bytes(400, 1),
        "faulty run diverged across shard counts"
    );
    assert!(
        faulty > last.1,
        "recovery must cost bytes over the clean cached run"
    );
    assert!(
        faulty < last.0 / 4,
        "a degraded QuEST system must still beat the baseline"
    );
    println!(
        "check: with faults injected (2% drop, 1% corrupt, 0.5% stall) the cached run pays \
         {faulty} B for recovery — {}x over clean, still {}x under the baseline",
        sci(faulty as f64 / last.1 as f64),
        sci(last.0 as f64 / faulty as f64)
    );
}

/// The 400-cycle cached workload with every fault class injected,
/// returning total bus bytes (recovery overhead included).
fn faulty_bus_bytes(cycles: u64, shards: usize) -> u64 {
    let program = quest_estimate::kernels::workload_with_kernel(&Workload::QLS, 200);
    let mut spec = WorkloadSpec::delivery_memory(
        DISTANCE,
        TILES,
        shards,
        1e-3,
        7,
        cycles,
        &program,
        50,
        DeliveryMode::QuestMceCache,
    );
    spec.faults = FaultPlan {
        drop_rate: 0.02,
        corrupt_rate: 0.01,
        stall_rate: 0.005,
        quarantine_cycles: 5,
        ..FaultPlan::none()
    };
    let report = Runtime::new().run(&spec).expect("valid faulty workload");
    assert!(
        !report.recovery.is_quiet(),
        "fault profile must actually fire"
    );
    report.bus_bytes()
}
