//! Simulation cross-check of Figure 14 — the bandwidth asymmetry measured
//! from the cycle-level system simulation, not the analytical model.
//!
//! A QuestSystem runs the same noisy error-corrected memory workload in
//! all three delivery modes; every byte on the global bus is counted. On
//! a single small tile the absolute savings are bounded by the tile size
//! (a d=5 tile has 49 qubits, not millions), but the *structure* of the
//! paper's claim is visible directly: the baseline traffic scales with
//! (qubits × cycles) while QuEST traffic stays constant in cycle count.

use quest_bench::{header, row, sci};
use quest_core::{DeliveryMode, QuestSystem};
use quest_estimate::Workload;
use quest_stabilizer::{SeedableRng, StdRng};

fn main() {
    header(
        "Simulation: measured global-bus bytes per delivery mode (d=5 tile)",
        "baseline grows with cycles; QuEST bus traffic is cycle-independent",
    );
    // Algorithmic stream from the workload model plus the real 15-to-1
    // distillation kernel (the cacheable part, §5.3).
    let program = quest_estimate::kernels::workload_with_kernel(&Workload::QLS, 200);
    row(&[
        "cycles",
        "baseline bytes",
        "QuEST bytes",
        "QuEST+cache bytes",
        "savings",
    ]);
    let mut last = (0u64, 0u64);
    for cycles in [100u64, 200, 400] {
        // Identical seeds per mode: the noise history (and hence syndrome
        // traffic) is the same in all three runs.
        let mut base = QuestSystem::new(5, 1e-3);
        let b = base.run_memory_workload(
            cycles,
            &program,
            50,
            DeliveryMode::SoftwareBaseline,
            &mut StdRng::seed_from_u64(7),
        );
        let mut quest = QuestSystem::new(5, 1e-3);
        let q = quest.run_memory_workload(
            cycles,
            &program,
            50,
            DeliveryMode::QuestMce,
            &mut StdRng::seed_from_u64(7),
        );
        let mut cached = QuestSystem::new(5, 1e-3);
        let c = cached.run_memory_workload(
            cycles,
            &program,
            50,
            DeliveryMode::QuestMceCache,
            &mut StdRng::seed_from_u64(7),
        );
        row(&[
            &cycles.to_string(),
            &b.bus_bytes.to_string(),
            &q.bus_bytes.to_string(),
            &c.bus_bytes.to_string(),
            &sci(b.bus_bytes as f64 / c.bus_bytes as f64),
        ]);
        assert!(
            b.bus_bytes > 2 * q.bus_bytes,
            "baseline must beat QuEST-MCE"
        );
        assert!(
            b.bus_bytes > 30 * c.bus_bytes,
            "baseline must dwarf QuEST+cache"
        );
        assert!(
            q.bus_bytes > 10 * c.bus_bytes,
            "cache must cut distillation traffic"
        );
        last = (b.bus_bytes, c.bus_bytes);
    }
    println!();
    println!(
        "check: at 400 cycles the simulated baseline moved {}x more bytes than QuEST+cache \
         (per-tile, 49 qubits; the analytical model extrapolates the per-qubit asymmetry to millions of qubits)",
        sci(last.0 as f64 / last.1 as f64)
    );
}
