//! Executable footprint — the static instruction working set per
//! delivery model (§2.2's cryogenic-DRAM argument).
//!
//! The paper places cryogenic DRAM at 77 K because quantum executables
//! are tens of gigabytes; the related work calls out "extremely large
//! executables" as a toolchain challenge. Hardware-managed QECC shrinks
//! the program as dramatically as the bandwidth: the baseline spells out
//! every physical µop, while QuEST stores a logical program plus a
//! 74-byte microcode image per MCE.

use quest_bench::{header, row, sci};
use quest_core::TechnologyParams;
use quest_estimate::footprint::Footprint;
use quest_estimate::{BandwidthEstimate, Workload};
use quest_surface::SyndromeDesign;

fn main() {
    header(
        "Executable footprint: static instruction working set per delivery model",
        "baseline executables reach petabytes; QuEST ships kilobytes of microcode + the logical program",
    );
    let tech = TechnologyParams::PROJECTED_D;
    let syn = SyndromeDesign::STEANE;
    row(&[
        "workload",
        "baseline bytes",
        "QuEST bytes",
        "QuEST+cache bytes",
        "ucode image",
        "shrink",
    ]);
    for w in &Workload::ALL {
        let e = BandwidthEstimate::analyze(w, 1e-4, &tech, &syn);
        let f = Footprint::from_estimate(&e, &syn);
        row(&[
            w.name,
            &sci(f.baseline_bytes),
            &sci(f.quest_bytes),
            &sci(f.quest_cached_bytes),
            &format!("{:.0} B", f.microcode_bytes),
            &sci(f.shrink()),
        ]);
        assert!(f.shrink() > 1e5, "{}: shrink {}", w.name, f.shrink());
        assert!(
            f.baseline_bytes > 10e9,
            "{}: baseline executable below the paper's 10s-of-GB floor",
            w.name
        );
    }
    println!();
    println!(
        "check: every baseline executable exceeds the paper's \"10s GB\" floor; \
         QuEST shrinks the working set by the same ≥10^5 factor as the bandwidth"
    );
}
