//! Throughput scaling of the concurrent sharded runtime.
//!
//! Runs the same fixed-seed memory workload (8 tiles at d = 5) at shard
//! counts 1, 2 and 4. Because each shard simulates its tiles in a
//! tableau spanning only that shard — and CHP cost grows quadratically
//! with tableau width — sharding cuts total simulation work as well as
//! parallelising it, so throughput should rise well beyond 1.5× at four
//! shards even on modest hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quest_runtime::{Runtime, WorkloadSpec};

fn bench_runtime_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_scaling");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                let spec = WorkloadSpec::memory(5, 8, shards, 1e-3, 11, 30);
                let runtime = Runtime::new();
                b.iter(|| runtime.run(&spec));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_scaling);
criterion_main!(benches);
