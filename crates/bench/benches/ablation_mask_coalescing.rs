//! Ablation — mask-table storage with and without d²-coalescing (§4.5).
//!
//! The paper observes that logical instructions operate at a granularity
//! of d² physical qubits, so the mask table can hold one bit per region
//! instead of one per qubit, shrinking its storage N → N/d².

use quest_bench::{header, row, sci};
use quest_core::MaskTable;

fn main() {
    header(
        "Ablation: mask-table storage, per-qubit vs. d^2-coalesced",
        "coalescing shrinks mask storage from N bits to N/d^2 bits",
    );
    row(&[
        "qubits",
        "distance",
        "per-qubit bits",
        "coalesced bits",
        "saving",
    ]);
    for (n, d) in [
        (10_000usize, 5usize),
        (100_000, 7),
        (1_000_000, 11),
        (10_000_000, 15),
    ] {
        let per_qubit = MaskTable::per_qubit(n).storage_bits();
        let coalesced = MaskTable::coalesced(n, d * d).storage_bits();
        row(&[
            &sci(n as f64),
            &d.to_string(),
            &sci(per_qubit as f64),
            &sci(coalesced as f64),
            &format!("{:.0}x", per_qubit as f64 / coalesced as f64),
        ]);
        assert!(per_qubit as f64 / coalesced as f64 >= (d * d) as f64 * 0.99);
    }
    println!();
    println!("check: saving equals d^2 for every configuration");
}
