//! Figure 15 — sensitivity of the bandwidth savings to the physical qubit
//! error rate.
//!
//! Paper: a reduced error rate lowers the physical-qubit count (smaller
//! code distance), shrinking the baseline bandwidth and hence the savings
//! from hardware-managed QECC, while the magic-state-distillation
//! overhead stays roughly constant (factory count scales sub-linearly in
//! the error rate).

use quest_bench::{header, orders, row, sci};
use quest_core::TechnologyParams;
use quest_estimate::{BandwidthEstimate, Workload};
use quest_surface::{MemoryBasis, MemoryExperiment, MemoryNoise, SyndromeDesign, UnionFindDecoder};

fn main() {
    header(
        "Figure 15: bandwidth savings vs. physical error rate",
        "savings shrink as the error rate improves; distillation overhead ~constant",
    );
    row(&[
        "workload",
        "error rate",
        "distance",
        "phys qubits",
        "MCE savings",
        "total savings",
        "T-factory ratio",
    ]);
    let tech = TechnologyParams::PROJECTED_D;
    let syn = SyndromeDesign::STEANE;
    let mut per_workload: Vec<Vec<f64>> = Vec::new();
    for w in &Workload::ALL {
        let mut series = Vec::new();
        for p in [1e-3, 1e-4, 1e-5] {
            let e = BandwidthEstimate::analyze(w, p, &tech, &syn);
            row(&[
                w.name,
                &sci(p),
                &e.distance.to_string(),
                &sci(e.physical_qubits),
                &format!("10^{:.1}", orders(e.mce_savings())),
                &format!("10^{:.1}", orders(e.cached_savings())),
                &format!("{:.0}", e.t_factory_ratio()),
            ]);
            series.push(e.mce_savings());
        }
        per_workload.push(series);
    }
    println!();
    println!("check: savings strictly decrease as the error rate improves, for every workload");
    for (w, series) in Workload::ALL.iter().zip(&per_workload) {
        assert!(
            series[0] > series[1] && series[1] > series[2],
            "{}: {series:?}",
            w.name
        );
    }

    // Monte-Carlo grounding for the error-rate sensitivity: the analytic
    // distance formula above rests on logical rates falling with distance
    // below threshold. Re-measure that on the frame fast path (20k shots
    // per point — feasible only because of bit-parallel sampling).
    println!();
    println!(
        "Monte-Carlo check (frame-sampled, 20k shots/point): p_L falls with d below threshold"
    );
    row(&["distance", "p = 4e-3", "p_L (measured)"]);
    let p = 4e-3;
    let noise = MemoryNoise::code_capacity(p);
    let dec = UnionFindDecoder::new();
    let shots = 20_000;
    let mut measured = Vec::new();
    for d in [3usize, 5, 7] {
        let exp = MemoryExperiment::new(d, d, MemoryBasis::Z);
        let rate = exp.logical_error_rate_batch(&noise, &dec, shots, 15 + d as u64);
        row(&[&d.to_string(), &sci(p), &format!("{rate:.5}")]);
        measured.push(rate);
    }
    // Monotone within sampling noise: rates this far below threshold sit
    // at a handful of failures per 20k shots, so allow a 3-sigma Poisson
    // slack per step — but the largest code must strictly beat the
    // smallest.
    let shots_f = shots as f64;
    for win in measured.windows(2) {
        let slack = 3.0 * (win[0].max(1.0 / shots_f) / shots_f).sqrt();
        assert!(
            win[1] <= win[0] + slack,
            "logical rate rose with distance beyond sampling noise: {measured:?}"
        );
    }
    assert!(
        measured[2] < measured[0],
        "d=7 must strictly beat d=3 below threshold: {measured:?}"
    );
}
