//! Figure 15 — sensitivity of the bandwidth savings to the physical qubit
//! error rate.
//!
//! Paper: a reduced error rate lowers the physical-qubit count (smaller
//! code distance), shrinking the baseline bandwidth and hence the savings
//! from hardware-managed QECC, while the magic-state-distillation
//! overhead stays roughly constant (factory count scales sub-linearly in
//! the error rate).

use quest_bench::{header, orders, row, sci};
use quest_core::TechnologyParams;
use quest_estimate::{BandwidthEstimate, Workload};
use quest_surface::SyndromeDesign;

fn main() {
    header(
        "Figure 15: bandwidth savings vs. physical error rate",
        "savings shrink as the error rate improves; distillation overhead ~constant",
    );
    row(&[
        "workload",
        "error rate",
        "distance",
        "phys qubits",
        "MCE savings",
        "total savings",
        "T-factory ratio",
    ]);
    let tech = TechnologyParams::PROJECTED_D;
    let syn = SyndromeDesign::STEANE;
    let mut per_workload: Vec<Vec<f64>> = Vec::new();
    for w in &Workload::ALL {
        let mut series = Vec::new();
        for p in [1e-3, 1e-4, 1e-5] {
            let e = BandwidthEstimate::analyze(w, p, &tech, &syn);
            row(&[
                w.name,
                &sci(p),
                &e.distance.to_string(),
                &sci(e.physical_qubits),
                &format!("10^{:.1}", orders(e.mce_savings())),
                &format!("10^{:.1}", orders(e.cached_savings())),
                &format!("{:.0}", e.t_factory_ratio()),
            ]);
            series.push(e.mce_savings());
        }
        per_workload.push(series);
    }
    println!();
    println!("check: savings strictly decrease as the error rate improves, for every workload");
    for (w, series) in Workload::ALL.iter().zip(&per_workload) {
        assert!(
            series[0] > series[1] && series[1] > series[2],
            "{}: {series:?}",
            w.name
        );
    }
}
