//! Control-processor sizing — the MCE-array bill of materials per
//! workload.
//!
//! A corollary of §4.2's distributed organization: combining the workload
//! footprint with the per-MCE throughput model yields how many MCEs a
//! machine needs, the total JJ budget of their microcode memories, and
//! the total microcode power. The punchline is the power column: the
//! whole array's microcode runs on milliwatts — deliverable at 4 K —
//! where the software-managed baseline demanded hundreds of TB/s of
//! instruction streaming instead.

use quest_bench::{header, row, sci};
use quest_core::TechnologyParams;
use quest_estimate::{analyze_suite, ArrayPlan};
use quest_surface::SyndromeDesign;

fn main() {
    header(
        "Control-processor sizing: MCE array per workload (Projected_D, Steane)",
        "thousands of microwatt engines replace a 100+ TB/s instruction stream",
    );
    let tech = TechnologyParams::PROJECTED_D;
    let syn = SyndromeDesign::STEANE;
    row(&[
        "workload",
        "phys qubits",
        "qubits/MCE",
        "MCEs",
        "total JJs",
        "ucode power",
    ]);
    for e in analyze_suite(1e-4) {
        let plan = ArrayPlan::size(&e, &syn, &tech);
        row(&[
            e.workload.name,
            &sci(plan.physical_qubits),
            &plan.qubits_per_mce.to_string(),
            &plan.mces.to_string(),
            &sci(plan.total_jjs as f64),
            &format!("{:.2} mW", plan.total_power_w * 1e3),
        ]);
        assert!(plan.mces as f64 * plan.qubits_per_mce as f64 >= plan.physical_qubits);
        assert!(
            plan.total_power_w < 0.2,
            "{}: power blew up",
            e.workload.name
        );
    }
    println!();
    println!(
        "check: every workload's full QECC control fits in < 200 mW of JJ microcode \
         (baseline: the same workloads demanded 13–466 TB/s of streamed instructions)"
    );
}
