//! Figure 10 — microcode memory capacity required vs. qubits serviced for
//! the three microcode designs.
//!
//! Paper: RAM scales O(N·log₂N), FIFO scales O(N) (3–4× better), and the
//! unit-cell design is O(1).

use quest_bench::{header, row, sci};
use quest_core::microcode::MicrocodeDesign;
use quest_core::QuestSystem;
use quest_surface::{RotatedLattice, SyndromeDesign};

fn main() {
    header(
        "Figure 10: microcode capacity vs. qubits serviced",
        "RAM O(N log N), FIFO O(N) (3–4x better), unit-cell O(1)",
    );
    let steane = SyndromeDesign::STEANE;
    let opcode_bits = 4.0;
    row(&[
        "qubits",
        "RAM (bits)",
        "FIFO (bits)",
        "unit-cell (bits)",
        "RAM/FIFO",
    ]);
    for n in [16usize, 64, 256, 1024, 4096, 16384, 65536] {
        let ram = MicrocodeDesign::Ram.capacity_bits(n, &steane, opcode_bits);
        let fifo = MicrocodeDesign::Fifo.capacity_bits(n, &steane, opcode_bits);
        let uc = MicrocodeDesign::UnitCell.capacity_bits(n, &steane, opcode_bits);
        row(&[
            &n.to_string(),
            &sci(ram),
            &sci(fifo),
            &sci(uc),
            &format!("{:.2}", ram / fifo),
        ]);
    }
    // Shape checks.
    let uc_small = MicrocodeDesign::UnitCell.capacity_bits(16, &steane, opcode_bits);
    let uc_large = MicrocodeDesign::UnitCell.capacity_bits(65536, &steane, opcode_bits);
    assert_eq!(uc_small, uc_large, "unit-cell capacity must be O(1)");
    let ratio_64k = MicrocodeDesign::Ram.capacity_bits(65536, &steane, opcode_bits)
        / MicrocodeDesign::Fifo.capacity_bits(65536, &steane, opcode_bits);
    println!();
    println!(
        "check: unit-cell capacity constant at {uc_small} bits; RAM/FIFO ratio reaches {ratio_64k:.1} (paper: 3–4x)"
    );
    assert!((3.0..=6.0).contains(&ratio_64k));

    // Unified-engine cross-check: the functional MCE inside a
    // `QuestSystem` built through the fallible unified constructor
    // stores exactly what the FIFO-style model predicts for its tile.
    let sys = QuestSystem::new(3, 0.0).expect("valid parameters");
    let lattice = RotatedLattice::new(3);
    let tile = SyndromeDesign {
        name: "d3-tile",
        cycle_depth: sys.mce().microcode().cycle_len(),
        unit_cell_qubits: lattice.num_qubits(),
        microcode_uops: sys.mce().microcode().cycle_len() * lattice.num_qubits(),
    };
    let model = MicrocodeDesign::Fifo.capacity_bits(lattice.num_qubits(), &tile, opcode_bits);
    assert_eq!(
        sys.mce().microcode().storage_bits() as f64,
        model,
        "functional replay storage must match the capacity model"
    );
    println!(
        "check: functional d=3 MCE microcode stores {} bits, matching the FIFO capacity model",
        sys.mce().microcode().storage_bits()
    );
}
