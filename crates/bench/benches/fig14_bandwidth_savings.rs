//! Figure 14 — global instruction-bandwidth savings of QuEST over the
//! software-managed baseline, per workload, with and without the logical
//! instruction cache.
//!
//! Paper: hardware-managed QECC in the MCEs reduces bandwidth by at least
//! five orders of magnitude; adding the logical instruction cache another
//! three; overall almost eight orders.

use quest_bench::{bandwidth, header, orders, row};
use quest_estimate::analyze_suite;

fn main() {
    header(
        "Figure 14: global bandwidth savings with QuEST (Projected_D, Steane syndrome)",
        "MCE alone ≥10^5x, MCE + logical cache ≈10^8x",
    );
    row(&[
        "workload",
        "baseline",
        "QuEST(MCE)",
        "QuEST+cache",
        "MCE savings",
        "total savings",
    ]);
    let suite = analyze_suite(1e-4);
    for e in &suite {
        row(&[
            e.workload.name,
            &bandwidth(e.baseline),
            &bandwidth(e.quest_mce),
            &bandwidth(e.quest_cached),
            &format!("10^{:.1}", orders(e.mce_savings())),
            &format!("10^{:.1}", orders(e.cached_savings())),
        ]);
    }
    println!();
    let min_mce = suite
        .iter()
        .map(quest_estimate::BandwidthEstimate::mce_savings)
        .fold(f64::INFINITY, f64::min);
    let mean_total = suite
        .iter()
        .map(|e| orders(e.cached_savings()))
        .sum::<f64>()
        / suite.len() as f64;
    println!(
        "check: minimum MCE-only savings 10^{:.1} (paper: ≥10^5); mean total savings 10^{:.1} (paper: ≈10^8)",
        orders(min_mce),
        mean_total
    );
    assert!(min_mce >= 1e5, "MCE savings below five orders");
    assert!((7.0..9.5).contains(&mean_total), "total savings off-shape");
}
