//! Figure 11 — qubits serviced per MCE for the RAM / FIFO / unit-cell
//! microcode designs at a fixed 4 Kb memory, for 1/2/4-channel
//! configurations.
//!
//! Paper anchors: a 4 Kb RAM holds ~48 qubits of QECC instructions; the
//! FIFO design reaches ~120; the unit-cell design becomes
//! bandwidth-limited and gains super-linearly from channels (4 channels =
//! 6x the 1-channel bandwidth).

use quest_bench::{header, row};
use quest_core::microcode::MicrocodeDesign;
use quest_core::throughput::figure11_point;
use quest_core::TechnologyParams;

fn main() {
    header(
        "Figure 11: qubits serviced per MCE (fixed 4 Kb microcode memory)",
        "RAM ~48, FIFO ~120 (capacity-bound, channel-insensitive); unit-cell scales super-linearly with channels",
    );
    let tech = TechnologyParams::PROJECTED_F;
    row(&["design", "1-channel", "2-channel", "4-channel"]);
    let mut results = std::collections::HashMap::new();
    for design in MicrocodeDesign::ALL {
        let pts: Vec<usize> = [1usize, 2, 4]
            .into_iter()
            .map(|ch| figure11_point(design, ch, &tech))
            .collect();
        row(&[
            &design.to_string(),
            &pts[0].to_string(),
            &pts[1].to_string(),
            &pts[2].to_string(),
        ]);
        results.insert(format!("{design}"), pts);
    }
    println!();
    let ram = &results["RAM"];
    let fifo = &results["FIFO"];
    let uc = &results["Unit-cell"];
    println!(
        "check: RAM {} (paper ~48), FIFO {} (paper ~120), unit-cell 4ch/1ch = {:.1}x (paper 6x)",
        ram[0],
        fifo[0],
        uc[2] as f64 / uc[0] as f64
    );
    assert!((40..=55).contains(&ram[0]));
    assert!((100..=130).contains(&fifo[0]));
    assert_eq!(ram[0], ram[2], "RAM must be channel-insensitive");
    assert_eq!(fifo[0], fifo[2], "FIFO must be channel-insensitive");
    let gain = uc[2] as f64 / uc[0] as f64;
    assert!((5.0..7.0).contains(&gain), "super-linear gain {gain}");
}
