//! Ablation — every pluggable decoder backend on identical noise.
//!
//! The paper's master controller runs Fowler's MWPM; we substitute the
//! union-find decoder and must show the substitution preserves
//! behaviour. With the `DecoderBackend` layer the comparison widens to
//! all four backends on the same shots: accuracy (logical error rate),
//! modelled decode cycles, and the hardware-model JJ budget, emitted as
//! `BENCH_decoder_backends.json` at the repo root for trend tracking.
//!
//! Invariants asserted per operating point:
//!
//! * every backend's logical error rate is within statistical noise of
//!   exact matching (validates DESIGN.md substitution #3);
//! * the pipelined-UF hardware model reproduces software union-find's
//!   error rate *bit-for-bit* — it is the same matching, only costed.

use quest_bench::{header, row};
use quest_stabilizer::{SeedableRng, StdRng};
use quest_surface::decoder::{Correction, CostReport, Decoder, DecoderChoice};
use quest_surface::{DecodingGraph, MemoryBasis, MemoryExperiment, MemoryNoise, NodeId};
use std::cell::RefCell;
use std::io::Write as _;

const SHOTS: usize = 400;
const SEED: u64 = 77;
const POINTS: [(usize, f64); 3] = [(3, 5e-3), (3, 1e-2), (5, 5e-3)];

/// Committed snapshot lives at the repo root (two levels above this
/// package), so the path is the same wherever cargo sets the CWD.
const REPORT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_decoder_backends.json"
);

/// Adapts a stateful [`DecoderBackend`] to the read-only [`Decoder`]
/// trait the memory experiment samples through. The backend's cost
/// ledger accumulates across every decode the experiment issues and is
/// read back after the run.
struct BackendAdapter(RefCell<Box<dyn quest_surface::DecoderBackend>>);

impl BackendAdapter {
    fn new(choice: DecoderChoice) -> BackendAdapter {
        BackendAdapter(RefCell::new(choice.backend()))
    }

    fn cost(&self) -> CostReport {
        self.0.borrow().cost()
    }
}

impl Decoder for BackendAdapter {
    fn decode(&self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        self.0.borrow_mut().decode(graph, events)
    }

    fn decode_many(&self, graph: &DecodingGraph, event_sets: &[Vec<NodeId>]) -> Vec<Correction> {
        self.0.borrow_mut().decode_many(graph, event_sets)
    }
}

/// One backend's measurement at one operating point.
struct Sample {
    backend: &'static str,
    distance: usize,
    p: f64,
    logical_rate: f64,
    cost: CostReport,
}

fn main() {
    header(
        "Ablation: decoder backends — accuracy, cycles and JJ budget",
        "every backend preserves decoding quality; the pipelined-UF model matches software UF exactly",
    );
    row(&[
        "backend", "d", "p", "p_L", "decodes", "cycles", "max cyc", "JJs",
    ]);
    let mut samples: Vec<Sample> = Vec::new();
    for (d, p) in POINTS {
        let exp = MemoryExperiment::new(d, 2, MemoryBasis::Z);
        let noise = MemoryNoise::code_capacity(p);
        let mut rates = Vec::new();
        for choice in DecoderChoice::ALL {
            let adapter = BackendAdapter::new(choice);
            let mut rng = StdRng::seed_from_u64(SEED);
            let rate = exp.logical_error_rate(&noise, &adapter, SHOTS, &mut rng);
            let cost = adapter.cost();
            row(&[
                choice.name(),
                &d.to_string(),
                &format!("{p:.0e}"),
                &format!("{rate:.4}"),
                &cost.decodes.to_string(),
                &cost.cycles.to_string(),
                &cost.max_decode_cycles.to_string(),
                &cost.jj_count.to_string(),
            ]);
            rates.push((choice, rate));
            samples.push(Sample {
                backend: choice.name(),
                distance: d,
                p,
                logical_rate: rate,
                cost,
            });
        }
        let find = |c: DecoderChoice| {
            rates
                .iter()
                .find(|&&(ch, _)| ch == c)
                .map_or(f64::NAN, |&(_, r)| r)
        };
        let exact = find(DecoderChoice::Exact);
        for &(choice, rate) in &rates {
            assert!(
                (rate - exact).abs() < 0.05,
                "{choice} diverged from exact matching: {rate} vs {exact} at d={d}, p={p}"
            );
        }
        // The hardware model is the same matching, only costed: its
        // failures must be *identical* to software union-find's, not
        // merely statistically close.
        let uf = find(DecoderChoice::UnionFind);
        let pipelined = find(DecoderChoice::PipelinedUf);
        assert!(
            uf == pipelined,
            "pipelined-UF must reproduce union-find bit-for-bit: {pipelined} vs {uf} at d={d}"
        );
    }
    println!();
    println!(
        "check: all backends track exact matching within statistical noise; \
         pipelined-uf == union-find exactly"
    );
    write_report(&samples);
}

/// Emits the measurements as a small JSON report for CI trend tracking.
/// Written by hand (no serde in the workspace): a flat object with one
/// array of per-backend samples.
fn write_report(samples: &[Sample]) {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str(&format!("  \"shots_per_point\": {SHOTS},\n"));
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"distance\": {}, \"p\": {:e}, \
             \"logical_rate\": {:e}, \"decodes\": {}, \"fallback_decodes\": {}, \
             \"cycles\": {}, \"max_decode_cycles\": {}, \"jj_count\": {}}}{sep}\n",
            s.backend,
            s.distance,
            s.p,
            s.logical_rate,
            s.cost.decodes,
            s.cost.fallback_decodes,
            s.cost.cycles,
            s.cost.max_decode_cycles,
            s.cost.jj_count
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::File::create(REPORT_PATH).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote BENCH_decoder_backends.json"),
        Err(e) => println!("could not write BENCH_decoder_backends.json: {e}"),
    }
}
