//! Ablation — union-find (our global decoder) vs. exact minimum-weight
//! matching (the paper's MWPM) on identical noise.
//!
//! The paper's master controller runs Fowler's MWPM; we substitute the
//! union-find decoder and must show the substitution preserves behaviour:
//! near-identical logical error rates at the operating points that matter.

use quest_bench::{header, row};
use quest_stabilizer::{SeedableRng, StdRng};
use quest_surface::{
    ExactMatchingDecoder, MemoryBasis, MemoryExperiment, MemoryNoise, UnionFindDecoder,
};

fn main() {
    header(
        "Ablation: union-find vs exact MWPM logical error rates",
        "the union-find substitution preserves decoding quality (validates DESIGN.md substitution #3)",
    );
    row(&["d", "p", "shots", "union-find p_L", "exact MWPM p_L"]);
    let shots = 400;
    for (d, p) in [(3usize, 5e-3f64), (3, 1e-2), (5, 5e-3)] {
        let exp = MemoryExperiment::new(d, 2, MemoryBasis::Z);
        let noise = MemoryNoise::code_capacity(p);
        let mut rng = StdRng::seed_from_u64(77);
        let uf = exp.logical_error_rate(&noise, &UnionFindDecoder::new(), shots, &mut rng);
        let mut rng = StdRng::seed_from_u64(77);
        let ex = exp.logical_error_rate(&noise, &ExactMatchingDecoder::new(), shots, &mut rng);
        row(&[
            &d.to_string(),
            &format!("{p:.0e}"),
            &shots.to_string(),
            &format!("{uf:.4}"),
            &format!("{ex:.4}"),
        ]);
        assert!(
            (uf - ex).abs() < 0.05,
            "decoders diverged: UF {uf} vs exact {ex} at d={d}, p={p}"
        );
    }
    println!();
    println!("check: union-find tracks exact matching within statistical noise at every point");
}
