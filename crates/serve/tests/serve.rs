//! Integration tests for the multi-tenant job server: interleaving
//! determinism, quota enforcement, mid-run cancellation, and the retry
//! supervisor (checkpointed resume, deadlines, load shedding).

use quest_runtime::{
    DecoderChoice, Runtime, RuntimeError, RuntimeReport, ShardPanicPlan, WorkloadSpec,
};
use quest_serve::{
    JobEvent, JobOutcome, JobState, RetryPolicy, ServeError, Server, ServerConfig, TenantId,
    TenantQuota,
};
use std::time::Duration;

/// One tenant's job list: distinct seeds, mixed shapes, real noise.
fn tenant_specs(tenant: u32, jobs: u64) -> Vec<WorkloadSpec> {
    (0..jobs)
        .map(|j| {
            WorkloadSpec::memory(
                3,
                2 + (j as usize % 3),
                1 + (j as usize % 2),
                1e-3,
                u64::from(tenant) * 1000 + j,
                20 + 5 * j,
            )
        })
        .collect()
}

fn wait_done(outcome: JobOutcome) -> Box<RuntimeReport> {
    match outcome {
        JobOutcome::Done(report) => report,
        other => panic!("expected Done, got {other:?}"),
    }
}

/// The tentpole guarantee: a job's `RunReport` depends only on its own
/// spec (seed included) — never on the worker that ran it, the pool
/// size, or what other tenants' jobs interleaved with it. Three tenants
/// submit four jobs each, concurrently, at pool sizes 1, 2 and 4; every
/// report must be bit-identical to a solo `Runtime::run` of the same
/// spec.
#[test]
fn interleaved_jobs_match_solo_runs_bit_for_bit() {
    const TENANTS: u32 = 3;
    const JOBS: u64 = 4;
    let runtime = Runtime::new();
    let solo: Vec<Vec<_>> = (0..TENANTS)
        .map(|t| {
            tenant_specs(t, JOBS)
                .iter()
                .map(|spec| runtime.run(spec).expect("solo run").report)
                .collect()
        })
        .collect();
    for workers in [1, 2, 4] {
        let server = Server::start(ServerConfig::default().with_workers(workers));
        // Each tenant submits from its own thread so submissions race.
        let reports: Vec<Vec<_>> = std::thread::scope(|scope| {
            let submitters: Vec<_> = (0..TENANTS)
                .map(|t| {
                    let server = &server;
                    scope.spawn(move || {
                        let handles: Vec<_> = tenant_specs(t, JOBS)
                            .into_iter()
                            .map(|spec| server.submit(TenantId(t), spec).expect("admit"))
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| wait_done(h.wait()).report.clone())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            submitters
                .into_iter()
                .map(|s| s.join().expect("submitter thread"))
                .collect()
        });
        let ledger = server.shutdown();
        assert_eq!(ledger.jobs_done(), u64::from(TENANTS) * JOBS);
        for (t, tenant_reports) in reports.iter().enumerate() {
            for (j, report) in tenant_reports.iter().enumerate() {
                assert_eq!(
                    *report, solo[t][j],
                    "tenant {t} job {j} diverged from its solo run at {workers} workers"
                );
            }
        }
    }
}

/// Quotas bite per tenant and rejections are typed, panic-free, and
/// ledger-visible; other tenants are unaffected.
#[test]
fn quotas_reject_typed_and_per_tenant() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let limited = TenantId(0);
    let free = TenantId(1);
    server.set_quota(
        limited,
        TenantQuota {
            max_total_shots: 5,
            ..TenantQuota::UNLIMITED
        },
    );
    // 4 tiles = 4 shots per job: the first fits the budget of 5, the
    // second does not.
    let spec = WorkloadSpec::memory(3, 4, 1, 1e-3, 1, 10);
    let first = server.submit(limited, spec.clone()).expect("within quota");
    let err = server
        .submit(limited, spec.clone())
        .expect_err("over quota");
    assert!(
        matches!(
            err,
            ServeError::QuotaShots {
                limit: 5,
                used: 4,
                requested: 4,
                ..
            }
        ),
        "{err:?}"
    );
    // The other tenant is untouched by tenant 0's budget.
    let other = server.submit(free, spec).expect("other tenant unaffected");
    assert!(matches!(first.wait(), JobOutcome::Done(_)));
    assert!(matches!(other.wait(), JobOutcome::Done(_)));
    let ledger = server.shutdown();
    let section = ledger.tenant(limited).expect("limited tenant section");
    assert_eq!(section.jobs_rejected, 1);
    assert_eq!(section.jobs_done, 1);
    assert_eq!(section.shots_done, 4);
    assert_eq!(ledger.tenant(free).expect("free tenant").jobs_rejected, 0);
}

/// A queued-job quota frees its slot when a worker picks the job up.
#[test]
fn queued_job_quota_tracks_the_queue_not_the_run() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let tenant = TenantId(3);
    server.set_quota(
        tenant,
        TenantQuota {
            max_queued_jobs: 1,
            ..TenantQuota::UNLIMITED
        },
    );
    let spec = WorkloadSpec::memory(3, 2, 1, 1e-3, 9, 200);
    let first = server.submit(tenant, spec.clone()).expect("first job");
    // Either the second submission is refused (first still queued) or it
    // is admitted because the worker already picked the first job up;
    // both are legal — what is not legal is a panic or a wedged pool.
    let second = server.submit(tenant, spec.clone());
    if let Err(e) = &second {
        assert!(
            matches!(e, ServeError::QuotaQueuedJobs { limit: 1, .. }),
            "{e:?}"
        );
    }
    assert!(matches!(first.wait(), JobOutcome::Done(_)));
    if let Ok(handle) = second {
        assert!(matches!(handle.wait(), JobOutcome::Done(_)));
    }
    let _ = server.shutdown();
}

/// Mid-run cancellation: the job stops at a cooperative checkpoint, the
/// worker pool survives to run later jobs, and the ledger records the
/// cancellation with a run-latency sample.
#[test]
fn mid_run_cancellation_leaves_the_pool_healthy() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let tenant = TenantId(0);
    // Long enough that cancellation lands mid-run.
    let long = WorkloadSpec::memory(3, 2, 1, 1e-3, 42, 50_000);
    let victim = server.submit(tenant, long).expect("admit victim");
    // Cancel once the job is demonstrably running.
    let mut saw_running = false;
    while let Some(event) = victim.next_event() {
        match event {
            JobEvent::Running { .. } => {
                saw_running = true;
                victim.cancel();
                break;
            }
            JobEvent::Queued { .. } | JobEvent::Admitted { .. } => {}
            other => panic!("unexpected event before running: {other:?}"),
        }
    }
    assert!(saw_running, "victim never reported running");
    assert!(matches!(victim.wait(), JobOutcome::Cancelled));
    // The pool survives: a fresh job on the same worker completes.
    let after = server
        .submit(tenant, WorkloadSpec::memory(3, 2, 1, 1e-3, 43, 20))
        .expect("admit follow-up");
    let report = wait_done(after.wait());
    assert_eq!(report.report.qecc_cycles, 20);
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(section.jobs_cancelled, 1);
    assert_eq!(section.jobs_done, 1);
    assert_eq!(
        section.run_latency.samples, 2,
        "a mid-run cancellation contributes a run-latency sample"
    );
}

/// Cancelling a job that is still queued drops it at pickup without
/// running a cycle, and the event stream ends with `Cancelled`.
#[test]
fn queued_cancellation_never_runs() {
    // Single worker pinned on a long job; the second job waits.
    let server = Server::start(ServerConfig::default().with_workers(1));
    let tenant = TenantId(5);
    let blocker = server
        .submit(tenant, WorkloadSpec::memory(3, 2, 1, 1e-3, 1, 20_000))
        .expect("admit blocker");
    let queued = server
        .submit(tenant, WorkloadSpec::memory(3, 2, 1, 1e-3, 2, 20))
        .expect("admit queued");
    queued.cancel();
    blocker.cancel();
    assert!(matches!(queued.wait(), JobOutcome::Cancelled));
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(section.jobs_cancelled, 2);
    assert_eq!(section.jobs_done, 0);
}

/// The progress stream is ordered and complete: queued, admitted, a
/// monotone ramp of running fractions reaching 1, then done.
#[test]
fn event_stream_is_ordered_and_monotone() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let handle = server
        .submit(TenantId(0), WorkloadSpec::memory(3, 2, 1, 1e-3, 11, 400))
        .expect("admit");
    let mut events = Vec::new();
    while let Some(event) = handle.next_event() {
        let terminal = matches!(
            event,
            JobEvent::Done { .. } | JobEvent::Cancelled { .. } | JobEvent::Failed { .. }
        );
        events.push(event);
        if terminal {
            break;
        }
    }
    assert!(matches!(events.first(), Some(JobEvent::Queued { .. })));
    assert!(matches!(events.get(1), Some(JobEvent::Admitted { .. })));
    let fractions: Vec<f64> = events
        .iter()
        .filter_map(|e| match e {
            JobEvent::Running { fraction, .. } => Some(*fraction),
            _ => None,
        })
        .collect();
    assert!(!fractions.is_empty(), "no running progress seen");
    assert!(
        fractions.windows(2).all(|w| w[0] <= w[1]),
        "progress must be monotone: {fractions:?}"
    );
    assert_eq!(*fractions.last().expect("nonempty"), 1.0);
    assert!(matches!(events.last(), Some(JobEvent::Done { .. })));
    assert_eq!(handle.state(), JobState::Done);
    let _ = server.shutdown();
}

/// Drain-on-shutdown finishes every admitted job and the final ledger's
/// throughput figures are populated.
#[test]
fn shutdown_reports_throughput_over_uptime() {
    let server = Server::start(ServerConfig::default().with_workers(2));
    for i in 0..6u64 {
        server
            .submit(
                TenantId(i as u32 % 2),
                WorkloadSpec::memory(3, 2, 1, 1e-3, 100 + i, 20),
            )
            .expect("admit");
    }
    let ledger = server.shutdown();
    assert_eq!(ledger.jobs_done(), 6);
    assert_eq!(ledger.shots_done(), 12);
    assert!(ledger.uptime > Duration::ZERO);
    assert!(ledger.jobs_per_sec() > 0.0);
    assert!(ledger.shots_per_sec() > 0.0);
    assert_eq!(ledger.workers, 2);
}

/// The ledger attributes completed jobs to the decoder backend each job
/// selected, per tenant and sorted by backend name.
#[test]
fn ledger_reports_jobs_by_decoder_backend() {
    let server = Server::start(ServerConfig::default().with_workers(2));
    let tenant = TenantId(0);
    for (i, decoder) in [
        DecoderChoice::UnionFind,
        DecoderChoice::PipelinedUf,
        DecoderChoice::PipelinedUf,
    ]
    .into_iter()
    .enumerate()
    {
        let mut spec = WorkloadSpec::memory(3, 2, 1, 1e-3, 300 + i as u64, 15);
        spec.decoder = decoder;
        server.submit(tenant, spec).expect("admit");
    }
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(
        section.jobs_by_decoder,
        vec![
            ("pipelined-uf".to_string(), 2),
            ("union-find".to_string(), 1),
        ]
    );
    let text = ledger.to_string();
    assert!(text.contains("pipelined-uf=2"), "{text}");
}

/// The supervision round trip: a job whose shard worker is scheduled to
/// crash mid-run is retried from its latest checkpoint and completes
/// with a report bit-identical to a solo run of the disarmed spec. The
/// event stream carries the `Retrying` hop and the ledger records the
/// retry and the resumed cycles.
#[test]
fn retry_resumes_to_a_bit_identical_report() {
    let tenant = TenantId(0);
    let mut spec = WorkloadSpec::memory(3, 2, 2, 1e-3, 77, 30);
    spec.faults.shard_panic = Some(ShardPanicPlan {
        shard: 1,
        after_cycles: 10,
    });
    let mut disarmed = spec.clone();
    disarmed.faults.shard_panic = None;
    let solo = Runtime::new().run(&disarmed).expect("solo baseline");

    let server = Server::start(ServerConfig::default().with_workers(1));
    let policy = RetryPolicy::default()
        .with_max_attempts(2)
        .with_checkpoint_every(4);
    let handle = server
        .submit_with_policy(tenant, spec, policy)
        .expect("admit");
    let mut retrying = Vec::new();
    let report = loop {
        match handle.next_event().expect("stream stays open") {
            JobEvent::Retrying { attempt, error, .. } => {
                assert!(
                    matches!(error, RuntimeError::ShardFailed { shard: 1, .. }),
                    "{error:?}"
                );
                retrying.push(attempt);
            }
            JobEvent::Done { report, .. } => break report,
            JobEvent::Cancelled { .. }
            | JobEvent::Failed { .. }
            | JobEvent::DeadlineExceeded { .. } => panic!("job must retry to Done"),
            _ => {}
        }
    };
    assert_eq!(retrying, vec![2], "exactly one retry, announcing attempt 2");
    assert_eq!(
        report.report, solo.report,
        "resumed retry must match the disarmed solo run bit for bit"
    );
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(section.jobs_done, 1);
    assert_eq!(section.jobs_retried, 1);
    assert_eq!(section.jobs_failed, 0);
    assert_eq!(
        section.cycles_resumed, 8,
        "cadence 4, crash at cycle 10: the retry resumes from the cycle-8 checkpoint"
    );
    assert_eq!(
        section.queue_latency.samples, 2,
        "the retry re-queues and contributes a second queue sample"
    );
}

/// Without a retry budget the same scheduled crash is terminal: the
/// stream ends in `Failed` with the typed runtime error.
#[test]
fn unsupervised_crash_lands_in_failed() {
    let tenant = TenantId(1);
    let mut spec = WorkloadSpec::memory(3, 2, 2, 1e-3, 78, 30);
    spec.faults.shard_panic = Some(ShardPanicPlan {
        shard: 0,
        after_cycles: 5,
    });
    let server = Server::start(ServerConfig::default().with_workers(1));
    let handle = server.submit(tenant, spec).expect("admit");
    match handle.wait() {
        JobOutcome::Failed(RuntimeError::ShardFailed { shard: 0, .. }) => {}
        other => panic!("expected ShardFailed, got {other:?}"),
    }
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(section.jobs_failed, 1);
    assert_eq!(section.jobs_retried, 0);
}

/// A QECC-cycle deadline terminates a runaway job with the typed
/// `DeadlineExceeded` outcome and its own ledger counter.
#[test]
fn deadline_exceeded_is_typed_and_ledgered() {
    let tenant = TenantId(2);
    let server = Server::start(ServerConfig::default().with_workers(1));
    let spec = WorkloadSpec::memory(3, 2, 1, 1e-3, 79, 50_000);
    let policy = RetryPolicy::default().with_deadline_cycles(10);
    let handle = server
        .submit_with_policy(tenant, spec, policy)
        .expect("admit");
    match handle.wait() {
        JobOutcome::DeadlineExceeded { cycles_done } => {
            assert!(cycles_done >= 10, "budget was 10, did {cycles_done}");
            assert!(cycles_done < 50_000, "must stop well short of completion");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(section.jobs_deadline_exceeded, 1);
    assert_eq!(
        section.jobs_cancelled, 0,
        "a deadline is not a cancellation"
    );
}

/// A zero backlog budget sheds every submission with the typed
/// `Overloaded` error and its `RetryAfter` hint, and the ledger counts
/// the shed.
#[test]
fn overload_sheds_with_a_typed_retry_hint() {
    let tenant = TenantId(3);
    let server = Server::start(
        ServerConfig::default()
            .with_workers(1)
            .with_max_backlog_cycles(0),
    );
    let err = server
        .submit(tenant, WorkloadSpec::memory(3, 2, 1, 1e-3, 80, 20))
        .expect_err("zero budget sheds everything");
    match err {
        ServeError::Overloaded {
            backlog_cycles,
            limit,
            retry_after,
        } => {
            assert_eq!(backlog_cycles, 0);
            assert_eq!(limit, 0);
            assert!(retry_after.slots >= 1);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(section.jobs_shed, 1);
    assert_eq!(section.jobs_rejected, 1);
}

/// The blocking `submit` rides out a full queue instead of failing: a
/// submitter thread parks until the stalled worker frees a slot, and
/// every job still completes exactly once.
#[test]
fn blocking_submit_waits_out_backpressure() {
    let tenant = TenantId(4);
    let server = Server::start(ServerConfig::default().with_workers(1).with_queue_depth(1));
    // Worker busy on the blocker; one job fills the 1-deep queue.
    let blocker = server
        .submit(tenant, WorkloadSpec::memory(3, 2, 1, 1e-3, 81, 50_000))
        .expect("admit blocker");
    while !matches!(blocker.state(), JobState::Running { .. }) {
        std::thread::yield_now();
    }
    let queued = server
        .submit(tenant, WorkloadSpec::memory(3, 2, 1, 1e-3, 82, 10))
        .expect("admit queued");
    let outcome = std::thread::scope(|scope| {
        let submitter = scope.spawn(|| {
            // Blocks until the blocker's cancellation frees the slot.
            server
                .submit(tenant, WorkloadSpec::memory(3, 2, 1, 1e-3, 83, 10))
                .expect("blocking submit succeeds once a slot frees")
                .wait()
        });
        std::thread::sleep(Duration::from_millis(50));
        blocker.cancel();
        submitter.join().expect("submitter thread")
    });
    assert!(matches!(outcome, JobOutcome::Done(_)), "{outcome:?}");
    assert!(matches!(queued.wait(), JobOutcome::Done(_)));
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(section.jobs_done, 2);
    assert_eq!(section.jobs_cancelled, 1);
    assert_eq!(section.jobs_rejected, 0, "nothing was refused");
}

/// In-band fault recovery (a killed decode worker, respawned by the
/// pool) surfaces in the tenant's ledger section without any retry.
#[test]
fn recovery_footprint_reaches_the_ledger() {
    let tenant = TenantId(5);
    let mut spec = WorkloadSpec::memory(5, 4, 2, 2e-2, 20260808, 30);
    spec.faults.kill_decode_worker_after_jobs = Some(1);
    let server = Server::start(ServerConfig::default().with_workers(1));
    let handle = server.submit(tenant, spec).expect("admit");
    assert!(matches!(handle.wait(), JobOutcome::Done(_)));
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(section.jobs_done, 1);
    assert_eq!(section.jobs_retried, 0, "respawn is in-band, not a retry");
    assert!(
        section.recovery.decode_worker_deaths >= 1,
        "the kill drill must fire: {:?}",
        section.recovery
    );
    assert_eq!(
        section.recovery.decode_worker_respawns,
        section.recovery.decode_worker_deaths
    );
}
