//! Integration tests for the multi-tenant job server: interleaving
//! determinism, quota enforcement, and mid-run cancellation.

use quest_runtime::{DecoderChoice, Runtime, RuntimeReport, WorkloadSpec};
use quest_serve::{
    JobEvent, JobOutcome, JobState, ServeError, Server, ServerConfig, TenantId, TenantQuota,
};
use std::time::Duration;

/// One tenant's job list: distinct seeds, mixed shapes, real noise.
fn tenant_specs(tenant: u32, jobs: u64) -> Vec<WorkloadSpec> {
    (0..jobs)
        .map(|j| {
            WorkloadSpec::memory(
                3,
                2 + (j as usize % 3),
                1 + (j as usize % 2),
                1e-3,
                u64::from(tenant) * 1000 + j,
                20 + 5 * j,
            )
        })
        .collect()
}

fn wait_done(outcome: JobOutcome) -> Box<RuntimeReport> {
    match outcome {
        JobOutcome::Done(report) => report,
        other => panic!("expected Done, got {other:?}"),
    }
}

/// The tentpole guarantee: a job's `RunReport` depends only on its own
/// spec (seed included) — never on the worker that ran it, the pool
/// size, or what other tenants' jobs interleaved with it. Three tenants
/// submit four jobs each, concurrently, at pool sizes 1, 2 and 4; every
/// report must be bit-identical to a solo `Runtime::run` of the same
/// spec.
#[test]
fn interleaved_jobs_match_solo_runs_bit_for_bit() {
    const TENANTS: u32 = 3;
    const JOBS: u64 = 4;
    let runtime = Runtime::new();
    let solo: Vec<Vec<_>> = (0..TENANTS)
        .map(|t| {
            tenant_specs(t, JOBS)
                .iter()
                .map(|spec| runtime.run(spec).expect("solo run").report)
                .collect()
        })
        .collect();
    for workers in [1, 2, 4] {
        let server = Server::start(ServerConfig::default().with_workers(workers));
        // Each tenant submits from its own thread so submissions race.
        let reports: Vec<Vec<_>> = std::thread::scope(|scope| {
            let submitters: Vec<_> = (0..TENANTS)
                .map(|t| {
                    let server = &server;
                    scope.spawn(move || {
                        let handles: Vec<_> = tenant_specs(t, JOBS)
                            .into_iter()
                            .map(|spec| server.submit(TenantId(t), spec).expect("admit"))
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| wait_done(h.wait()).report.clone())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            submitters
                .into_iter()
                .map(|s| s.join().expect("submitter thread"))
                .collect()
        });
        let ledger = server.shutdown();
        assert_eq!(ledger.jobs_done(), u64::from(TENANTS) * JOBS);
        for (t, tenant_reports) in reports.iter().enumerate() {
            for (j, report) in tenant_reports.iter().enumerate() {
                assert_eq!(
                    *report, solo[t][j],
                    "tenant {t} job {j} diverged from its solo run at {workers} workers"
                );
            }
        }
    }
}

/// Quotas bite per tenant and rejections are typed, panic-free, and
/// ledger-visible; other tenants are unaffected.
#[test]
fn quotas_reject_typed_and_per_tenant() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let limited = TenantId(0);
    let free = TenantId(1);
    server.set_quota(
        limited,
        TenantQuota {
            max_total_shots: 5,
            ..TenantQuota::UNLIMITED
        },
    );
    // 4 tiles = 4 shots per job: the first fits the budget of 5, the
    // second does not.
    let spec = WorkloadSpec::memory(3, 4, 1, 1e-3, 1, 10);
    let first = server.submit(limited, spec.clone()).expect("within quota");
    let err = server
        .submit(limited, spec.clone())
        .expect_err("over quota");
    assert!(
        matches!(
            err,
            ServeError::QuotaShots {
                limit: 5,
                used: 4,
                requested: 4,
                ..
            }
        ),
        "{err:?}"
    );
    // The other tenant is untouched by tenant 0's budget.
    let other = server.submit(free, spec).expect("other tenant unaffected");
    assert!(matches!(first.wait(), JobOutcome::Done(_)));
    assert!(matches!(other.wait(), JobOutcome::Done(_)));
    let ledger = server.shutdown();
    let section = ledger.tenant(limited).expect("limited tenant section");
    assert_eq!(section.jobs_rejected, 1);
    assert_eq!(section.jobs_done, 1);
    assert_eq!(section.shots_done, 4);
    assert_eq!(ledger.tenant(free).expect("free tenant").jobs_rejected, 0);
}

/// A queued-job quota frees its slot when a worker picks the job up.
#[test]
fn queued_job_quota_tracks_the_queue_not_the_run() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let tenant = TenantId(3);
    server.set_quota(
        tenant,
        TenantQuota {
            max_queued_jobs: 1,
            ..TenantQuota::UNLIMITED
        },
    );
    let spec = WorkloadSpec::memory(3, 2, 1, 1e-3, 9, 200);
    let first = server.submit(tenant, spec.clone()).expect("first job");
    // Either the second submission is refused (first still queued) or it
    // is admitted because the worker already picked the first job up;
    // both are legal — what is not legal is a panic or a wedged pool.
    let second = server.submit(tenant, spec.clone());
    if let Err(e) = &second {
        assert!(
            matches!(e, ServeError::QuotaQueuedJobs { limit: 1, .. }),
            "{e:?}"
        );
    }
    assert!(matches!(first.wait(), JobOutcome::Done(_)));
    if let Ok(handle) = second {
        assert!(matches!(handle.wait(), JobOutcome::Done(_)));
    }
    server.shutdown();
}

/// Mid-run cancellation: the job stops at a cooperative checkpoint, the
/// worker pool survives to run later jobs, and the ledger records the
/// cancellation with a run-latency sample.
#[test]
fn mid_run_cancellation_leaves_the_pool_healthy() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let tenant = TenantId(0);
    // Long enough that cancellation lands mid-run.
    let long = WorkloadSpec::memory(3, 2, 1, 1e-3, 42, 50_000);
    let victim = server.submit(tenant, long).expect("admit victim");
    // Cancel once the job is demonstrably running.
    let mut saw_running = false;
    while let Some(event) = victim.next_event() {
        match event {
            JobEvent::Running { .. } => {
                saw_running = true;
                victim.cancel();
                break;
            }
            JobEvent::Queued { .. } | JobEvent::Admitted { .. } => {}
            other => panic!("unexpected event before running: {other:?}"),
        }
    }
    assert!(saw_running, "victim never reported running");
    assert!(matches!(victim.wait(), JobOutcome::Cancelled));
    // The pool survives: a fresh job on the same worker completes.
    let after = server
        .submit(tenant, WorkloadSpec::memory(3, 2, 1, 1e-3, 43, 20))
        .expect("admit follow-up");
    let report = wait_done(after.wait());
    assert_eq!(report.report.qecc_cycles, 20);
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(section.jobs_cancelled, 1);
    assert_eq!(section.jobs_done, 1);
    assert_eq!(
        section.run_latency.samples, 2,
        "a mid-run cancellation contributes a run-latency sample"
    );
}

/// Cancelling a job that is still queued drops it at pickup without
/// running a cycle, and the event stream ends with `Cancelled`.
#[test]
fn queued_cancellation_never_runs() {
    // Single worker pinned on a long job; the second job waits.
    let server = Server::start(ServerConfig::default().with_workers(1));
    let tenant = TenantId(5);
    let blocker = server
        .submit(tenant, WorkloadSpec::memory(3, 2, 1, 1e-3, 1, 20_000))
        .expect("admit blocker");
    let queued = server
        .submit(tenant, WorkloadSpec::memory(3, 2, 1, 1e-3, 2, 20))
        .expect("admit queued");
    queued.cancel();
    blocker.cancel();
    assert!(matches!(queued.wait(), JobOutcome::Cancelled));
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(section.jobs_cancelled, 2);
    assert_eq!(section.jobs_done, 0);
}

/// The progress stream is ordered and complete: queued, admitted, a
/// monotone ramp of running fractions reaching 1, then done.
#[test]
fn event_stream_is_ordered_and_monotone() {
    let server = Server::start(ServerConfig::default().with_workers(1));
    let handle = server
        .submit(TenantId(0), WorkloadSpec::memory(3, 2, 1, 1e-3, 11, 400))
        .expect("admit");
    let mut events = Vec::new();
    while let Some(event) = handle.next_event() {
        let terminal = matches!(
            event,
            JobEvent::Done { .. } | JobEvent::Cancelled { .. } | JobEvent::Failed { .. }
        );
        events.push(event);
        if terminal {
            break;
        }
    }
    assert!(matches!(events.first(), Some(JobEvent::Queued { .. })));
    assert!(matches!(events.get(1), Some(JobEvent::Admitted { .. })));
    let fractions: Vec<f64> = events
        .iter()
        .filter_map(|e| match e {
            JobEvent::Running { fraction, .. } => Some(*fraction),
            _ => None,
        })
        .collect();
    assert!(!fractions.is_empty(), "no running progress seen");
    assert!(
        fractions.windows(2).all(|w| w[0] <= w[1]),
        "progress must be monotone: {fractions:?}"
    );
    assert_eq!(*fractions.last().expect("nonempty"), 1.0);
    assert!(matches!(events.last(), Some(JobEvent::Done { .. })));
    assert_eq!(handle.state(), JobState::Done);
    server.shutdown();
}

/// Drain-on-shutdown finishes every admitted job and the final ledger's
/// throughput figures are populated.
#[test]
fn shutdown_reports_throughput_over_uptime() {
    let server = Server::start(ServerConfig::default().with_workers(2));
    for i in 0..6u64 {
        server
            .submit(
                TenantId(i as u32 % 2),
                WorkloadSpec::memory(3, 2, 1, 1e-3, 100 + i, 20),
            )
            .expect("admit");
    }
    let ledger = server.shutdown();
    assert_eq!(ledger.jobs_done(), 6);
    assert_eq!(ledger.shots_done(), 12);
    assert!(ledger.uptime > Duration::ZERO);
    assert!(ledger.jobs_per_sec() > 0.0);
    assert!(ledger.shots_per_sec() > 0.0);
    assert_eq!(ledger.workers, 2);
}

/// The ledger attributes completed jobs to the decoder backend each job
/// selected, per tenant and sorted by backend name.
#[test]
fn ledger_reports_jobs_by_decoder_backend() {
    let server = Server::start(ServerConfig::default().with_workers(2));
    let tenant = TenantId(0);
    for (i, decoder) in [
        DecoderChoice::UnionFind,
        DecoderChoice::PipelinedUf,
        DecoderChoice::PipelinedUf,
    ]
    .into_iter()
    .enumerate()
    {
        let mut spec = WorkloadSpec::memory(3, 2, 1, 1e-3, 300 + i as u64, 15);
        spec.decoder = decoder;
        server.submit(tenant, spec).expect("admit");
    }
    let ledger = server.shutdown();
    let section = ledger.tenant(tenant).expect("tenant section");
    assert_eq!(
        section.jobs_by_decoder,
        vec![
            ("pipelined-uf".to_string(), 2),
            ("union-find".to_string(), 1),
        ]
    );
    let text = ledger.to_string();
    assert!(text.contains("pipelined-uf=2"), "{text}");
}
