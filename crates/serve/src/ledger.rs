//! The server ledger: per-tenant counters and latency samples.
//!
//! Workers record into the ledger as jobs move through the pipeline;
//! `ServerLedger::report` snapshots it into the plain-data
//! [`ServeReport`] defined in `quest-core`. Sections are keyed through a
//! [`BTreeMap`], so a report's tenant order is the tenant-id order — no
//! iteration-order nondeterminism reaches the report (QL02).
//!
//! Latencies are wall-clock observability, measured by the callers with
//! the runtime's `Stopwatch` (the workspace's one sanctioned clock
//! boundary) and handed in as plain [`Duration`]s. Nothing in the
//! ledger feeds back into job execution.

use quest_core::{LatencySummary, RecoveryStats, ServeReport, TenantId, TenantServeStats};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// One tenant's accumulating section.
#[derive(Debug, Default)]
struct TenantEntry {
    jobs_admitted: u64,
    jobs_rejected: u64,
    jobs_done: u64,
    jobs_cancelled: u64,
    jobs_failed: u64,
    jobs_deadline_exceeded: u64,
    jobs_retried: u64,
    jobs_shed: u64,
    shots_done: u64,
    /// QECC cycles the tenant's retries resumed from checkpoints instead
    /// of replaying (summed over every resumed attempt).
    cycles_resumed: u64,
    /// Fault-recovery counters absorbed from the tenant's completed
    /// runs: what the machinery survived on this tenant's behalf.
    recovery: RecoveryStats,
    queue_samples: Vec<Duration>,
    run_samples: Vec<Duration>,
    /// Completed jobs keyed by decoder-backend name (BTreeMap: the
    /// report's per-decoder order is the name order, QL02).
    jobs_by_decoder: BTreeMap<&'static str, u64>,
}

/// The live, lock-guarded ledger.
#[derive(Debug, Default)]
pub(crate) struct ServerLedger {
    tenants: Mutex<BTreeMap<TenantId, TenantEntry>>,
}

impl ServerLedger {
    fn with<R>(&self, tenant: TenantId, f: impl FnOnce(&mut TenantEntry) -> R) -> R {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        f(tenants.entry(tenant).or_default())
    }

    /// A job passed admission and was enqueued.
    pub(crate) fn admitted(&self, tenant: TenantId) {
        self.with(tenant, |t| {
            t.jobs_admitted = t.jobs_admitted.saturating_add(1);
        });
    }

    /// A job was rejected at admission (quota, validation or
    /// backpressure).
    pub(crate) fn rejected(&self, tenant: TenantId) {
        self.with(tenant, |t| {
            t.jobs_rejected = t.jobs_rejected.saturating_add(1);
        });
    }

    /// A worker picked a job up `queue_latency` after submission.
    pub(crate) fn started(&self, tenant: TenantId, queue_latency: Duration) {
        self.with(tenant, |t| t.queue_samples.push(queue_latency));
    }

    /// A job ran to completion in `run_latency`, producing `shots`
    /// logical readouts through the `decoder` backend; `recovery` is the
    /// run's fault-recovery footprint, absorbed into the tenant section.
    pub(crate) fn done(
        &self,
        tenant: TenantId,
        run_latency: Duration,
        shots: u64,
        decoder: &'static str,
        recovery: &RecoveryStats,
    ) {
        self.with(tenant, |t| {
            t.jobs_done = t.jobs_done.saturating_add(1);
            t.shots_done = t.shots_done.saturating_add(shots);
            t.run_samples.push(run_latency);
            t.recovery.absorb(recovery);
            *t.jobs_by_decoder.entry(decoder).or_default() += 1;
        });
    }

    /// A job was cancelled. `run_latency` is `Some` when the job had
    /// started (cancelled mid-run), `None` when it died in the queue.
    pub(crate) fn cancelled(&self, tenant: TenantId, run_latency: Option<Duration>) {
        self.with(tenant, |t| {
            t.jobs_cancelled = t.jobs_cancelled.saturating_add(1);
            if let Some(latency) = run_latency {
                t.run_samples.push(latency);
            }
        });
    }

    /// A job failed after running for `run_latency`.
    pub(crate) fn failed(&self, tenant: TenantId, run_latency: Duration) {
        self.with(tenant, |t| {
            t.jobs_failed = t.jobs_failed.saturating_add(1);
            t.run_samples.push(run_latency);
        });
    }

    /// A job's QECC-cycle deadline tripped after `run_latency`.
    pub(crate) fn deadline_exceeded(&self, tenant: TenantId, run_latency: Duration) {
        self.with(tenant, |t| {
            t.jobs_deadline_exceeded = t.jobs_deadline_exceeded.saturating_add(1);
            t.run_samples.push(run_latency);
        });
    }

    /// An attempt failed with a retryable error and the supervisor
    /// re-enqueued the job.
    pub(crate) fn retried(&self, tenant: TenantId) {
        self.with(tenant, |t| {
            t.jobs_retried = t.jobs_retried.saturating_add(1);
        });
    }

    /// A submission was shed at admission because the server's backlog
    /// bound was exceeded.
    pub(crate) fn shed(&self, tenant: TenantId) {
        self.with(tenant, |t| t.jobs_shed = t.jobs_shed.saturating_add(1));
    }

    /// A retry attempt resumed from a checkpoint, skipping the replay of
    /// `cycles` already-executed QECC cycles.
    pub(crate) fn resumed(&self, tenant: TenantId, cycles: u64) {
        self.with(tenant, |t| {
            t.cycles_resumed = t.cycles_resumed.saturating_add(cycles);
        });
    }

    /// Snapshots the ledger into a report (sorted by tenant id).
    pub(crate) fn report(&self, workers: usize, uptime: Duration) -> ServeReport {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let sections = tenants
            .iter_mut()
            .map(|(&id, entry)| {
                (
                    id,
                    TenantServeStats {
                        jobs_admitted: entry.jobs_admitted,
                        jobs_rejected: entry.jobs_rejected,
                        jobs_done: entry.jobs_done,
                        jobs_cancelled: entry.jobs_cancelled,
                        jobs_failed: entry.jobs_failed,
                        jobs_deadline_exceeded: entry.jobs_deadline_exceeded,
                        jobs_retried: entry.jobs_retried,
                        jobs_shed: entry.jobs_shed,
                        cycles_resumed: entry.cycles_resumed,
                        recovery: entry.recovery,
                        shots_done: entry.shots_done,
                        queue_latency: LatencySummary::from_samples(&mut entry.queue_samples),
                        run_latency: LatencySummary::from_samples(&mut entry.run_samples),
                        jobs_by_decoder: entry
                            .jobs_by_decoder
                            .iter()
                            .map(|(&name, &n)| (name.to_string(), n))
                            .collect(),
                    },
                )
            })
            .collect();
        ServeReport {
            tenants: sections,
            workers,
            uptime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn ledger_accumulates_per_tenant() {
        let ledger = ServerLedger::default();
        let (a, b) = (TenantId(0), TenantId(1));
        ledger.admitted(a);
        ledger.admitted(a);
        ledger.admitted(b);
        ledger.rejected(b);
        ledger.started(a, ms(5));
        ledger.done(a, ms(50), 4, "union-find", &RecoveryStats::default());
        ledger.started(a, ms(15));
        ledger.cancelled(a, Some(ms(20)));
        ledger.cancelled(b, None);
        let report = ledger.report(2, Duration::from_secs(1));
        assert_eq!(report.workers, 2);
        let ta = report.tenant(a).unwrap();
        assert_eq!(ta.jobs_admitted, 2);
        assert_eq!(ta.jobs_done, 1);
        assert_eq!(ta.jobs_cancelled, 1);
        assert_eq!(ta.shots_done, 4);
        assert_eq!(ta.queue_latency.samples, 2);
        assert_eq!(ta.queue_latency.max, ms(15));
        assert_eq!(ta.run_latency.samples, 2);
        assert_eq!(ta.jobs_by_decoder, vec![("union-find".to_string(), 1)]);
        let tb = report.tenant(b).unwrap();
        assert_eq!(tb.jobs_rejected, 1);
        assert_eq!(tb.jobs_cancelled, 1);
        assert_eq!(
            tb.run_latency.samples, 0,
            "queued cancellation has no run sample"
        );
        // Tenant order is id order.
        assert_eq!(report.tenants[0].0, a);
        assert_eq!(report.tenants[1].0, b);
    }

    #[test]
    fn supervision_counters_and_recovery_reach_the_report() {
        let ledger = ServerLedger::default();
        let t = TenantId(2);
        ledger.admitted(t);
        ledger.shed(t);
        ledger.rejected(t);
        ledger.started(t, ms(3));
        ledger.retried(t);
        ledger.resumed(t, 6);
        ledger.started(t, ms(1));
        let recovery = RecoveryStats {
            retransmissions: 4,
            decode_worker_deaths: 1,
            decode_worker_respawns: 1,
            ..RecoveryStats::default()
        };
        ledger.done(t, ms(9), 2, "union-find", &recovery);
        ledger.deadline_exceeded(TenantId(5), ms(7));
        let report = ledger.report(1, ms(100));
        let section = report.tenant(t).unwrap();
        assert_eq!(section.jobs_retried, 1);
        assert_eq!(section.jobs_shed, 1);
        assert_eq!(section.cycles_resumed, 6);
        assert_eq!(section.recovery.retransmissions, 4);
        assert_eq!(section.recovery.decode_worker_deaths, 1);
        let other = report.tenant(TenantId(5)).unwrap();
        assert_eq!(other.jobs_deadline_exceeded, 1);
        assert_eq!(
            other.run_latency.samples, 1,
            "a deadline trip contributes a run-latency sample"
        );
        assert_eq!(report.jobs_deadline_exceeded(), 1);
        assert_eq!(report.jobs_retried(), 1);
        assert_eq!(report.jobs_shed(), 1);
    }

    #[test]
    fn report_is_a_snapshot_not_a_drain() {
        let ledger = ServerLedger::default();
        ledger.admitted(TenantId(3));
        ledger.started(TenantId(3), ms(1));
        ledger.done(
            TenantId(3),
            ms(2),
            1,
            "pipelined-uf",
            &RecoveryStats::default(),
        );
        let first = ledger.report(1, ms(10));
        let second = ledger.report(1, ms(10));
        assert_eq!(first, second);
    }
}
