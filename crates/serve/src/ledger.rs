//! The server ledger: per-tenant counters and latency samples.
//!
//! Workers record into the ledger as jobs move through the pipeline;
//! `ServerLedger::report` snapshots it into the plain-data
//! [`ServeReport`] defined in `quest-core`. Sections are keyed through a
//! [`BTreeMap`], so a report's tenant order is the tenant-id order — no
//! iteration-order nondeterminism reaches the report (QL02).
//!
//! Latencies are wall-clock observability, measured by the callers with
//! the runtime's `Stopwatch` (the workspace's one sanctioned clock
//! boundary) and handed in as plain [`Duration`]s. Nothing in the
//! ledger feeds back into job execution.

use quest_core::{LatencySummary, ServeReport, TenantId, TenantServeStats};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// One tenant's accumulating section.
#[derive(Debug, Default)]
struct TenantEntry {
    jobs_admitted: u64,
    jobs_rejected: u64,
    jobs_done: u64,
    jobs_cancelled: u64,
    jobs_failed: u64,
    shots_done: u64,
    queue_samples: Vec<Duration>,
    run_samples: Vec<Duration>,
    /// Completed jobs keyed by decoder-backend name (BTreeMap: the
    /// report's per-decoder order is the name order, QL02).
    jobs_by_decoder: BTreeMap<&'static str, u64>,
}

/// The live, lock-guarded ledger.
#[derive(Debug, Default)]
pub(crate) struct ServerLedger {
    tenants: Mutex<BTreeMap<TenantId, TenantEntry>>,
}

impl ServerLedger {
    fn with<R>(&self, tenant: TenantId, f: impl FnOnce(&mut TenantEntry) -> R) -> R {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        f(tenants.entry(tenant).or_default())
    }

    /// A job passed admission and was enqueued.
    pub(crate) fn admitted(&self, tenant: TenantId) {
        self.with(tenant, |t| t.jobs_admitted += 1);
    }

    /// A job was rejected at admission (quota, validation or
    /// backpressure).
    pub(crate) fn rejected(&self, tenant: TenantId) {
        self.with(tenant, |t| t.jobs_rejected += 1);
    }

    /// A worker picked a job up `queue_latency` after submission.
    pub(crate) fn started(&self, tenant: TenantId, queue_latency: Duration) {
        self.with(tenant, |t| t.queue_samples.push(queue_latency));
    }

    /// A job ran to completion in `run_latency`, producing `shots`
    /// logical readouts through the `decoder` backend.
    pub(crate) fn done(
        &self,
        tenant: TenantId,
        run_latency: Duration,
        shots: u64,
        decoder: &'static str,
    ) {
        self.with(tenant, |t| {
            t.jobs_done += 1;
            t.shots_done += shots;
            t.run_samples.push(run_latency);
            *t.jobs_by_decoder.entry(decoder).or_default() += 1;
        });
    }

    /// A job was cancelled. `run_latency` is `Some` when the job had
    /// started (cancelled mid-run), `None` when it died in the queue.
    pub(crate) fn cancelled(&self, tenant: TenantId, run_latency: Option<Duration>) {
        self.with(tenant, |t| {
            t.jobs_cancelled += 1;
            if let Some(latency) = run_latency {
                t.run_samples.push(latency);
            }
        });
    }

    /// A job failed after running for `run_latency`.
    pub(crate) fn failed(&self, tenant: TenantId, run_latency: Duration) {
        self.with(tenant, |t| {
            t.jobs_failed += 1;
            t.run_samples.push(run_latency);
        });
    }

    /// Snapshots the ledger into a report (sorted by tenant id).
    pub(crate) fn report(&self, workers: usize, uptime: Duration) -> ServeReport {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        let sections = tenants
            .iter_mut()
            .map(|(&id, entry)| {
                (
                    id,
                    TenantServeStats {
                        jobs_admitted: entry.jobs_admitted,
                        jobs_rejected: entry.jobs_rejected,
                        jobs_done: entry.jobs_done,
                        jobs_cancelled: entry.jobs_cancelled,
                        jobs_failed: entry.jobs_failed,
                        shots_done: entry.shots_done,
                        queue_latency: LatencySummary::from_samples(&mut entry.queue_samples),
                        run_latency: LatencySummary::from_samples(&mut entry.run_samples),
                        jobs_by_decoder: entry
                            .jobs_by_decoder
                            .iter()
                            .map(|(&name, &n)| (name.to_string(), n))
                            .collect(),
                    },
                )
            })
            .collect();
        ServeReport {
            tenants: sections,
            workers,
            uptime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn ledger_accumulates_per_tenant() {
        let ledger = ServerLedger::default();
        let (a, b) = (TenantId(0), TenantId(1));
        ledger.admitted(a);
        ledger.admitted(a);
        ledger.admitted(b);
        ledger.rejected(b);
        ledger.started(a, ms(5));
        ledger.done(a, ms(50), 4, "union-find");
        ledger.started(a, ms(15));
        ledger.cancelled(a, Some(ms(20)));
        ledger.cancelled(b, None);
        let report = ledger.report(2, Duration::from_secs(1));
        assert_eq!(report.workers, 2);
        let ta = report.tenant(a).unwrap();
        assert_eq!(ta.jobs_admitted, 2);
        assert_eq!(ta.jobs_done, 1);
        assert_eq!(ta.jobs_cancelled, 1);
        assert_eq!(ta.shots_done, 4);
        assert_eq!(ta.queue_latency.samples, 2);
        assert_eq!(ta.queue_latency.max, ms(15));
        assert_eq!(ta.run_latency.samples, 2);
        assert_eq!(ta.jobs_by_decoder, vec![("union-find".to_string(), 1)]);
        let tb = report.tenant(b).unwrap();
        assert_eq!(tb.jobs_rejected, 1);
        assert_eq!(tb.jobs_cancelled, 1);
        assert_eq!(
            tb.run_latency.samples, 0,
            "queued cancellation has no run sample"
        );
        // Tenant order is id order.
        assert_eq!(report.tenants[0].0, a);
        assert_eq!(report.tenants[1].0, b);
    }

    #[test]
    fn report_is_a_snapshot_not_a_drain() {
        let ledger = ServerLedger::default();
        ledger.admitted(TenantId(3));
        ledger.started(TenantId(3), ms(1));
        ledger.done(TenantId(3), ms(2), 1, "pipelined-uf");
        let first = ledger.report(1, ms(10));
        let second = ledger.report(1, ms(10));
        assert_eq!(first, second);
    }
}
