//! `quest-serve`: a long-running, multi-tenant job server over the
//! [`quest_runtime`] engine.
//!
//! The paper's thesis is that hardware-managed error correction turns
//! QEC from a bandwidth-bound batch problem into a sustained service.
//! This crate is that service's control plane: instead of one
//! [`WorkloadSpec`] per process, a [`Server`] accepts many concurrent
//! jobs from many tenants and runs them on a fixed pool of workers:
//!
//! ```text
//! submit ──► admission (validate + per-tenant quotas)
//!              │ reject: typed ServeError, nothing reserved
//!              ▼
//!          bounded MPMC job queue  ──►  worker pool (N threads)
//!                                          │ each job: one
//!                                          │ Runtime::run_controlled
//!                                          ▼
//!          JobHandle event stream  ◄──  queued → admitted →
//!                                       running(pct) → done/cancelled/failed
//! ```
//!
//! * **Admission control** — [`TenantQuota`] caps queued jobs, in-flight
//!   shard-cycles and lifetime shots per tenant; the queue bound is the
//!   global backpressure behind those. Rejection is all-or-nothing and
//!   typed ([`ServeError`]).
//! * **Streaming** — every job hands back a [`JobHandle`] whose channel
//!   streams [`JobEvent`]s as the job moves through the state machine,
//!   ending with the full [`RuntimeReport`](quest_runtime::RuntimeReport)
//!   on completion.
//! * **Cancellation** — [`JobHandle::cancel`] trips the job's
//!   [`CancelToken`](quest_runtime::CancelToken): queued jobs are dropped
//!   at pickup, running jobs stop at the runtime's next cooperative
//!   checkpoint. The worker pool survives either way.
//! * **Supervision** — [`Server::submit_with_policy`] attaches a
//!   [`RetryPolicy`]: environmental failures (crashed shard, dead decode
//!   pool, exhausted link) are retried with deterministic pop-counted
//!   backoff, resuming from the job's latest
//!   [`RunSnapshot`](quest_runtime::RunSnapshot) checkpoint; a
//!   QECC-cycle deadline terminates runaway jobs with
//!   [`JobOutcome::DeadlineExceeded`]; and
//!   [`ServerConfig::max_backlog_cycles`] sheds load with a typed
//!   [`RetryAfter`] hint before the backlog grows unbounded. Recovery
//!   footprints (retransmissions, respawns, resumed cycles) surface in
//!   the [`ServeReport`] ledger.
//! * **Drain** — [`Server::shutdown`] stops intake, lets the pool finish
//!   every admitted job, joins all threads and returns the final
//!   [`ServeReport`] ledger (per-tenant p50/p99 queue and run latency,
//!   jobs/s, shots/s).
//!
//! # Determinism
//!
//! Each job is executed by exactly one [`Runtime::run_controlled`] call,
//! whose result depends only on the job's own spec (seed included) —
//! never on which worker ran it, how many other jobs interleaved, or the
//! pool size. Same spec ⇒ bit-identical
//! [`RunReport`](quest_core::RunReport), solo or under heavy multi-tenant
//! traffic; the serve test suite enforces this at worker counts 1/2/4.
//! Wall-clock only ever flows *out* (ledger latencies, via the runtime's
//! `Stopwatch` boundary), never into scheduling decisions that could
//! reach a report.
//!
//! # Example
//!
//! ```
//! use quest_serve::{Server, ServerConfig, JobOutcome};
//! use quest_runtime::WorkloadSpec;
//! use quest_core::TenantId;
//!
//! let server = Server::start(ServerConfig::default().with_workers(2));
//! let spec = WorkloadSpec::memory(3, 4, 2, 1e-3, 7, 10);
//! let job = server.submit(TenantId(0), spec)?;
//! match job.wait() {
//!     JobOutcome::Done(report) => assert_eq!(report.report.outcomes.len(), 4),
//!     other => panic!("{other:?}"),
//! }
//! let ledger = server.shutdown();
//! assert_eq!(ledger.jobs_done(), 1);
//! # Ok::<(), quest_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
// The panic-free contract extends to the serving layer: admission,
// scheduling, cancellation and ledger paths return typed errors.
// Enforced by quest-lint QL01 plus this clippy deny; test code is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
pub mod error;
pub mod job;
pub mod ledger;
pub mod queue;
pub mod quota;
pub mod supervisor;

pub use error::{RetryAfter, ServeError};
pub use job::{JobEvent, JobHandle, JobOutcome, JobState};
pub use quest_core::{JobId, LatencySummary, ServeReport, TenantId, TenantServeStats};
pub use quota::{JobCost, TenantQuota};
pub use supervisor::{disarm, retryable, RetryPolicy};

use job::Job;
use ledger::ServerLedger;
use quest_runtime::stats::Stopwatch;
use quest_runtime::{RunControl, RunProgress, Runtime, RuntimeError, WorkloadSpec};
use queue::{JobQueue, PushRefused};
use quota::QuotaBook;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Construction-time knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing jobs (clamped ≥ 1).
    pub workers: usize,
    /// Bound of the shared job queue (clamped ≥ 1).
    pub queue_depth: usize,
    /// Quota applied to tenants without a per-tenant override.
    pub default_quota: TenantQuota,
    /// Load-shedding bound: shard-cycles of admitted-but-unfinished
    /// backlog beyond which new submissions are rejected with
    /// [`ServeError::Overloaded`] instead of queued. `u64::MAX`
    /// (default) never sheds.
    pub max_backlog_cycles: u64,
    /// The runtime configuration every job runs under.
    pub runtime: Runtime,
}

impl Default for ServerConfig {
    /// Workers sized to the machine (capped at 4, like the runtime's
    /// decode pool), a 64-deep queue, unlimited default quota, no load
    /// shedding.
    fn default() -> ServerConfig {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(2)
            .clamp(1, 4);
        ServerConfig {
            workers,
            queue_depth: 64,
            default_quota: TenantQuota::UNLIMITED,
            max_backlog_cycles: u64::MAX,
            runtime: Runtime::new(),
        }
    }
}

impl ServerConfig {
    /// Overrides the worker-pool size (clamped ≥ 1 at start).
    pub fn with_workers(mut self, workers: usize) -> ServerConfig {
        self.workers = workers;
        self
    }

    /// Overrides the job-queue bound (clamped ≥ 1 at start).
    pub fn with_queue_depth(mut self, depth: usize) -> ServerConfig {
        self.queue_depth = depth;
        self
    }

    /// Overrides the default tenant quota.
    pub fn with_default_quota(mut self, quota: TenantQuota) -> ServerConfig {
        self.default_quota = quota;
        self
    }

    /// Overrides the runtime configuration jobs run under.
    pub fn with_runtime(mut self, runtime: Runtime) -> ServerConfig {
        self.runtime = runtime;
        self
    }

    /// Overrides the load-shedding bound (shard-cycles of backlog).
    pub fn with_max_backlog_cycles(mut self, cycles: u64) -> ServerConfig {
        self.max_backlog_cycles = cycles;
        self
    }
}

/// State shared between the server front end and its workers.
struct ServerShared {
    runtime: Runtime,
    quotas: Mutex<QuotaBook>,
    ledger: ServerLedger,
    next_job: AtomicU64,
    draining: AtomicBool,
    workers: usize,
    /// Shard-cycles of admitted-but-not-yet-picked-up work (retries
    /// included): the load-shedding signal. Credited before a job enters
    /// the queue, debited at worker pickup, so it can only overstate the
    /// backlog transiently — shedding errs conservative.
    backlog_cycles: AtomicU64,
    /// The shedding bound from [`ServerConfig::max_backlog_cycles`].
    max_backlog_cycles: u64,
}

impl ServerShared {
    fn quotas(&self) -> MutexGuard<'_, QuotaBook> {
        self.quotas.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The multi-tenant job server. See the crate docs for the pipeline.
///
/// Dropping a server without calling [`Server::shutdown`] still drains
/// gracefully (intake closes, queued jobs run, workers join) — it just
/// discards the final ledger.
pub struct Server {
    shared: Arc<ServerShared>,
    queue: JobQueue<Job>,
    workers: Vec<JoinHandle<()>>,
    started: Stopwatch,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.shared.workers)
            .field("queue_depth", &self.queue.capacity())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl Server {
    /// Starts the worker pool and begins accepting jobs.
    pub fn start(config: ServerConfig) -> Server {
        let workers = config.workers.max(1);
        let shared = Arc::new(ServerShared {
            runtime: config.runtime,
            quotas: Mutex::new(QuotaBook::new(config.default_quota)),
            ledger: ServerLedger::default(),
            next_job: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            workers,
            backlog_cycles: AtomicU64::new(0),
            max_backlog_cycles: config.max_backlog_cycles,
        });
        let queue: JobQueue<Job> = JobQueue::bounded(config.queue_depth);
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let queue = queue.clone();
                std::thread::Builder::new()
                    .name(format!("quest-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, &queue))
            })
            .filter_map(Result::ok)
            .collect();
        Server {
            shared,
            queue,
            workers: handles,
            started: Stopwatch::start(),
        }
    }

    /// Installs a per-tenant quota override (future admissions only).
    pub fn set_quota(&self, tenant: TenantId, quota: TenantQuota) {
        self.shared.quotas().set_quota(tenant, quota);
    }

    /// The quota currently governing `tenant`.
    pub fn quota(&self, tenant: TenantId) -> TenantQuota {
        self.shared.quotas().quota(tenant)
    }

    /// Submits a job for `tenant`: validates the spec, charges the
    /// tenant's quota, enqueues, and returns the streaming
    /// [`JobHandle`]. The handle's channel already carries the
    /// [`JobEvent::Queued`] event when this returns.
    ///
    /// **Blocks** while the shared queue is at capacity — backpressure
    /// stalls the submitting thread instead of failing it. Use
    /// [`Server::try_submit`] for the non-blocking variant that returns
    /// [`ServeError::QueueFull`] with a typed [`RetryAfter`] hint.
    ///
    /// # Errors
    ///
    /// [`ServeError::Spec`] for an invalid workload,
    /// [`ServeError::ShuttingDown`] once [`Server::shutdown`] has begun,
    /// the [`ServeError`] quota variants when the tenant is over a
    /// limit, and [`ServeError::Overloaded`] when the server is shedding
    /// load. A rejected job reserves nothing (and ticks the tenant's
    /// `jobs_rejected` ledger counter).
    pub fn submit(&self, tenant: TenantId, spec: WorkloadSpec) -> Result<JobHandle, ServeError> {
        self.enqueue(tenant, spec, RetryPolicy::default(), true)
    }

    /// Non-blocking [`Server::submit`]: a full queue returns
    /// [`ServeError::QueueFull`] (with a deterministic [`RetryAfter`]
    /// hint) instead of waiting.
    pub fn try_submit(
        &self,
        tenant: TenantId,
        spec: WorkloadSpec,
    ) -> Result<JobHandle, ServeError> {
        self.enqueue(tenant, spec, RetryPolicy::default(), false)
    }

    /// [`Server::submit`] with per-job supervision: retries with
    /// deterministic backoff on environmental failures (resuming from
    /// the latest checkpoint), an optional QECC-cycle deadline, and a
    /// checkpoint cadence. See [`RetryPolicy`].
    pub fn submit_with_policy(
        &self,
        tenant: TenantId,
        spec: WorkloadSpec,
        policy: RetryPolicy,
    ) -> Result<JobHandle, ServeError> {
        self.enqueue(tenant, spec, policy, true)
    }

    /// Non-blocking [`Server::submit_with_policy`].
    pub fn try_submit_with_policy(
        &self,
        tenant: TenantId,
        spec: WorkloadSpec,
        policy: RetryPolicy,
    ) -> Result<JobHandle, ServeError> {
        self.enqueue(tenant, spec, policy, false)
    }

    /// The one admission path behind every submit variant.
    fn enqueue(
        &self,
        tenant: TenantId,
        spec: WorkloadSpec,
        policy: RetryPolicy,
        blocking: bool,
    ) -> Result<JobHandle, ServeError> {
        if self.shared.draining.load(Ordering::Acquire) {
            self.shared.ledger.rejected(tenant);
            return Err(ServeError::ShuttingDown);
        }
        if let Err(e) = spec.validate() {
            self.shared.ledger.rejected(tenant);
            return Err(ServeError::Spec(e));
        }
        let cost = JobCost::of(&spec);
        // Load shedding comes before quota so an overloaded server does
        // the cheapest possible work per rejected submission.
        let backlog = self.shared.backlog_cycles.load(Ordering::Acquire);
        if backlog.saturating_add(cost.shard_cycles) > self.shared.max_backlog_cycles {
            self.shared.ledger.shed(tenant);
            self.shared.ledger.rejected(tenant);
            return Err(ServeError::Overloaded {
                backlog_cycles: backlog,
                limit: self.shared.max_backlog_cycles,
                retry_after: RetryAfter {
                    slots: (self.queue.len() as u64).max(1),
                },
            });
        }
        if let Err(e) = self.shared.quotas().admit(tenant, cost) {
            self.shared.ledger.rejected(tenant);
            return Err(e);
        }
        let id = JobId(self.shared.next_job.fetch_add(1, Ordering::Relaxed));
        let (job, handle) = Job::channel(id, tenant, spec, cost, policy);
        job.emit(JobEvent::Queued { id });
        // Credit the backlog before the push so a racing pickup's debit
        // can never precede it.
        self.shared
            .backlog_cycles
            .fetch_add(cost.shard_cycles, Ordering::AcqRel);
        let pushed = if blocking {
            self.queue.push_wait(job)
        } else {
            self.queue.push(job)
        };
        match pushed {
            Ok(()) => {
                self.shared.ledger.admitted(tenant);
                Ok(handle)
            }
            Err(refused) => {
                self.shared
                    .backlog_cycles
                    .fetch_sub(cost.shard_cycles, Ordering::AcqRel);
                self.shared.quotas().rollback(tenant, cost);
                self.shared.ledger.rejected(tenant);
                Err(match refused {
                    PushRefused::Full(_) => ServeError::QueueFull {
                        capacity: self.queue.capacity(),
                        retry_after: RetryAfter { slots: 1 },
                    },
                    PushRefused::Closed(_) => ServeError::ShuttingDown,
                })
            }
        }
    }

    /// Jobs currently waiting in the queue (parked retries included).
    pub fn queued_jobs(&self) -> usize {
        self.queue.len()
    }

    /// Live reservations summed over every tenant: `(queued jobs,
    /// in-flight shard-cycles)`. Reads `(0, 0)` exactly when every
    /// admitted job has reached a terminal state — the conservation law
    /// the chaos harness asserts.
    pub fn outstanding(&self) -> (u64, u64) {
        self.shared.quotas().outstanding()
    }

    /// Shard-cycles of admitted-but-not-yet-picked-up backlog (the
    /// load-shedding signal).
    pub fn backlog_cycles(&self) -> u64 {
        self.shared.backlog_cycles.load(Ordering::Acquire)
    }

    /// A live snapshot of the server ledger.
    pub fn report(&self) -> ServeReport {
        self.shared
            .ledger
            .report(self.shared.workers, self.started.elapsed())
    }

    /// Graceful drain: stops accepting new jobs, lets the worker pool
    /// finish everything already admitted (cancelled jobs included —
    /// they terminate at pickup or at their next checkpoint), joins all
    /// workers and returns the final ledger.
    pub fn shutdown(mut self) -> ServeReport {
        self.drain();
        self.shared
            .ledger
            .report(self.shared.workers, self.started.elapsed())
    }

    fn drain(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

/// One worker's life: pop, run (resuming from a checkpoint when the job
/// carries one), supervise, record, repeat — until the queue closes and
/// drains. A job's terminal bookkeeping always runs (quota release,
/// ledger, state cell, event stream), whatever the runtime returned; the
/// quota release and ledger entry land *before* the terminal event, so a
/// client that has observed a terminal event observes conserved quotas —
/// the ordering the chaos harness leans on. A retryable failure with
/// attempts left is the one non-terminal exit: the job goes back into the
/// queue (with deterministic pop-counted backoff) and its reservations
/// stay live.
fn worker_loop(shared: &ServerShared, queue: &JobQueue<Job>) {
    while let Some(mut job) = queue.pop() {
        shared
            .backlog_cycles
            .fetch_sub(job.cost.shard_cycles, Ordering::AcqRel);
        let queue_latency = job.queued_at.elapsed();
        shared.quotas().start(job.tenant);
        if job.cancel.is_cancelled() {
            // Cancelled while queued: never runs, no run-latency sample.
            shared.ledger.cancelled(job.tenant, None);
            shared.quotas().finish(job.tenant, job.cost);
            if job.cell.advance(JobState::Cancelled) {
                job.emit(JobEvent::Cancelled { id: job.id });
            }
            continue;
        }
        // The attempt resumes from the latest surviving checkpoint; keep
        // it around as the fallback resume point should this attempt die
        // before depositing a fresher one.
        let resumed_from = job.snapshot.take();
        if let Some(snap) = resumed_from.as_ref() {
            shared.ledger.resumed(job.tenant, snap.cycles_done());
        }
        shared.ledger.started(job.tenant, queue_latency);
        if job.cell.advance(JobState::Admitted) {
            job.emit(JobEvent::Admitted { id: job.id });
        }
        if job.cell.advance(JobState::Running { fraction: 0.0 }) {
            job.emit(JobEvent::Running {
                id: job.id,
                fraction: 0.0,
            });
        }
        let run_clock = Stopwatch::start();
        // Stream progress on whole-percent steps (at most 100 events per
        // job however many cycles it runs). The same hook polices the
        // policy's cycle deadline: the budget trips the job's own cancel
        // token, and `deadline_hit` disambiguates the resulting
        // `Cancelled` from a user cancellation (deadline wins when both
        // race — the budget was spent either way).
        let last_percent = AtomicU64::new(0);
        let deadline_hit = AtomicBool::new(false);
        // The hook must be `Sync` and `Job` is not (a carried snapshot
        // owns a decoder backend), so the closure borrows exactly the
        // Sync pieces it needs.
        let deadline = job.policy.deadline_cycles;
        let deadline_cancel = job.cancel.clone();
        let cell = Arc::clone(&job.cell);
        let events = job.events.clone();
        let id = job.id;
        let progress = |p: RunProgress| {
            if let Some(limit) = deadline {
                if p.cycles_done >= limit && !deadline_hit.swap(true, Ordering::AcqRel) {
                    deadline_cancel.cancel();
                }
            }
            let fraction = p.fraction();
            let percent = (fraction * 100.0) as u64;
            if last_percent.swap(percent, Ordering::Relaxed) != percent
                && cell.advance(JobState::Running { fraction })
            {
                let _ = events.send(JobEvent::Running { id, fraction });
            }
        };
        let control = RunControl::new()
            .with_cancel(&job.cancel)
            .with_progress(&progress)
            .with_checkpoints(&job.sink);
        let result = match resumed_from.as_ref() {
            Some(snapshot) => shared.runtime.resume(snapshot, &control),
            None => shared.runtime.run_controlled(&job.spec, &control),
        };
        let run_latency = run_clock.elapsed();
        match result {
            Ok(report) => {
                let shots = report.report.outcomes.len() as u64;
                shared.ledger.done(
                    job.tenant,
                    run_latency,
                    shots,
                    job.spec.decoder.name(),
                    &report.report.recovery,
                );
                shared.quotas().finish(job.tenant, job.cost);
                if job.cell.advance(JobState::Done) {
                    job.emit(JobEvent::Done {
                        id: job.id,
                        report: Box::new(report),
                    });
                }
            }
            Err(RuntimeError::Cancelled { cycles_done })
                if deadline_hit.load(Ordering::Acquire) =>
            {
                shared.ledger.deadline_exceeded(job.tenant, run_latency);
                shared.quotas().finish(job.tenant, job.cost);
                if job.cell.advance(JobState::DeadlineExceeded) {
                    job.emit(JobEvent::DeadlineExceeded {
                        id: job.id,
                        cycles_done,
                    });
                }
            }
            Err(RuntimeError::Cancelled { .. }) => {
                shared.ledger.cancelled(job.tenant, Some(run_latency));
                shared.quotas().finish(job.tenant, job.cost);
                if job.cell.advance(JobState::Cancelled) {
                    job.emit(JobEvent::Cancelled { id: job.id });
                }
            }
            Err(error) if retryable(&error) && job.attempt < job.policy.max_attempts => {
                // Retry: prefer the freshest checkpoint this attempt
                // deposited, fall back to the one it resumed from, strip
                // the causing fault class from spec and snapshot, and
                // re-enqueue with pop-counted backoff. The job's quota
                // reservations never lapsed — only its queue slot is
                // re-taken — and its backlog credit returns with it.
                let mut snapshot = job.sink.take().or(resumed_from);
                supervisor::disarm(&error, &mut job.spec, snapshot.as_mut());
                job.snapshot = snapshot;
                job.attempt = job.attempt.saturating_add(1);
                let attempt = job.attempt;
                if job.cell.advance(JobState::Retrying { attempt }) {
                    job.emit(JobEvent::Retrying {
                        id: job.id,
                        attempt,
                        error,
                    });
                }
                shared.ledger.retried(job.tenant);
                shared.quotas().requeue(job.tenant);
                shared
                    .backlog_cycles
                    .fetch_add(job.cost.shard_cycles, Ordering::AcqRel);
                job.queued_at = Stopwatch::start();
                let delay = job
                    .policy
                    .backoff_slots
                    .saturating_mul(u64::from(attempt - 1));
                queue.push_delayed(job, delay);
            }
            Err(error) => {
                shared.ledger.failed(job.tenant, run_latency);
                shared.quotas().finish(job.tenant, job.cost);
                if job.cell.advance(JobState::Failed) {
                    job.emit(JobEvent::Failed { id: job.id, error });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_round_trip() {
        let server = Server::start(ServerConfig::default().with_workers(1));
        let spec = WorkloadSpec::memory(3, 2, 1, 0.0, 5, 3);
        let handle = server.submit(TenantId(0), spec).unwrap();
        match handle.wait() {
            JobOutcome::Done(report) => {
                assert!(report.report.logical_ok());
                assert_eq!(report.report.qecc_cycles, 3);
            }
            other => panic!("{other:?}"),
        }
        let ledger = server.shutdown();
        assert_eq!(ledger.jobs_done(), 1);
        assert_eq!(ledger.shots_done(), 2);
        let t = ledger.tenant(TenantId(0)).unwrap();
        assert_eq!(t.queue_latency.samples, 1);
        assert_eq!(t.run_latency.samples, 1);
    }

    #[test]
    fn invalid_spec_is_rejected_and_ticked() {
        let server = Server::start(ServerConfig::default().with_workers(1));
        let bad = WorkloadSpec::memory(4, 2, 1, 0.0, 1, 1);
        let err = server.submit(TenantId(7), bad).unwrap_err();
        assert!(matches!(err, ServeError::Spec(_)), "{err:?}");
        let ledger = server.shutdown();
        assert_eq!(ledger.jobs_rejected(), 1);
        assert_eq!(ledger.jobs_done(), 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        // One worker, several queued jobs: all must complete.
        let server = Server::start(ServerConfig::default().with_workers(1));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let spec = WorkloadSpec::memory(3, 2, 1, 1e-3, 10 + i, 5);
                server.submit(TenantId(i as u32 % 2), spec).unwrap()
            })
            .collect();
        let ledger = server.shutdown();
        assert_eq!(ledger.jobs_done(), 4);
        for handle in handles {
            assert!(matches!(handle.wait(), JobOutcome::Done(_)));
        }
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let server = Server::start(ServerConfig::default().with_workers(1));
        let shared = Arc::clone(&server.shared);
        drop(server);
        assert!(shared.draining.load(Ordering::Acquire));
    }

    #[test]
    fn queue_backpressure_is_typed() {
        // Stall the single worker with a long job, then overfill the
        // 1-deep queue through the non-blocking path (the blocking
        // `submit` would simply wait here).
        let server = Server::start(ServerConfig::default().with_workers(1).with_queue_depth(1));
        let long = WorkloadSpec::memory(3, 2, 1, 1e-3, 1, 2000);
        let running = server.try_submit(TenantId(0), long.clone()).unwrap();
        // The worker may not have picked the first job up yet; keep one
        // sacrificial submission in flight until the queue is the
        // bottleneck.
        let mut full_seen = false;
        for seed in 0..50 {
            let spec = WorkloadSpec {
                seed,
                ..long.clone()
            };
            match server.try_submit(TenantId(0), spec) {
                Ok(handle) => handle.cancel(),
                Err(ServeError::QueueFull {
                    capacity: 1,
                    retry_after,
                }) => {
                    assert_eq!(retry_after, RetryAfter { slots: 1 });
                    full_seen = true;
                    break;
                }
                Err(other) => panic!("{other:?}"),
            }
        }
        assert!(
            full_seen,
            "a 1-deep queue behind a stalled worker must fill"
        );
        running.cancel();
        let _ = server.shutdown();
    }
}
