//! Typed errors for job submission and admission control.

use quest_core::TenantId;
use quest_runtime::SpecError;
use std::fmt;

/// A deterministic retry hint attached to transient rejections: how many
/// queue slots should drain before the submission is worth repeating.
/// Measured in queue pops — the serving layer's own clock — never in
/// wall time, so a client driving a deterministic workload can replay
/// the exact same retry schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryAfter {
    /// Queue pops to wait out before retrying.
    pub slots: u64,
}

impl fmt::Display for RetryAfter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "retry after {} queue slot(s) drain", self.slots)
    }
}

/// Why the server refused a job at submission time.
///
/// Admission is all-or-nothing: a rejected job reserves nothing, queues
/// nothing and spawns nothing — the error is the whole effect (plus a
/// `jobs_rejected` tick in the tenant's ledger section).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The workload failed
    /// [`WorkloadSpec::validate`](quest_runtime::WorkloadSpec::validate).
    Spec(SpecError),
    /// The server is draining: `shutdown` was called and no new work is
    /// admitted.
    ShuttingDown,
    /// The shared job queue is at capacity (global backpressure,
    /// independent of any tenant's quota). Only
    /// [`Server::try_submit`](crate::Server::try_submit) surfaces this;
    /// the blocking [`Server::submit`](crate::Server::submit) waits for
    /// a slot instead.
    QueueFull {
        /// The queue's bound.
        capacity: usize,
        /// Deterministic hint for when to retry.
        retry_after: RetryAfter,
    },
    /// Load shedding: the work already admitted exceeds the server's
    /// configured backlog bound
    /// ([`ServerConfig::max_backlog_cycles`](crate::ServerConfig)), so
    /// new jobs are rejected outright rather than queued behind an
    /// already-deep pipeline.
    Overloaded {
        /// Shard-cycles of admitted-but-unfinished queue backlog.
        backlog_cycles: u64,
        /// The configured shedding bound.
        limit: u64,
        /// Deterministic hint for when to retry.
        retry_after: RetryAfter,
    },
    /// The tenant already has its maximum number of jobs waiting in the
    /// queue.
    QuotaQueuedJobs {
        /// The rejected tenant.
        tenant: TenantId,
        /// The tenant's `max_queued_jobs` limit.
        limit: u64,
    },
    /// Admitting the job would push the tenant's in-flight shard-cycles
    /// (summed over its queued and running jobs) past its quota.
    QuotaShardCycles {
        /// The rejected tenant.
        tenant: TenantId,
        /// The tenant's `max_inflight_shard_cycles` limit.
        limit: u64,
        /// Shard-cycles already reserved by the tenant's live jobs.
        in_flight: u64,
        /// Shard-cycles the rejected job asked for.
        requested: u64,
    },
    /// Admitting the job would exhaust the tenant's lifetime shot
    /// budget.
    QuotaShots {
        /// The rejected tenant.
        tenant: TenantId,
        /// The tenant's `max_total_shots` limit.
        limit: u64,
        /// Shots already admitted for the tenant.
        used: u64,
        /// Shots the rejected job asked for.
        requested: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Spec(e) => e.fmt(f),
            ServeError::ShuttingDown => write!(f, "server is draining; no new jobs admitted"),
            ServeError::QueueFull {
                capacity,
                retry_after,
            } => {
                write!(f, "job queue is at capacity ({capacity}); {retry_after}")
            }
            ServeError::Overloaded {
                backlog_cycles,
                limit,
                retry_after,
            } => write!(
                f,
                "server overloaded: {backlog_cycles} backlog shard-cycles \
                 exceed the {limit} bound; {retry_after}"
            ),
            ServeError::QuotaQueuedJobs { tenant, limit } => write!(
                f,
                "{tenant} is at its queued-job quota ({limit} queued jobs)"
            ),
            ServeError::QuotaShardCycles {
                tenant,
                limit,
                in_flight,
                requested,
            } => write!(
                f,
                "{tenant} would exceed its in-flight shard-cycle quota: \
                 {in_flight} reserved + {requested} requested > {limit}"
            ),
            ServeError::QuotaShots {
                tenant,
                limit,
                used,
                requested,
            } => write!(
                f,
                "{tenant} would exceed its total-shot quota: \
                 {used} used + {requested} requested > {limit}"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Spec(e) => Some(e),
            ServeError::ShuttingDown
            | ServeError::QueueFull { .. }
            | ServeError::Overloaded { .. }
            | ServeError::QuotaQueuedJobs { .. }
            | ServeError::QuotaShardCycles { .. }
            | ServeError::QuotaShots { .. } => None,
        }
    }
}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> ServeError {
        ServeError::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_one_line_and_sourced() {
        let errors = [
            ServeError::Spec(SpecError::NoTiles),
            ServeError::ShuttingDown,
            ServeError::QueueFull {
                capacity: 8,
                retry_after: RetryAfter { slots: 1 },
            },
            ServeError::Overloaded {
                backlog_cycles: 900,
                limit: 800,
                retry_after: RetryAfter { slots: 3 },
            },
            ServeError::QuotaQueuedJobs {
                tenant: TenantId(1),
                limit: 2,
            },
            ServeError::QuotaShardCycles {
                tenant: TenantId(1),
                limit: 100,
                in_flight: 90,
                requested: 20,
            },
            ServeError::QuotaShots {
                tenant: TenantId(1),
                limit: 50,
                used: 48,
                requested: 8,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(!e.to_string().contains('\n'), "one-line display: {e}");
        }
        use std::error::Error;
        assert!(ServeError::from(SpecError::NoTiles).source().is_some());
        assert!(ServeError::ShuttingDown.source().is_none());
    }
}
