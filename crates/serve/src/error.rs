//! Typed errors for job submission and admission control.

use quest_core::TenantId;
use quest_runtime::SpecError;
use std::fmt;

/// Why the server refused a job at submission time.
///
/// Admission is all-or-nothing: a rejected job reserves nothing, queues
/// nothing and spawns nothing — the error is the whole effect (plus a
/// `jobs_rejected` tick in the tenant's ledger section).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The workload failed
    /// [`WorkloadSpec::validate`](quest_runtime::WorkloadSpec::validate).
    Spec(SpecError),
    /// The server is draining: `shutdown` was called and no new work is
    /// admitted.
    ShuttingDown,
    /// The shared job queue is at capacity (global backpressure,
    /// independent of any tenant's quota).
    QueueFull {
        /// The queue's bound.
        capacity: usize,
    },
    /// The tenant already has its maximum number of jobs waiting in the
    /// queue.
    QuotaQueuedJobs {
        /// The rejected tenant.
        tenant: TenantId,
        /// The tenant's `max_queued_jobs` limit.
        limit: u64,
    },
    /// Admitting the job would push the tenant's in-flight shard-cycles
    /// (summed over its queued and running jobs) past its quota.
    QuotaShardCycles {
        /// The rejected tenant.
        tenant: TenantId,
        /// The tenant's `max_inflight_shard_cycles` limit.
        limit: u64,
        /// Shard-cycles already reserved by the tenant's live jobs.
        in_flight: u64,
        /// Shard-cycles the rejected job asked for.
        requested: u64,
    },
    /// Admitting the job would exhaust the tenant's lifetime shot
    /// budget.
    QuotaShots {
        /// The rejected tenant.
        tenant: TenantId,
        /// The tenant's `max_total_shots` limit.
        limit: u64,
        /// Shots already admitted for the tenant.
        used: u64,
        /// Shots the rejected job asked for.
        requested: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Spec(e) => e.fmt(f),
            ServeError::ShuttingDown => write!(f, "server is draining; no new jobs admitted"),
            ServeError::QueueFull { capacity } => {
                write!(f, "job queue is at capacity ({capacity}); retry later")
            }
            ServeError::QuotaQueuedJobs { tenant, limit } => write!(
                f,
                "{tenant} is at its queued-job quota ({limit} queued jobs)"
            ),
            ServeError::QuotaShardCycles {
                tenant,
                limit,
                in_flight,
                requested,
            } => write!(
                f,
                "{tenant} would exceed its in-flight shard-cycle quota: \
                 {in_flight} reserved + {requested} requested > {limit}"
            ),
            ServeError::QuotaShots {
                tenant,
                limit,
                used,
                requested,
            } => write!(
                f,
                "{tenant} would exceed its total-shot quota: \
                 {used} used + {requested} requested > {limit}"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Spec(e) => Some(e),
            ServeError::ShuttingDown
            | ServeError::QueueFull { .. }
            | ServeError::QuotaQueuedJobs { .. }
            | ServeError::QuotaShardCycles { .. }
            | ServeError::QuotaShots { .. } => None,
        }
    }
}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> ServeError {
        ServeError::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_one_line_and_sourced() {
        let errors = [
            ServeError::Spec(SpecError::NoTiles),
            ServeError::ShuttingDown,
            ServeError::QueueFull { capacity: 8 },
            ServeError::QuotaQueuedJobs {
                tenant: TenantId(1),
                limit: 2,
            },
            ServeError::QuotaShardCycles {
                tenant: TenantId(1),
                limit: 100,
                in_flight: 90,
                requested: 20,
            },
            ServeError::QuotaShots {
                tenant: TenantId(1),
                limit: 50,
                used: 48,
                requested: 8,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(!e.to_string().contains('\n'), "one-line display: {e}");
        }
        use std::error::Error;
        assert!(ServeError::from(SpecError::NoTiles).source().is_some());
        assert!(ServeError::ShuttingDown.source().is_none());
    }
}
