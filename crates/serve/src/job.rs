//! The job state machine and the client's view of a submitted job.
//!
//! Every job walks one path through
//!
//! ```text
//! queued ──► admitted ──► running(pct) ──► done
//!    │            │            ├─────────► failed
//!    └────────────┴────────────┴─────────► cancelled
//! ```
//!
//! The transitions live in one place (`JobCell::advance`) so an
//! illegal hop is structurally impossible: a terminal state is final,
//! and progress can only move forward. Each transition is mirrored to
//! the client as a [`JobEvent`] on the handle's channel — the streaming
//! interface the ISSUE calls "incremental `RunReport` progress events".

use crate::quota::JobCost;
use quest_core::{JobId, TenantId};
use quest_runtime::stats::Stopwatch;
use quest_runtime::{CancelToken, RuntimeError, RuntimeReport, WorkloadSpec};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobState {
    /// Admitted and waiting in the queue.
    Queued,
    /// Picked up by a worker, about to run.
    Admitted,
    /// Executing; `fraction` is the completed share of QECC cycles.
    Running {
        /// Completed fraction in `[0, 1]`.
        fraction: f64,
    },
    /// Ran to completion.
    Done,
    /// Cancelled before or during execution.
    Cancelled,
    /// The runtime returned an error.
    Failed,
}

impl JobState {
    /// Whether the state is final.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }

    /// Rank in the lifecycle order (terminal states share the top rank).
    fn rank(&self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Admitted => 1,
            JobState::Running { .. } => 2,
            JobState::Done | JobState::Cancelled | JobState::Failed => 3,
        }
    }
}

/// The shared, transition-checked state cell of one job.
#[derive(Debug)]
pub(crate) struct JobCell {
    state: Mutex<JobState>,
}

impl JobCell {
    pub(crate) fn new() -> Arc<JobCell> {
        Arc::new(JobCell {
            state: Mutex::new(JobState::Queued),
        })
    }

    /// Snapshot of the current state.
    pub(crate) fn get(&self) -> JobState {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Applies a transition if it is legal (forward through the
    /// lifecycle; running may update in place; terminal states are
    /// final). Returns whether the transition was applied — callers use
    /// this to decide whether to emit the matching event, so state and
    /// event stream cannot diverge.
    pub(crate) fn advance(&self, next: JobState) -> bool {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let legal = if state.is_terminal() {
            false
        } else if matches!(
            (*state, next),
            (JobState::Running { .. }, JobState::Running { .. })
        ) {
            true
        } else {
            next.rank() > state.rank()
        };
        if legal {
            *state = next;
        }
        legal
    }
}

/// One progress event streamed to the submitting client.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// The job passed validation and admission control and sits in the
    /// queue.
    Queued {
        /// The job.
        id: JobId,
    },
    /// A worker picked the job up.
    Admitted {
        /// The job.
        id: JobId,
    },
    /// The job is executing; emitted at pickup (fraction 0) and on every
    /// whole-percent step thereafter.
    Running {
        /// The job.
        id: JobId,
        /// Completed fraction of the job's QECC cycles, in `[0, 1]`.
        fraction: f64,
    },
    /// The job completed; the full report rides along.
    Done {
        /// The job.
        id: JobId,
        /// The run's report (physics + runtime statistics).
        report: Box<RuntimeReport>,
    },
    /// The job was cancelled (before or during execution).
    Cancelled {
        /// The job.
        id: JobId,
    },
    /// The runtime refused or aborted the job.
    Failed {
        /// The job.
        id: JobId,
        /// What went wrong.
        error: RuntimeError,
    },
}

/// How a job ended, as returned by [`JobHandle::wait`].
#[derive(Debug)]
pub enum JobOutcome {
    /// Completed; here is the report.
    Done(Box<RuntimeReport>),
    /// Cancelled before or during execution.
    Cancelled,
    /// The runtime returned an error.
    Failed(RuntimeError),
    /// The server went away without delivering a terminal event (it was
    /// dropped rather than drained).
    Lost,
}

/// The client's handle to one submitted job: an event stream, a cancel
/// button, and a state snapshot.
#[derive(Debug)]
pub struct JobHandle {
    id: JobId,
    tenant: TenantId,
    events: Receiver<JobEvent>,
    cancel: CancelToken,
    cell: Arc<JobCell>,
}

impl JobHandle {
    /// The job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The submitting tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Requests cancellation: a queued job is dropped when a worker
    /// reaches it, a running job stops at its next cooperative
    /// checkpoint. Idempotent; a no-op once the job is terminal.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Snapshot of the job's current state.
    pub fn state(&self) -> JobState {
        self.cell.get()
    }

    /// Blocking receive of the next event. `None` once the stream ends
    /// (after a terminal event, or if the server was dropped).
    pub fn next_event(&self) -> Option<JobEvent> {
        self.events.recv().ok()
    }

    /// Non-blocking receive of the next event, if one is pending.
    pub fn try_next_event(&self) -> Option<JobEvent> {
        self.events.try_recv().ok()
    }

    /// Blocks until the job reaches a terminal state and returns how it
    /// ended, draining (and discarding) the progress events in between.
    pub fn wait(self) -> JobOutcome {
        while let Some(event) = self.next_event() {
            match event {
                JobEvent::Done { report, .. } => return JobOutcome::Done(report),
                JobEvent::Cancelled { .. } => return JobOutcome::Cancelled,
                JobEvent::Failed { error, .. } => return JobOutcome::Failed(error),
                JobEvent::Queued { .. } | JobEvent::Admitted { .. } | JobEvent::Running { .. } => {}
            }
        }
        JobOutcome::Lost
    }
}

/// The server's side of one job: everything a worker needs to run it.
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) id: JobId,
    pub(crate) tenant: TenantId,
    pub(crate) spec: WorkloadSpec,
    pub(crate) cost: JobCost,
    pub(crate) events: Sender<JobEvent>,
    pub(crate) cancel: CancelToken,
    pub(crate) cell: Arc<JobCell>,
    /// Started at submission; read once at worker pickup for the queue
    /// latency sample.
    pub(crate) queued_at: Stopwatch,
}

impl Job {
    /// Builds the server/client pair for one admitted job.
    pub(crate) fn channel(
        id: JobId,
        tenant: TenantId,
        spec: WorkloadSpec,
        cost: JobCost,
    ) -> (Job, JobHandle) {
        let (tx, rx) = std::sync::mpsc::channel();
        let cancel = CancelToken::new();
        let cell = JobCell::new();
        (
            Job {
                id,
                tenant,
                spec,
                cost,
                events: tx,
                cancel: cancel.clone(),
                cell: Arc::clone(&cell),
                queued_at: Stopwatch::start(),
            },
            JobHandle {
                id,
                tenant,
                events: rx,
                cancel,
                cell,
            },
        )
    }

    /// Emits one event to the client, ignoring a hung-up handle (the
    /// job runs to completion either way; only the observer is gone).
    pub(crate) fn emit(&self, event: JobEvent) {
        let _ = self.events.send(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_moves_forward_only() {
        let cell = JobCell::new();
        assert_eq!(cell.get(), JobState::Queued);
        assert!(cell.advance(JobState::Admitted));
        assert!(!cell.advance(JobState::Queued), "no going back");
        assert!(cell.advance(JobState::Running { fraction: 0.0 }));
        assert!(
            cell.advance(JobState::Running { fraction: 0.5 }),
            "running may update in place"
        );
        assert!(cell.advance(JobState::Done));
        assert!(!cell.advance(JobState::Cancelled), "terminal is final");
        assert_eq!(cell.get(), JobState::Done);
    }

    #[test]
    fn queued_job_can_cancel_straight_to_terminal() {
        let cell = JobCell::new();
        assert!(cell.advance(JobState::Cancelled));
        assert!(cell.get().is_terminal());
        assert!(!cell.advance(JobState::Running { fraction: 0.0 }));
    }

    #[test]
    fn handle_streams_events_and_waits_for_terminal() {
        let spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        let cost = JobCost::of(&spec);
        let (job, handle) = Job::channel(JobId(4), TenantId(2), spec, cost);
        assert_eq!(handle.id(), JobId(4));
        assert_eq!(handle.tenant(), TenantId(2));
        job.emit(JobEvent::Queued { id: job.id });
        job.emit(JobEvent::Admitted { id: job.id });
        job.emit(JobEvent::Cancelled { id: job.id });
        assert!(matches!(handle.next_event(), Some(JobEvent::Queued { .. })));
        assert!(matches!(handle.wait(), JobOutcome::Cancelled));
    }

    #[test]
    fn dropped_server_side_yields_lost() {
        let spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        let cost = JobCost::of(&spec);
        let (job, handle) = Job::channel(JobId(1), TenantId(0), spec, cost);
        job.emit(JobEvent::Queued { id: job.id });
        drop(job);
        assert!(matches!(handle.wait(), JobOutcome::Lost));
    }

    #[test]
    fn cancel_trips_the_shared_token() {
        let spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        let cost = JobCost::of(&spec);
        let (job, handle) = Job::channel(JobId(1), TenantId(0), spec, cost);
        assert!(!job.cancel.is_cancelled());
        handle.cancel();
        assert!(job.cancel.is_cancelled());
        assert!(handle.try_next_event().is_none());
    }
}
