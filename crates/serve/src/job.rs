//! The job state machine and the client's view of a submitted job.
//!
//! Every job walks one path through
//!
//! ```text
//! queued ──► admitted ──► running(pct) ──► done
//!    │            │            ├─────────► failed
//!    │            │            ├─────────► deadline-exceeded
//!    │            │            ├─► retrying(n) ──► admitted ──► …
//!    └────────────┴────────────┴─────────► cancelled
//! ```
//!
//! The transitions live in one place (`JobCell::advance`) so an
//! illegal hop is structurally impossible: a terminal state is final,
//! progress only moves forward, and the single legal loop is the retry
//! supervisor's `running → retrying → admitted` cycle. Each transition
//! is mirrored to the client as a [`JobEvent`] on the handle's channel —
//! the streaming interface the ISSUE calls "incremental `RunReport`
//! progress events".

use crate::quota::JobCost;
use crate::supervisor::RetryPolicy;
use quest_core::{JobId, TenantId};
use quest_runtime::stats::Stopwatch;
use quest_runtime::{
    CancelToken, CheckpointSink, RunSnapshot, RuntimeError, RuntimeReport, WorkloadSpec,
};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobState {
    /// Admitted and waiting in the queue.
    Queued,
    /// Picked up by a worker, about to run.
    Admitted,
    /// Executing; `fraction` is the completed share of QECC cycles.
    Running {
        /// Completed fraction in `[0, 1]`.
        fraction: f64,
    },
    /// An attempt failed with a retryable error; the job is heading back
    /// into the queue for attempt `attempt`.
    Retrying {
        /// The upcoming attempt number (1-based; attempt 1 is the first
        /// run, so the first retry announces attempt 2).
        attempt: u32,
    },
    /// Ran to completion.
    Done,
    /// Cancelled before or during execution.
    Cancelled,
    /// The runtime returned an error (after exhausting any retry
    /// budget).
    Failed,
    /// The job's QECC-cycle budget
    /// ([`RetryPolicy::deadline_cycles`](crate::RetryPolicy)) ran out.
    DeadlineExceeded,
}

impl JobState {
    /// Whether the state is final.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed | JobState::DeadlineExceeded
        )
    }

    /// Rank in the lifecycle order (terminal states share the top rank;
    /// `Retrying` sits beside `Running` but is special-cased in
    /// `advance` because the next attempt walks backwards to
    /// `Admitted`).
    fn rank(&self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Admitted => 1,
            JobState::Running { .. } | JobState::Retrying { .. } => 2,
            JobState::Done
            | JobState::Cancelled
            | JobState::Failed
            | JobState::DeadlineExceeded => 3,
        }
    }
}

/// The shared, transition-checked state cell of one job.
#[derive(Debug)]
pub(crate) struct JobCell {
    state: Mutex<JobState>,
}

impl JobCell {
    pub(crate) fn new() -> Arc<JobCell> {
        Arc::new(JobCell {
            state: Mutex::new(JobState::Queued),
        })
    }

    /// Snapshot of the current state.
    pub(crate) fn get(&self) -> JobState {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Applies a transition if it is legal (forward through the
    /// lifecycle; running may update in place; terminal states are
    /// final; `Retrying` may be declared from any live state and the
    /// next attempt then restarts the forward walk from `Admitted`).
    /// Returns whether the transition was applied — callers use this to
    /// decide whether to emit the matching event, so state and event
    /// stream cannot diverge.
    pub(crate) fn advance(&self, next: JobState) -> bool {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let legal = if state.is_terminal() {
            false
        } else if matches!(
            (*state, next),
            (JobState::Running { .. }, JobState::Running { .. })
        ) {
            true
        } else if matches!(next, JobState::Retrying { .. }) {
            // A retry declaration from any live state (practically
            // Running; Admitted covers a pre-cycle failure).
            true
        } else if matches!(*state, JobState::Retrying { .. }) {
            // The next attempt restarts the forward walk; only a return
            // to Queued is nonsense.
            !matches!(next, JobState::Queued)
        } else {
            next.rank() > state.rank()
        };
        if legal {
            *state = next;
        }
        legal
    }
}

/// One progress event streamed to the submitting client.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// The job passed validation and admission control and sits in the
    /// queue.
    Queued {
        /// The job.
        id: JobId,
    },
    /// A worker picked the job up.
    Admitted {
        /// The job.
        id: JobId,
    },
    /// The job is executing; emitted at pickup (fraction 0) and on every
    /// whole-percent step thereafter.
    Running {
        /// The job.
        id: JobId,
        /// Completed fraction of the job's QECC cycles, in `[0, 1]`.
        fraction: f64,
    },
    /// An attempt failed with a retryable error; the supervisor is
    /// re-enqueueing the job.
    Retrying {
        /// The job.
        id: JobId,
        /// The upcoming attempt number (1-based).
        attempt: u32,
        /// The retryable error the previous attempt died with.
        error: RuntimeError,
    },
    /// The job completed; the full report rides along.
    Done {
        /// The job.
        id: JobId,
        /// The run's report (physics + runtime statistics).
        report: Box<RuntimeReport>,
    },
    /// The job was cancelled (before or during execution).
    Cancelled {
        /// The job.
        id: JobId,
    },
    /// The runtime refused or aborted the job.
    Failed {
        /// The job.
        id: JobId,
        /// What went wrong.
        error: RuntimeError,
    },
    /// The job's QECC-cycle deadline ran out mid-run.
    DeadlineExceeded {
        /// The job.
        id: JobId,
        /// Cycles the job had executed when the deadline tripped.
        cycles_done: u64,
    },
}

/// How a job ended, as returned by [`JobHandle::wait`].
#[derive(Debug)]
pub enum JobOutcome {
    /// Completed; here is the report.
    Done(Box<RuntimeReport>),
    /// Cancelled before or during execution.
    Cancelled,
    /// The runtime returned an error (after exhausting any retry
    /// budget).
    Failed(RuntimeError),
    /// The job's QECC-cycle budget ran out after `cycles_done` cycles.
    DeadlineExceeded {
        /// Cycles executed before the deadline tripped.
        cycles_done: u64,
    },
    /// The server went away without delivering a terminal event (it was
    /// dropped rather than drained).
    Lost,
}

/// The client's handle to one submitted job: an event stream, a cancel
/// button, and a state snapshot.
#[derive(Debug)]
pub struct JobHandle {
    id: JobId,
    tenant: TenantId,
    events: Receiver<JobEvent>,
    cancel: CancelToken,
    cell: Arc<JobCell>,
    sink: CheckpointSink,
}

impl JobHandle {
    /// The job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The submitting tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Requests cancellation: a queued job is dropped when a worker
    /// reaches it, a running job stops at its next cooperative
    /// checkpoint. Idempotent; a no-op once the job is terminal.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Snapshot of the job's current state.
    pub fn state(&self) -> JobState {
        self.cell.get()
    }

    /// Requests a checkpoint at the job's next QECC-cycle barrier
    /// (meaningful while the job is running; harmless otherwise). The
    /// snapshot lands in the job's supervision sink, where a subsequent
    /// retry resumes from it. Like all checkpointing it is a pure
    /// observer — the job's report is unaffected.
    pub fn force_checkpoint(&self) {
        self.sink.force();
    }

    /// Blocking receive of the next event. `None` once the stream ends
    /// (after a terminal event, or if the server was dropped).
    pub fn next_event(&self) -> Option<JobEvent> {
        self.events.recv().ok()
    }

    /// Non-blocking receive of the next event, if one is pending.
    pub fn try_next_event(&self) -> Option<JobEvent> {
        self.events.try_recv().ok()
    }

    /// Blocks until the job reaches a terminal state and returns how it
    /// ended, draining (and discarding) the progress events in between.
    pub fn wait(self) -> JobOutcome {
        while let Some(event) = self.next_event() {
            match event {
                JobEvent::Done { report, .. } => return JobOutcome::Done(report),
                JobEvent::Cancelled { .. } => return JobOutcome::Cancelled,
                JobEvent::Failed { error, .. } => return JobOutcome::Failed(error),
                JobEvent::DeadlineExceeded { cycles_done, .. } => {
                    return JobOutcome::DeadlineExceeded { cycles_done }
                }
                JobEvent::Queued { .. }
                | JobEvent::Admitted { .. }
                | JobEvent::Running { .. }
                | JobEvent::Retrying { .. } => {}
            }
        }
        JobOutcome::Lost
    }
}

/// The server's side of one job: everything a worker needs to run it
/// (and, under supervision, to retry it).
#[derive(Debug)]
pub(crate) struct Job {
    pub(crate) id: JobId,
    pub(crate) tenant: TenantId,
    pub(crate) spec: WorkloadSpec,
    pub(crate) cost: JobCost,
    pub(crate) events: Sender<JobEvent>,
    pub(crate) cancel: CancelToken,
    pub(crate) cell: Arc<JobCell>,
    /// Started at submission (and reset when a retry re-enqueues); read
    /// once at worker pickup for the queue latency sample.
    pub(crate) queued_at: Stopwatch,
    /// Supervision knobs fixed at submission.
    pub(crate) policy: RetryPolicy,
    /// Current attempt number, 1-based.
    pub(crate) attempt: u32,
    /// Where the next attempt resumes from (the latest checkpoint of a
    /// failed attempt, disarmed of its causing fault class). `None` runs
    /// from the spec.
    pub(crate) snapshot: Option<RunSnapshot>,
    /// The job's checkpoint sink: the worker attaches it to every
    /// attempt; the handle can force a deposit via
    /// [`JobHandle::force_checkpoint`].
    pub(crate) sink: CheckpointSink,
}

impl Job {
    /// Builds the server/client pair for one admitted job.
    pub(crate) fn channel(
        id: JobId,
        tenant: TenantId,
        spec: WorkloadSpec,
        cost: JobCost,
        policy: RetryPolicy,
    ) -> (Job, JobHandle) {
        let (tx, rx) = std::sync::mpsc::channel();
        let cancel = CancelToken::new();
        let cell = JobCell::new();
        let sink = CheckpointSink::every(policy.checkpoint_every);
        (
            Job {
                id,
                tenant,
                spec,
                cost,
                events: tx,
                cancel: cancel.clone(),
                cell: Arc::clone(&cell),
                queued_at: Stopwatch::start(),
                policy,
                attempt: 1,
                snapshot: None,
                sink: sink.clone(),
            },
            JobHandle {
                id,
                tenant,
                events: rx,
                cancel,
                cell,
                sink,
            },
        )
    }

    /// Emits one event to the client, ignoring a hung-up handle (the
    /// job runs to completion either way; only the observer is gone).
    pub(crate) fn emit(&self, event: JobEvent) {
        let _ = self.events.send(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_moves_forward_only() {
        let cell = JobCell::new();
        assert_eq!(cell.get(), JobState::Queued);
        assert!(cell.advance(JobState::Admitted));
        assert!(!cell.advance(JobState::Queued), "no going back");
        assert!(cell.advance(JobState::Running { fraction: 0.0 }));
        assert!(
            cell.advance(JobState::Running { fraction: 0.5 }),
            "running may update in place"
        );
        assert!(cell.advance(JobState::Done));
        assert!(!cell.advance(JobState::Cancelled), "terminal is final");
        assert_eq!(cell.get(), JobState::Done);
    }

    #[test]
    fn queued_job_can_cancel_straight_to_terminal() {
        let cell = JobCell::new();
        assert!(cell.advance(JobState::Cancelled));
        assert!(cell.get().is_terminal());
        assert!(!cell.advance(JobState::Running { fraction: 0.0 }));
    }

    #[test]
    fn handle_streams_events_and_waits_for_terminal() {
        let spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        let cost = JobCost::of(&spec);
        let (job, handle) = Job::channel(JobId(4), TenantId(2), spec, cost, RetryPolicy::default());
        assert_eq!(handle.id(), JobId(4));
        assert_eq!(handle.tenant(), TenantId(2));
        job.emit(JobEvent::Queued { id: job.id });
        job.emit(JobEvent::Admitted { id: job.id });
        job.emit(JobEvent::Cancelled { id: job.id });
        assert!(matches!(handle.next_event(), Some(JobEvent::Queued { .. })));
        assert!(matches!(handle.wait(), JobOutcome::Cancelled));
    }

    #[test]
    fn dropped_server_side_yields_lost() {
        let spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        let cost = JobCost::of(&spec);
        let (job, handle) = Job::channel(JobId(1), TenantId(0), spec, cost, RetryPolicy::default());
        job.emit(JobEvent::Queued { id: job.id });
        drop(job);
        assert!(matches!(handle.wait(), JobOutcome::Lost));
    }

    #[test]
    fn retry_loop_walks_back_to_admitted_then_terminal() {
        let cell = JobCell::new();
        assert!(cell.advance(JobState::Admitted));
        assert!(cell.advance(JobState::Running { fraction: 0.0 }));
        assert!(cell.advance(JobState::Retrying { attempt: 2 }));
        assert!(
            cell.advance(JobState::Admitted),
            "the next attempt restarts the forward walk"
        );
        assert!(cell.advance(JobState::Running { fraction: 0.0 }));
        assert!(cell.advance(JobState::Retrying { attempt: 3 }));
        assert!(
            !cell.advance(JobState::Queued),
            "a retry never returns to Queued"
        );
        assert!(cell.advance(JobState::Failed));
        assert!(
            !cell.advance(JobState::Retrying { attempt: 4 }),
            "terminal is final, retries included"
        );
    }

    #[test]
    fn deadline_exceeded_is_terminal() {
        let cell = JobCell::new();
        assert!(cell.advance(JobState::Admitted));
        assert!(cell.advance(JobState::Running { fraction: 0.5 }));
        assert!(cell.advance(JobState::DeadlineExceeded));
        assert!(cell.get().is_terminal());
        assert!(!cell.advance(JobState::Done));
        assert!(!cell.advance(JobState::Retrying { attempt: 2 }));
    }

    #[test]
    fn cancel_trips_the_shared_token() {
        let spec = WorkloadSpec::memory(3, 2, 1, 0.0, 1, 1);
        let cost = JobCost::of(&spec);
        let (job, handle) = Job::channel(JobId(1), TenantId(0), spec, cost, RetryPolicy::default());
        assert!(!job.cancel.is_cancelled());
        handle.cancel();
        assert!(job.cancel.is_cancelled());
        assert!(handle.try_next_event().is_none());
    }
}

#[cfg(test)]
mod props {
    //! Property pins for the state machine: under *any* sequence of
    //! attempted transitions — retries and deadlines included, applied
    //! from one thread or racing from several — the cell enters at most
    //! one terminal state, terminal is final, and `Queued` is never
    //! re-entered.

    use super::*;
    use proptest::prelude::*;

    /// Decodes an arbitrary byte into a transition target, covering
    /// every state (both Running fractions exercise the in-place
    /// update).
    fn state_from_code(code: u8) -> JobState {
        match code % 9 {
            0 => JobState::Queued,
            1 => JobState::Admitted,
            2 => JobState::Running { fraction: 0.25 },
            3 => JobState::Running { fraction: 0.75 },
            4 => JobState::Retrying { attempt: 2 },
            5 => JobState::Retrying { attempt: 3 },
            6 => JobState::Done,
            7 => JobState::Cancelled,
            _ => {
                if code >= 128 {
                    JobState::DeadlineExceeded
                } else {
                    JobState::Failed
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn any_sequence_enters_at_most_one_terminal_state(
            codes in prop::collection::vec(any::<u8>(), 0..32)
        ) {
            let cell = JobCell::new();
            let mut terminal_entries = 0u32;
            for code in codes {
                let before = cell.get();
                let next = state_from_code(code);
                let applied = cell.advance(next);
                if before.is_terminal() {
                    prop_assert!(!applied, "terminal must be final");
                    prop_assert_eq!(cell.get(), before);
                }
                if applied && next.is_terminal() {
                    terminal_entries += 1;
                }
                if applied && !matches!(before, JobState::Queued) {
                    prop_assert!(
                        !matches!(cell.get(), JobState::Queued),
                        "Queued is never re-entered"
                    );
                }
            }
            prop_assert!(terminal_entries <= 1);
            prop_assert_eq!(terminal_entries == 1, cell.get().is_terminal());
        }

        #[test]
        fn racing_threads_reach_exactly_one_terminal_state(
            a in prop::collection::vec(any::<u8>(), 1..16),
            b in prop::collection::vec(any::<u8>(), 1..16),
            c in prop::collection::vec(any::<u8>(), 1..16),
        ) {
            let cell = JobCell::new();
            let terminal_wins: u32 = std::thread::scope(|scope| {
                [a, b, c]
                    .into_iter()
                    .map(|codes| {
                        let cell = Arc::clone(&cell);
                        scope.spawn(move || {
                            codes
                                .into_iter()
                                .map(|code| {
                                    let next = state_from_code(code);
                                    u32::from(cell.advance(next) && next.is_terminal())
                                })
                                .sum::<u32>()
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap_or(u32::MAX))
                    .sum()
            });
            prop_assert!(terminal_wins <= 1, "terminal entries: {terminal_wins}");
            prop_assert_eq!(terminal_wins == 1, cell.get().is_terminal());
        }
    }
}
